//! Criterion benchmarks of the alias tables, comparing static and dynamic
//! index-bit selection on the block-access pattern of Section III-B1.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tdm_core::alias::AliasTable;
use tdm_core::config::IndexPolicy;

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias/insert_remove_1024_blocks");
    for (name, policy) in [
        ("dynamic", IndexPolicy::Dynamic),
        ("static_bit12", IndexPolicy::Static { low_bit: 12 }),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || AliasTable::new(2048, 8, policy),
                |mut table| {
                    for i in 0..1024u64 {
                        let addr = 0x10_0000_0000 + i * 4096;
                        let _ = table.insert(addr, 4096);
                    }
                    for i in 0..1024u64 {
                        let addr = 0x10_0000_0000 + i * 4096;
                        let _ = table.remove(addr, 4096);
                    }
                    table
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    c.bench_function("alias/lookup_hit", |b| {
        let mut table = AliasTable::new(2048, 8, IndexPolicy::Dynamic);
        for i in 0..1024u64 {
            table.insert(0x10_0000_0000 + i * 4096, 4096).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            table.lookup(0x10_0000_0000 + i * 4096, 4096)
        })
    });
}

criterion_group!(benches, bench_insert_remove, bench_lookup);
criterion_main!(benches);
