//! Criterion benchmarks comparing the dependence-tracking engines (software
//! vs DMU-backed) processing the same task stream.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tdm_core::config::DmuConfig;
use tdm_runtime::cost::CostModel;
use tdm_runtime::engine::{DependenceEngine, HardwareEngine, HardwareFlavor, SoftwareEngine};
use tdm_runtime::task::{TaskRef, Workload};
use tdm_sim::clock::Cycle;
use tdm_workloads::cholesky;

fn bench_engines(c: &mut Criterion) {
    // A small Cholesky (8×8 blocks = 120 tasks) keeps each iteration short.
    let workload = cholesky::generate(cholesky::Params { blocks: 8 });

    let mut group = c.benchmark_group("dependence_matching/cholesky8");
    group.bench_function("software_engine", |b| {
        b.iter_batched(
            || SoftwareEngine::new(CostModel::default()),
            |mut engine| drive(&mut engine, &workload),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dmu_engine", |b| {
        b.iter_batched(
            || {
                HardwareEngine::new(
                    HardwareFlavor::Tdm,
                    DmuConfig::default(),
                    CostModel::default(),
                    Cycle::new(16),
                )
            },
            |mut engine| drive(&mut engine, &workload),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Creates every task and immediately executes ready tasks FIFO until done.
fn drive(engine: &mut dyn DependenceEngine, workload: &Workload) -> usize {
    let n = workload.len();
    let mut ready = Vec::new();
    let mut pool = VecDeque::new();
    let mut next = 0;
    let mut finished = 0;
    while finished < n {
        if next < n {
            ready.clear();
            let outcome = engine.create_task(
                Cycle::ZERO,
                TaskRef(next),
                &workload.tasks[next],
                &mut ready,
            );
            pool.extend(ready.drain(..));
            if outcome.completed {
                next += 1;
                continue;
            }
        }
        let info = pool.pop_front().expect("engine deadlocked");
        ready.clear();
        engine.finish_task(Cycle::ZERO, info.task, 0, &mut ready);
        pool.extend(ready.drain(..));
        finished += 1;
    }
    finished
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
