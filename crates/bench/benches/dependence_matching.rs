//! Criterion benchmarks comparing the dependence-tracking engines (software
//! vs DMU-backed) processing the same task stream.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tdm_core::config::DmuConfig;
use tdm_runtime::cost::CostModel;
use tdm_runtime::engine::{DependenceEngine, HardwareEngine, HardwareFlavor, SoftwareEngine};
use tdm_runtime::task::TaskRef;
use tdm_sim::clock::Cycle;
use tdm_workloads::cholesky;

fn bench_engines(c: &mut Criterion) {
    // A small Cholesky (8×8 blocks = 120 tasks) keeps each iteration short.
    let workload = cholesky::generate(cholesky::Params { blocks: 8 });
    let n = workload.len();

    let mut group = c.benchmark_group("dependence_matching/cholesky8");
    group.bench_function("software_engine", |b| {
        b.iter_batched(
            || SoftwareEngine::new(&workload, CostModel::default()),
            |mut engine| drive(&mut engine, n),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dmu_engine", |b| {
        b.iter_batched(
            || {
                HardwareEngine::new(
                    HardwareFlavor::Tdm,
                    &workload,
                    DmuConfig::default(),
                    CostModel::default(),
                    Cycle::new(16),
                )
            },
            |mut engine| drive(&mut engine, n),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Creates every task and immediately executes ready tasks FIFO until done.
/// The pool doubles as the engines' append-only ready buffer.
fn drive(engine: &mut dyn DependenceEngine, n: usize) -> usize {
    let mut pool = Vec::new();
    let mut next = 0;
    let mut finished = 0;
    while finished < n {
        if next < n {
            let outcome = engine.create_task(Cycle::ZERO, TaskRef(next), &mut pool);
            if outcome.completed {
                next += 1;
                continue;
            }
        }
        let info = pool.remove(0);
        engine.finish_task(Cycle::ZERO, info.task, 0, &mut pool);
        finished += 1;
    }
    finished
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
