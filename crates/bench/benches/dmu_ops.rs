//! Criterion micro-benchmarks of the four DMU operations (host-side model
//! throughput; the simulated latency is what the figures report).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tdm_core::config::DmuConfig;
use tdm_core::dmu::Dmu;
use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};

fn desc(i: u64) -> DescriptorAddr {
    DescriptorAddr(0x10_0000 + i * 64)
}

fn block(i: u64) -> DepAddr {
    DepAddr(0x80_0000 + i * 4096)
}

/// A DMU pre-loaded with `n` producer tasks, each writing one block.
fn loaded_dmu(n: u64) -> Dmu {
    let mut dmu = Dmu::new(DmuConfig::default());
    for i in 0..n {
        dmu.create_task(desc(i)).unwrap();
        dmu.add_dependence(desc(i), block(i), 4096, DepDirection::Out)
            .unwrap();
        dmu.submit_task(desc(i)).unwrap();
    }
    dmu
}

fn bench_create_task(c: &mut Criterion) {
    c.bench_function("dmu/create_task", |b| {
        b.iter_batched(
            || loaded_dmu(256),
            |mut dmu| dmu.create_task(desc(10_000)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_add_dependence(c: &mut Criterion) {
    c.bench_function("dmu/add_dependence_raw", |b| {
        b.iter_batched(
            || {
                let mut dmu = loaded_dmu(256);
                dmu.create_task(desc(10_000)).unwrap();
                dmu
            },
            |mut dmu| {
                dmu.add_dependence(desc(10_000), block(7), 4096, DepDirection::In)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_finish_task(c: &mut Criterion) {
    c.bench_function("dmu/finish_task", |b| {
        b.iter_batched(
            || loaded_dmu(256),
            |mut dmu| dmu.finish_task(desc(0)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_get_ready_task(c: &mut Criterion) {
    c.bench_function("dmu/get_ready_task", |b| {
        b.iter_batched(
            || loaded_dmu(256),
            |mut dmu| dmu.get_ready_task(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_create_task,
    bench_add_dependence,
    bench_finish_task,
    bench_get_ready_task
);
criterion_main!(benches);
