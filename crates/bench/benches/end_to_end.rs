//! Criterion benchmarks of complete simulated executions (host-side wall
//! clock of the simulator itself, one backend per benchmark function).

use criterion::{criterion_group, criterion_main, Criterion};
use tdm_runtime::exec::{simulate, Backend, ExecConfig};
use tdm_runtime::scheduler::SchedulerKind;
use tdm_workloads::cholesky;

fn bench_backends(c: &mut Criterion) {
    let workload = cholesky::generate(cholesky::Params { blocks: 12 });
    let config = ExecConfig::default();
    let mut group = c.benchmark_group("simulate/cholesky12_32cores");
    group.sample_size(20);
    for backend in [
        Backend::Software,
        Backend::tdm_default(),
        Backend::Carbon,
        Backend::task_superscalar_default(),
    ] {
        group.bench_function(backend.name(), |b| {
            b.iter(|| simulate(&workload, &backend, SchedulerKind::Fifo, &config))
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let workload = cholesky::generate(cholesky::Params { blocks: 12 });
    let config = ExecConfig::default();
    let backend = Backend::tdm_default();
    let mut group = c.benchmark_group("simulate/schedulers_cholesky12");
    group.sample_size(20);
    for kind in SchedulerKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter(|| simulate(&workload, &backend, kind, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_schedulers);
criterion_main!(benches);
