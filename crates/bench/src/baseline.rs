//! Performance-baseline measurement and regression gating.
//!
//! The ROADMAP's north star is a simulator that runs as fast as the hardware
//! allows, and optimisation claims are only credible against recorded
//! baselines. This module runs the Table II benchmark × backend matrix once,
//! records for every cell
//!
//! * **wall-clock throughput** (simulated tasks per second of host time) —
//!   the quantity optimisation PRs try to improve, gated with a relative
//!   tolerance because host machines differ, and
//! * **makespan cycles and DMU SRAM accesses** — *modeled* quantities that
//!   must never move under a pure performance optimisation; the CI gate
//!   fails on any drift, making them a correctness canary,
//!
//! and serialises the result to `BENCH_baseline.json` at the repository
//! root. The `bench_baseline` binary wraps this module with `emit` / `check`
//! subcommands; the CI `perf` job runs `check` on every push.
//!
//! The workspace builds offline (the `serde` dependency is a no-op shim), so
//! the JSON is written and parsed by the minimal hand-rolled implementation
//! in [`json`] — sufficient for the fixed schema below and nothing more.

use std::time::Instant;

use tdm_runtime::exec::{simulate, Backend, ExecConfig};
use tdm_runtime::scheduler::SchedulerKind;
use tdm_workloads::Benchmark;

use crate::standard_config;

/// Version of the `BENCH_baseline.json` schema; bump when fields change so a
/// stale committed baseline fails loudly instead of comparing garbage.
///
/// The emitted file additionally records `geomean_tasks_per_sec` — the
/// matrix-wide geometric-mean throughput — so the perf trajectory across
/// PRs is machine-readable straight from the committed `BENCH_*.json`
/// history. The field is *derived* from the entries (recomputed on write,
/// ignored on read), so recording it is not a schema change.
pub const SCHEMA_VERSION: u64 = 1;

/// Default relative wall-clock regression tolerance of the CI gate: a fresh
/// measurement may be up to 25% slower than the committed baseline before the
/// gate fails (modeled metrics get no tolerance at all).
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.25;

/// Absolute wall-clock slack added on top of the relative tolerance. The
/// smallest matrix cells run in well under a millisecond, where scheduler
/// jitter alone exceeds any relative bound; this floor keeps the gate
/// meaningful on the big cells without false alarms on the tiny ones.
pub const WALL_ABS_SLACK_MS: f64 = 5.0;

/// Wall-clock repetitions per cell; the minimum is recorded. Modeled
/// metrics are asserted identical across repetitions (the simulator is
/// deterministic), so repetition only de-noises the host-time measurement.
pub const WALL_REPS: u32 = 3;

/// Allowed range for the host-speed normalisation factor (see
/// `host_speed_factor`). Hardware differences between a dev container and
/// a CI runner live comfortably inside ±4×; a matrix-wide median ratio
/// outside this band is treated as a real regression (or improvement), not
/// as hardware.
pub const HOST_FACTOR_BAND: (f64, f64) = (0.25, 4.0);

/// One cell of the benchmark × backend matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Benchmark name (Table II row).
    pub benchmark: String,
    /// Backend name (Section VI-C organisation).
    pub backend: String,
    /// Number of tasks simulated.
    pub tasks: u64,
    /// Modeled makespan in cycles — must be bit-identical across hosts and
    /// across pure performance optimisations.
    pub makespan_cycles: u64,
    /// Total DMU SRAM accesses (list-array walk totals included); zero for
    /// backends with software dependence tracking. Also drift-gated.
    pub dmu_accesses: u64,
    /// Host wall-clock time for the simulation, in milliseconds.
    pub wall_ms: f64,
    /// Simulated tasks per second of host time (the headline throughput).
    pub tasks_per_sec: f64,
}

impl BaselineEntry {
    /// True if `other` describes the same benchmark × backend cell.
    pub fn same_cell(&self, other: &BaselineEntry) -> bool {
        self.benchmark == other.benchmark && self.backend == other.backend
    }
}

/// A recorded performance baseline: the full matrix plus the configuration
/// it was measured with.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema version of the file this was read from / will be written to.
    pub schema_version: u64,
    /// Simulated cores (Table I chip).
    pub cores: u64,
    /// Duration-jitter seed of the runs.
    pub seed: u64,
    /// One entry per benchmark × backend cell.
    pub entries: Vec<BaselineEntry>,
}

/// The four runtime-system organisations of the comparison matrix.
pub fn matrix_backends() -> Vec<Backend> {
    vec![
        Backend::Software,
        Backend::tdm_default(),
        Backend::Carbon,
        Backend::task_superscalar_default(),
    ]
}

/// Runs one cell of the matrix and measures it: [`WALL_REPS`] repetitions,
/// minimum wall time (the achievable speed), with the modeled metrics
/// asserted identical across repetitions.
fn measure_cell(bench: Benchmark, backend: &Backend, config: &ExecConfig) -> BaselineEntry {
    // Hardware dependence tracking uses the TDM-optimal granularity, the
    // software runtimes their own optimum — the paper's methodology.
    let workload = match backend {
        Backend::Tdm(_) | Backend::TaskSuperscalar(_) => bench.tdm_workload(),
        Backend::Software | Backend::Carbon => bench.software_workload(),
    };
    let mut best_wall = f64::INFINITY;
    let mut reference = None;
    for _ in 0..WALL_REPS.max(1) {
        let start = Instant::now();
        let report = simulate(&workload, backend, SchedulerKind::Fifo, config);
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        let makespan = report.makespan();
        let accesses = report
            .hardware
            .as_ref()
            .map(|hw| hw.stats.total_accesses)
            .unwrap_or(0);
        match &reference {
            None => reference = Some((report.tasks, makespan, accesses)),
            Some(r) => assert_eq!(
                *r,
                (report.tasks, makespan, accesses),
                "{} × {}: nondeterministic modeled metrics",
                bench.name(),
                backend.name()
            ),
        }
    }
    let (tasks, makespan, dmu_accesses) = reference.expect("at least one repetition ran");
    BaselineEntry {
        benchmark: bench.name().to_string(),
        backend: backend.name().to_string(),
        tasks,
        makespan_cycles: makespan.raw(),
        dmu_accesses,
        wall_ms: best_wall * 1e3,
        tasks_per_sec: tasks as f64 / best_wall.max(1e-9),
    }
}

/// Measures the full Table II benchmark × backend matrix with the standard
/// 32-core configuration and returns a fresh [`Baseline`].
pub fn measure() -> Baseline {
    let config = standard_config();
    let mut entries = Vec::new();
    for bench in Benchmark::ALL {
        for backend in matrix_backends() {
            entries.push(measure_cell(bench, &backend, &config));
        }
    }
    Baseline {
        schema_version: SCHEMA_VERSION,
        cores: config.chip.num_cores as u64,
        seed: config.seed,
        entries,
    }
}

/// Host-speed normalisation factor: the median of per-cell
/// `fresh.wall_ms / committed.wall_ms` ratios.
///
/// A committed baseline carries the wall-clock of whatever machine recorded
/// it; CI runners are routinely slower (or faster) across the board. A code
/// regression, by contrast, slows *specific cells relative to the others*.
/// Dividing every cell's ratio by the matrix-wide median cancels uniform
/// host-speed differences while leaving per-cell regressions fully visible.
/// The trade-off: a slowdown hitting the *majority* of cells by a similar
/// factor is indistinguishable from a slower host and hides inside the
/// median — catching that reliably requires a same-host before/after
/// comparison (`bench_baseline emit` before the change, `check` after),
/// which is exactly the workflow perf PRs follow anyway. As a backstop, the
/// factor is clamped to [`HOST_FACTOR_BAND`]: real CI runners differ from
/// dev machines by low single-digit factors, so a median ratio beyond the
/// band stops being credited to hardware and the excess shows up as per-cell
/// failures.
///
/// The lower median is used (conservative: a smaller factor means a stricter
/// gate). Returns 1.0 when no cell pair is comparable.
fn host_speed_factor(current: &Baseline, committed: &Baseline) -> f64 {
    let mut ratios: Vec<f64> = committed
        .entries
        .iter()
        .filter_map(|want| {
            let got = current.entries.iter().find(|e| e.same_cell(want))?;
            // A cell with a zero, negative or non-finite wall on either side
            // carries no host-speed information (degenerate measurement or a
            // hand-edited file); it must not poison the median with a 0, ∞
            // or NaN ratio.
            let ratio = got.wall_ms / want.wall_ms;
            (want.wall_ms > 0.0 && ratio.is_finite() && ratio > 0.0).then_some(ratio)
        })
        .collect();
    // With fewer than three comparable cells the "median" degenerates to a
    // single cell's own ratio (or min/max of two), which would normalise a
    // real regression away as hardware. Too little signal: assume identical
    // hosts and let the per-cell tolerance do the judging.
    if ratios.len() < 3 {
        return 1.0;
    }
    ratios.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("non-finite ratios were filtered out")
    });
    ratios[(ratios.len() - 1) / 2].clamp(HOST_FACTOR_BAND.0, HOST_FACTOR_BAND.1)
}

/// Compares a fresh measurement against a committed baseline.
///
/// Returns every violation found (empty = gate passes):
///
/// * any makespan-cycle, DMU-access or task-count drift (modeled metrics
///   must be bit-identical),
/// * wall-clock more than `wall_tolerance` (relative) slower than recorded,
///   after normalising out the matrix-wide median host-speed ratio (see
///   `host_speed_factor`) and granting [`WALL_ABS_SLACK_MS`] of absolute
///   slack — so a slower CI host doesn't fail an unchanged tree, but a
///   change that slows particular cells still does,
/// * cells present in one baseline but missing from the other,
/// * schema or configuration mismatches.
pub fn compare(current: &Baseline, committed: &Baseline, wall_tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if current.schema_version != committed.schema_version {
        failures.push(format!(
            "schema version mismatch: measured v{}, committed v{} — regenerate the baseline",
            current.schema_version, committed.schema_version
        ));
        return failures;
    }
    if current.cores != committed.cores || current.seed != committed.seed {
        failures.push(format!(
            "configuration mismatch: measured {} cores / seed {}, committed {} cores / seed {}",
            current.cores, current.seed, committed.cores, committed.seed
        ));
        return failures;
    }
    let host_factor = host_speed_factor(current, committed);
    for want in &committed.entries {
        let Some(got) = current.entries.iter().find(|e| e.same_cell(want)) else {
            failures.push(format!(
                "{} × {}: missing from the fresh measurement",
                want.benchmark, want.backend
            ));
            continue;
        };
        let cell = format!("{} × {}", want.benchmark, want.backend);
        if got.tasks != want.tasks {
            failures.push(format!(
                "{cell}: task count drifted ({} measured vs {} recorded)",
                got.tasks, want.tasks
            ));
        }
        if got.makespan_cycles != want.makespan_cycles {
            failures.push(format!(
                "{cell}: makespan drifted ({} cycles measured vs {} recorded) — \
                 a performance change must not alter modeled time",
                got.makespan_cycles, want.makespan_cycles
            ));
        }
        if got.dmu_accesses != want.dmu_accesses {
            failures.push(format!(
                "{cell}: DMU access total drifted ({} measured vs {} recorded) — \
                 list-array walk accounting changed",
                got.dmu_accesses, want.dmu_accesses
            ));
        }
        let expected = want.wall_ms * host_factor;
        if got.wall_ms > expected * (1.0 + wall_tolerance) + WALL_ABS_SLACK_MS {
            failures.push(format!(
                "{cell}: wall-clock regression ({:.2} ms measured vs {:.2} ms recorded \
                 × host factor {host_factor:.2}, tolerance {:.0}% + {WALL_ABS_SLACK_MS} ms)",
                got.wall_ms,
                want.wall_ms,
                wall_tolerance * 100.0
            ));
        }
    }
    for got in &current.entries {
        if !committed.entries.iter().any(|e| e.same_cell(got)) {
            failures.push(format!(
                "{} × {}: not in the committed baseline — regenerate it",
                got.benchmark, got.backend
            ));
        }
    }
    failures
}

/// Geometric-mean throughput across the matrix, for the summary line.
pub fn geomean_tasks_per_sec(baseline: &Baseline) -> f64 {
    let values: Vec<f64> = baseline.entries.iter().map(|e| e.tasks_per_sec).collect();
    crate::geometric_mean(&values)
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

impl Baseline {
    /// Serialises to the committed `BENCH_baseline.json` format.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"benchmark\": {}, \"backend\": {}, \"tasks\": {}, \
                     \"makespan_cycles\": {}, \"dmu_accesses\": {}, \"wall_ms\": {:.3}, \
                     \"tasks_per_sec\": {:.1}}}",
                    json::escape(&e.benchmark),
                    json::escape(&e.backend),
                    e.tasks,
                    e.makespan_cycles,
                    e.dmu_accesses,
                    json::finite(e.wall_ms, "wall_ms"),
                    json::finite(e.tasks_per_sec, "tasks_per_sec"),
                )
            })
            .collect();
        json::document(
            &[
                ("schema_version", self.schema_version.to_string()),
                ("cores", self.cores.to_string()),
                ("seed", self.seed.to_string()),
                (
                    "geomean_tasks_per_sec",
                    format!(
                        "{:.1}",
                        json::finite(geomean_tasks_per_sec(self), "geomean_tasks_per_sec")
                    ),
                ),
            ],
            "entries",
            &rows,
        )
    }

    /// Parses a baseline back from JSON text.
    ///
    /// The summary field `geomean_tasks_per_sec` is *derived* from the
    /// entries, so it is not stored on the struct — but a committed file
    /// whose stored summary disagrees with its own per-cell records has been
    /// hand-edited or truncated, and comparing against it would gate on
    /// garbage. Loading recomputes the geomean and rejects the file when the
    /// stored value is off by more than the writer's own rounding
    /// (one decimal place).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem found,
    /// including a stored-vs-recomputed geomean mismatch.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("top level")?;
        let schema_version = json::field(obj, "schema_version")?.as_u64("schema_version")?;
        let cores = json::field(obj, "cores")?.as_u64("cores")?;
        let seed = json::field(obj, "seed")?.as_u64("seed")?;
        let mut entries = Vec::new();
        for (i, item) in json::field(obj, "entries")?
            .as_array("entries")?
            .iter()
            .enumerate()
        {
            let e = item.as_object(&format!("entries[{i}]"))?;
            entries.push(BaselineEntry {
                benchmark: json::field(e, "benchmark")?
                    .as_str("benchmark")?
                    .to_string(),
                backend: json::field(e, "backend")?.as_str("backend")?.to_string(),
                tasks: json::field(e, "tasks")?.as_u64("tasks")?,
                makespan_cycles: json::field(e, "makespan_cycles")?.as_u64("makespan_cycles")?,
                dmu_accesses: json::field(e, "dmu_accesses")?.as_u64("dmu_accesses")?,
                wall_ms: json::field(e, "wall_ms")?.as_f64("wall_ms")?,
                tasks_per_sec: json::field(e, "tasks_per_sec")?.as_f64("tasks_per_sec")?,
            });
        }
        let baseline = Baseline {
            schema_version,
            cores,
            seed,
            entries,
        };
        // Optional for backward compatibility: files written before the
        // summary field existed simply lack it.
        if let Ok(stored) = json::field(obj, "geomean_tasks_per_sec") {
            let stored = stored.as_f64("geomean_tasks_per_sec")?;
            let recomputed = geomean_tasks_per_sec(&baseline);
            // The writer rounds the stored field *and* every entry's
            // throughput to one decimal, so the recomputed value can sit a
            // little off the stored one; a permille-level band covers that
            // accumulated rounding while still catching any real edit.
            let slack = 0.051 + recomputed.abs() * 1e-3;
            if !stored.is_finite() || (stored - recomputed).abs() > slack {
                return Err(format!(
                    "geomean_tasks_per_sec mismatch: file stores {stored}, but its own \
                     entries recompute to {recomputed:.1} — the baseline was edited or \
                     truncated; regenerate it with `bench_baseline emit`"
                ));
            }
        }
        Ok(baseline)
    }
}

/// A minimal JSON reader/writer for the baseline schema.
///
/// The offline `serde` shim provides no (de)serialisation, so this module
/// implements exactly the subset of JSON the baseline file uses: objects,
/// arrays, strings without exotic escapes, numbers, plus `true`/`false`/
/// `null` for completeness.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (stored as f64, exact for the u64 ranges we use —
        /// cycle counts in this model stay far below 2^53).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Interprets the value as an object.
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }

        /// Interprets the value as an array.
        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }

        /// Interprets the value as a string.
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }

        /// Interprets the value as an f64.
        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }

        /// Interprets the value as a non-negative integer.
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            let n = self.as_f64(what)?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("{what}: expected non-negative integer, got {n}"));
            }
            Ok(n as u64)
        }
    }

    /// Assembles the JSON document shape every bench emitter uses — a flat
    /// header of scalar fields followed by one array of pre-rendered row
    /// objects:
    ///
    /// ```text
    /// {
    ///   "field": value,
    ///   ...
    ///   "list_key": [
    ///     {row},
    ///     ...
    ///   ]
    /// }
    /// ```
    ///
    /// Header values and rows are already-serialised JSON fragments (use
    /// [`escape`] for strings); sharing the assembly here keeps the
    /// baseline, sweep and event-microbench writers from each hand-rolling
    /// the brace/comma layout.
    pub fn document(header: &[(&str, String)], list_key: &str, rows: &[String]) -> String {
        let mut out = String::from("{\n");
        for (name, value) in header {
            out.push_str(&format!("  \"{name}\": {value},\n"));
        }
        out.push_str(&format!("  \"{list_key}\": [\n"));
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!("    {row}{comma}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Looks up a field of an object.
    pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field \"{name}\""))
    }

    /// Checks that a number is representable in JSON, returning it for
    /// inline use in a `format!`. `NaN` and the infinities have no JSON
    /// spelling — `{:.3}` renders them as `NaN`/`inf`, which every parser
    /// (including [`parse`] here) rejects. Failing at write time names the
    /// offending field instead of committing a file nothing can read back.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn finite(value: f64, what: &str) -> f64 {
        assert!(
            value.is_finite(),
            "{what}: cannot serialise non-finite value {value} as JSON"
        );
        value
    }

    /// Serialises a string with the escapes JSON requires.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                // \uXXXX — the writer emits these for other
                                // control characters, so the reader must
                                // round-trip them (BMP scalars only; no
                                // surrogate pairs in this schema).
                                let start = self.pos + 1;
                                let hex = self
                                    .bytes
                                    .get(start..start + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| {
                                        format!("truncated \\u escape at byte {}", self.pos)
                                    })?;
                                let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                    format!("bad \\u escape {hex:?} at byte {}", self.pos)
                                })?;
                                let c = char::from_u32(code).ok_or_else(|| {
                                    format!("\\u{hex} is not a scalar value (byte {})", self.pos)
                                })?;
                                out.push(c);
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!(
                                    "unsupported escape {:?} at byte {}",
                                    other.map(|c| c as char),
                                    self.pos
                                ))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input came from &str,
                        // so the boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().expect("peek saw a byte");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            schema_version: SCHEMA_VERSION,
            cores: 32,
            seed: 42,
            entries: vec![
                BaselineEntry {
                    benchmark: "cholesky".to_string(),
                    backend: "TDM".to_string(),
                    tasks: 5984,
                    makespan_cycles: 123_456_789,
                    dmu_accesses: 98_765,
                    wall_ms: 12.5,
                    tasks_per_sec: 478_720.0,
                },
                BaselineEntry {
                    benchmark: "cholesky".to_string(),
                    backend: "Software".to_string(),
                    tasks: 5984,
                    makespan_cycles: 200_000_000,
                    dmu_accesses: 0,
                    wall_ms: 15.0,
                    tasks_per_sec: 398_933.3,
                },
                // A third cell keeps the host-factor median meaningful in
                // these tests (a 2-cell matrix degenerates to min/max).
                BaselineEntry {
                    benchmark: "cholesky".to_string(),
                    backend: "Carbon".to_string(),
                    tasks: 5984,
                    makespan_cycles: 190_000_000,
                    dmu_accesses: 0,
                    wall_ms: 10.0,
                    tasks_per_sec: 598_400.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let text = baseline.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(back.schema_version, baseline.schema_version);
        assert_eq!(back.cores, 32);
        assert_eq!(back.seed, 42);
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.entries[0].benchmark, "cholesky");
        assert_eq!(back.entries[0].makespan_cycles, 123_456_789);
        assert_eq!(back.entries[0].dmu_accesses, 98_765);
        assert!((back.entries[0].wall_ms - 12.5).abs() < 1e-9);
    }

    #[test]
    fn identical_baselines_pass() {
        let b = sample();
        assert!(compare(&b, &b, DEFAULT_WALL_TOLERANCE).is_empty());
    }

    #[test]
    fn makespan_drift_fails_with_zero_tolerance() {
        let committed = sample();
        let mut current = sample();
        current.entries[0].makespan_cycles += 1;
        let failures = compare(&current, &committed, DEFAULT_WALL_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("makespan drifted"), "{failures:?}");
    }

    #[test]
    fn access_drift_fails() {
        let committed = sample();
        let mut current = sample();
        current.entries[0].dmu_accesses -= 1;
        let failures = compare(&current, &committed, DEFAULT_WALL_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("DMU access total"), "{failures:?}");
    }

    #[test]
    fn wall_clock_regression_beyond_tolerance_fails() {
        let mut committed = sample();
        committed.entries[0].wall_ms = 100.0;
        let mut current = committed.clone();
        // 20% slower: inside the 25% tolerance.
        current.entries[0].wall_ms = 120.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
        // Past tolerance plus the absolute slack (100 · 1.25 + 5 = 130 ms).
        current.entries[0].wall_ms = 131.0;
        let failures = compare(&current, &committed, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("wall-clock regression"),
            "{failures:?}"
        );
    }

    #[test]
    fn uniformly_slower_host_passes_but_cell_regression_still_fails() {
        let mut committed = sample();
        committed.entries[0].wall_ms = 100.0;
        committed.entries[1].wall_ms = 15.0;
        // A host exactly 2× slower across the board: median normalisation
        // absorbs it.
        let mut current = committed.clone();
        current.entries[0].wall_ms = 200.0;
        current.entries[1].wall_ms = 30.0;
        current.entries[2].wall_ms = committed.entries[2].wall_ms * 2.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
        // Same slow host, but one cell regressed 3× vs its recorded time
        // (1.5× beyond the host factor): the gate must still fire.
        current.entries[0].wall_ms = 300.0;
        let failures = compare(&current, &committed, 0.25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("wall-clock regression"),
            "{failures:?}"
        );
    }

    #[test]
    fn catastrophic_broad_regression_exceeds_host_factor_band() {
        // Every cell 8× slower: the median would normalise it away, but the
        // host-factor clamp (4×) refuses to credit that much to hardware —
        // all cells fail (8 > 4 · 1.25 with walls large enough that the
        // absolute slack is immaterial).
        let mut committed = sample();
        for e in &mut committed.entries {
            e.wall_ms = 100.0;
        }
        let mut current = committed.clone();
        for e in &mut current.entries {
            e.wall_ms = 800.0;
        }
        let failures = compare(&current, &committed, 0.25);
        assert_eq!(failures.len(), committed.entries.len(), "{failures:?}");
        assert!(failures.iter().all(|f| f.contains("wall-clock regression")));
    }

    #[test]
    fn tiny_cells_get_absolute_slack() {
        // A sub-millisecond cell doubling in time is scheduler jitter, not a
        // regression; the absolute slack must absorb it.
        let mut committed = sample();
        committed.entries[0].wall_ms = 0.4;
        let mut current = committed.clone();
        current.entries[0].wall_ms = 0.9;
        assert!(compare(&current, &committed, 0.25).is_empty());
    }

    #[test]
    fn wall_clock_speedup_always_passes() {
        let committed = sample();
        let mut current = sample();
        current.entries[0].wall_ms = committed.entries[0].wall_ms * 0.1;
        current.entries[0].tasks_per_sec *= 10.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
    }

    #[test]
    fn missing_and_extra_cells_fail() {
        let committed = sample();
        let mut current = sample();
        current.entries[0].backend = "TaskSuperscalar".to_string();
        let failures = compare(&current, &committed, DEFAULT_WALL_TOLERANCE);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("missing")));
        assert!(failures.iter().any(|f| f.contains("not in the committed")));
    }

    #[test]
    fn schema_mismatch_fails_fast() {
        let committed = sample();
        let mut current = sample();
        current.schema_version += 1;
        let failures = compare(&current, &committed, DEFAULT_WALL_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("schema version"), "{failures:?}");
    }

    #[test]
    fn zero_wall_cells_do_not_poison_the_host_factor() {
        // One committed cell with a 0 ms wall (degenerate measurement): its
        // infinite ratio must be skipped, not fed to the median, and the
        // remaining identical cells still pass the gate.
        let mut committed = sample();
        committed.entries[0].wall_ms = 0.0;
        let mut current = committed.clone();
        current.entries[0].wall_ms = 3.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
        // And a fresh 0 ms cell against a committed positive wall (ratio 0)
        // must not drag the factor towards zero and fail healthy cells.
        let committed = sample();
        let mut current = sample();
        current.entries[0].wall_ms = 0.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
    }

    #[test]
    fn single_cell_matrix_uses_unit_host_factor() {
        // With one comparable cell the "median" is the cell's own ratio, so
        // a real 2× regression would be normalised away as hardware. The
        // minimum-comparable-cells rule pins the factor to 1.0 instead, and
        // the regression fires.
        let mut committed = sample();
        committed.entries.truncate(1);
        committed.entries[0].wall_ms = 100.0;
        let mut current = committed.clone();
        current.entries[0].wall_ms = 200.0;
        let failures = compare(&current, &committed, 0.25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("wall-clock regression"),
            "{failures:?}"
        );
        // An in-tolerance single cell still passes.
        current.entries[0].wall_ms = 110.0;
        assert!(compare(&current, &committed, 0.25).is_empty());
    }

    #[test]
    fn stored_geomean_is_recomputed_and_checked_on_load() {
        let baseline = sample();
        let good = baseline.to_json();
        // The writer's own output round-trips.
        Baseline::from_json(&good).expect("self-written geomean must verify");
        // Tampering with the stored summary (e.g. a bad hand merge) fails
        // the load with a recompute mismatch.
        let recomputed = geomean_tasks_per_sec(&baseline);
        let tampered = good.replace(
            &format!("\"geomean_tasks_per_sec\": {recomputed:.1}"),
            &format!("\"geomean_tasks_per_sec\": {:.1}", recomputed * 2.0),
        );
        assert_ne!(good, tampered, "replacement must have matched");
        let err = Baseline::from_json(&tampered).unwrap_err();
        assert!(err.contains("geomean_tasks_per_sec mismatch"), "{err}");
        // Files from before the summary field existed load fine without it.
        let without = good
            .lines()
            .filter(|l| !l.contains("geomean_tasks_per_sec"))
            .collect::<Vec<_>>()
            .join("\n");
        Baseline::from_json(&without).expect("summary field is optional");
    }

    #[test]
    #[should_panic(expected = "wall_ms: cannot serialise non-finite value")]
    fn non_finite_wall_is_rejected_at_write_time() {
        let mut baseline = sample();
        baseline.entries[0].wall_ms = f64::INFINITY;
        let _ = baseline.to_json();
    }

    #[test]
    #[should_panic(expected = "tasks_per_sec: cannot serialise non-finite value")]
    fn non_finite_throughput_is_rejected_at_write_time() {
        let mut baseline = sample();
        baseline.entries[0].tasks_per_sec = f64::NAN;
        let _ = baseline.to_json();
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Baseline::from_json("").is_err());
        assert!(Baseline::from_json("{").is_err());
        assert!(Baseline::from_json("[1, 2]").is_err());
        assert!(Baseline::from_json("{\"schema_version\": \"x\"}").is_err());
        assert!(json::parse("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn json_escape_round_trips() {
        // Includes a control character the writer serialises as \u0001.
        let tricky = "a\"b\\c\nd\u{1}e";
        let escaped = json::escape(tricky);
        assert!(escaped.contains("\\u0001"), "{escaped}");
        let text = format!("{{\"k\": {escaped}}}");
        let value = json::parse(&text).unwrap();
        let obj = value.as_object("t").unwrap();
        assert_eq!(json::field(obj, "k").unwrap().as_str("k").unwrap(), tricky);
        assert!(json::parse("{\"k\": \"\\u123\"}").is_err(), "truncated");
        assert!(json::parse("{\"k\": \"\\ud800\"}").is_err(), "surrogate");
    }
}
