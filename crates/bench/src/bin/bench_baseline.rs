//! Performance-baseline runner and CI regression gate.
//!
//! ```text
//! bench_baseline emit  [path]                  # measure and (over)write the baseline
//! bench_baseline check [committed] [fresh_out] # measure, compare, nonzero exit on failure
//! ```
//!
//! `check` compares the fresh measurement against the committed JSON: any
//! makespan-cycle or DMU-access drift fails (modeled metrics are a
//! correctness canary), and wall-clock may regress at most
//! `BENCH_WALL_TOLERANCE` (default 0.25 = 25%). When `fresh_out` is given
//! the fresh measurement is also written there, so CI can upload it as an
//! artifact for the next baseline refresh.

use std::process::ExitCode;

use tdm_bench::baseline::{
    self, compare, geomean_tasks_per_sec, measure, Baseline, DEFAULT_WALL_TOLERANCE,
};

const DEFAULT_PATH: &str = "BENCH_baseline.json";

fn print_summary(baseline: &Baseline) {
    println!(
        "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:>9} | {:>12} |",
        "Benchmark", "Backend", "Tasks", "Makespan cycles", "DMU accesses", "Wall ms", "Tasks/sec"
    );
    println!("|{}|", "-".repeat(106));
    for e in &baseline.entries {
        println!(
            "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:>9.2} | {:>12.0} |",
            e.benchmark,
            e.backend,
            e.tasks,
            e.makespan_cycles,
            e.dmu_accesses,
            e.wall_ms,
            e.tasks_per_sec
        );
    }
    println!(
        "geomean throughput: {:.0} simulated tasks/sec",
        geomean_tasks_per_sec(baseline)
    );
}

fn wall_tolerance() -> f64 {
    match std::env::var("BENCH_WALL_TOLERANCE") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring unparsable BENCH_WALL_TOLERANCE={v:?}");
            DEFAULT_WALL_TOLERANCE
        }),
        Err(_) => DEFAULT_WALL_TOLERANCE,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("check");
    match mode {
        "emit" => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            println!("measuring the benchmark × backend matrix...");
            let fresh = measure();
            print_summary(&fresh);
            if let Err(e) = std::fs::write(path, fresh.to_json()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("baseline written to {path}");
            ExitCode::SUCCESS
        }
        "check" => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            let committed = match std::fs::read_to_string(path) {
                Ok(text) => match Baseline::from_json(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {path} is not a valid baseline: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e} (run `bench_baseline emit` first)");
                    return ExitCode::FAILURE;
                }
            };
            println!("measuring the benchmark × backend matrix...");
            let fresh = measure();
            print_summary(&fresh);
            if let Some(out) = args.get(2) {
                if let Err(e) = std::fs::write(out, fresh.to_json()) {
                    eprintln!("error: cannot write fresh baseline to {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("fresh measurement written to {out}");
            }
            let tolerance = wall_tolerance();
            let failures = compare(&fresh, &committed, tolerance);
            if failures.is_empty() {
                println!(
                    "baseline gate PASSED against {path} (schema v{}, wall tolerance {:.0}%)",
                    baseline::SCHEMA_VERSION,
                    tolerance * 100.0
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("baseline gate FAILED against {path}:");
                for f in &failures {
                    eprintln!("  - {f}");
                }
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("usage: bench_baseline [emit|check] [path] [fresh_out]");
            eprintln!("unknown mode {other:?}");
            ExitCode::FAILURE
        }
    }
}
