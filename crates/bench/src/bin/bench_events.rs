//! Event-queue microbenchmark: the hierarchical [`TimingWheel`] against the
//! retired binary-heap [`NaiveEventQueue`], under the event distributions
//! the execution driver actually produces.
//!
//! ```text
//! bench_events run   [--ops N] [--seed S] [--json PATH]   # full comparison table
//! bench_events smoke [--ops N] [--seed S] [--json PATH]   # CI: assert wheel ≥ heap
//!                                                         # on the near-future hold
//!                                                         # distribution
//! ```
//!
//! Every distribution is a *hold model*: the queue is pre-filled to a fixed
//! pending count, then each operation pops the earliest event and schedules
//! a replacement at `now + delta`, with `delta` drawn from the
//! distribution. That is exactly the execution driver's steady state (one
//! in-flight event per simulated core, rescheduled at task completion), so
//! "wheel ≥ heap here" is the claim that matters for simulate-loop
//! throughput:
//!
//! * `near-sparse` — 33 pending events (the 32-core chip + master),
//!   task-duration-sized deltas. The driver's regime; dominated by the
//!   wheel's lone-event fast path.
//! * `near-dense` — 8192 pending events, short deltas: the classic
//!   calendar-queue win, where the heap pays its O(log n).
//! * `ties` — coarse deltas forcing heavy same-cycle FIFO batches.
//! * `mixed-horizon` — deltas spanning every wheel level up to 2^36,
//!   maximising cascade work (the wheel's worst case).
//!
//! Results print as a table and optionally serialise to JSON (schema shared
//! with the other bench emitters) so CI can archive them next to the perf
//! baseline.

use std::process::ExitCode;
use std::time::Instant;

use tdm_bench::baseline::json;
use tdm_bench::cli::{self, Args};
use tdm_sim::clock::Cycle;
use tdm_sim::event::{NaiveEventQueue, TimingWheel};
use tdm_sim::rng::SplitMix64;

const USAGE: &str = "usage: bench_events [run|smoke] [--ops N] [--seed S] [--json PATH]";

/// JSON schema version of the emitted results.
const SCHEMA_VERSION: u64 = 1;

/// Operations per distribution × queue measurement in `run` mode.
const DEFAULT_RUN_OPS: usize = 4_000_000;
/// Operations in `smoke` mode: small enough for a CI step, large enough
/// that the ops/sec ratio is stable.
const DEFAULT_SMOKE_OPS: usize = 1_000_000;
/// Measurement repetitions; the best (minimum-wall) repetition is recorded,
/// the achievable speed rather than the noisiest.
const REPS: u32 = 3;

struct Options {
    ops: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_options(args: &[String], default_ops: usize) -> Result<Options, String> {
    let mut options = Options {
        ops: default_ops,
        seed: 42,
        json: None,
    };
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--ops" => options.ops = cli::parse_count("--ops", &args.value("--ops")?, "")?,
            "--seed" => options.seed = cli::parse_u64("--seed", &args.value("--seed")?)?,
            "--json" => options.json = Some(args.value("--json")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// One benchmarked distribution: a label, the steady-state pending count,
/// and the delta generator.
struct Distribution {
    label: &'static str,
    pending: usize,
    delta: fn(&mut SplitMix64) -> u64,
}

/// The driver's regime: ~one event per core, task-duration-sized deltas
/// (10 µs–1 ms at 2 GHz).
fn delta_near_sparse(rng: &mut SplitMix64) -> u64 {
    20_000 + rng.next_below(2_000_000)
}

/// Dense near-future traffic: many pending events, short deltas.
fn delta_near_dense(rng: &mut SplitMix64) -> u64 {
    1 + rng.next_below(4_096)
}

/// Coarse delta grid: most events collide on a cycle, exercising same-cycle
/// FIFO batches.
fn delta_ties(rng: &mut SplitMix64) -> u64 {
    rng.next_below(4) * 1_000
}

/// Deltas spanning every wheel level up to 2^36: maximal cascading.
fn delta_mixed(rng: &mut SplitMix64) -> u64 {
    let magnitude = rng.next_below(37);
    rng.next_below(1u64 << magnitude)
}

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution {
            label: "near-sparse",
            pending: 33,
            delta: delta_near_sparse,
        },
        Distribution {
            label: "near-dense",
            pending: 8_192,
            delta: delta_near_dense,
        },
        Distribution {
            label: "ties",
            pending: 256,
            delta: delta_ties,
        },
        Distribution {
            label: "mixed-horizon",
            pending: 1_024,
            delta: delta_mixed,
        },
    ]
}

/// One measured cell: a queue implementation driven through a distribution.
struct Measurement {
    distribution: &'static str,
    queue: &'static str,
    ops: usize,
    wall_ms: f64,
    mops_per_sec: f64,
    /// Checksum of popped payloads; identical across queue implementations
    /// (both deliver the same timeline) and keeps the loop un-optimisable.
    checksum: u64,
}

/// The two queue implementations behind one face, so the hold model drives
/// both through the exact same traffic (monomorphised — no dispatch in the
/// measured loop).
trait Queue: Default {
    const NAME: &'static str;
    fn schedule(&mut self, time: Cycle, payload: u64);
    fn pop(&mut self) -> (Cycle, u64);
}

impl Queue for TimingWheel<u64> {
    const NAME: &'static str = "wheel";
    fn schedule(&mut self, time: Cycle, payload: u64) {
        TimingWheel::schedule(self, time, payload);
    }
    fn pop(&mut self) -> (Cycle, u64) {
        TimingWheel::pop(self).expect("hold model never drains the queue")
    }
}

impl Queue for NaiveEventQueue<u64> {
    const NAME: &'static str = "heap";
    fn schedule(&mut self, time: Cycle, payload: u64) {
        NaiveEventQueue::schedule(self, time, payload);
    }
    fn pop(&mut self) -> (Cycle, u64) {
        NaiveEventQueue::pop(self).expect("hold model never drains the queue")
    }
}

/// Hold-model loop over either queue implementation.
fn hold_model<Q: Queue>(
    ops: usize,
    pending: usize,
    seed: u64,
    delta: fn(&mut SplitMix64) -> u64,
) -> u64 {
    let mut q = Q::default();
    let mut rng = SplitMix64::new(seed);
    for i in 0..pending as u64 {
        q.schedule(Cycle::new(delta(&mut rng)), i);
    }
    let mut checksum = 0u64;
    for i in 0..ops as u64 {
        let (now, payload) = q.pop();
        checksum = checksum
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(now.raw() ^ payload);
        q.schedule(now + Cycle::new(delta(&mut rng)), pending as u64 + i);
    }
    checksum
}

fn measure<Q: Queue>(dist: &Distribution, ops: usize, seed: u64) -> Measurement {
    let mut best_wall = f64::INFINITY;
    let mut checksum = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let sum = hold_model::<Q>(ops, dist.pending, seed, dist.delta);
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        match checksum {
            None => checksum = Some(sum),
            Some(c) => assert_eq!(c, sum, "nondeterministic microbench run"),
        }
    }
    // Each hold-model operation is one pop + one schedule.
    let qops = (ops * 2) as f64;
    Measurement {
        distribution: dist.label,
        queue: Q::NAME,
        ops,
        wall_ms: best_wall * 1e3,
        mops_per_sec: qops / best_wall.max(1e-9) / 1e6,
        checksum: checksum.expect("at least one repetition ran"),
    }
}

fn print_results(results: &[Measurement]) {
    println!(
        "| {:<14} | {:<6} | {:>9} | {:>9} | {:>12} |",
        "Distribution", "Queue", "Ops", "Wall ms", "Mops/sec"
    );
    println!("|{}|", "-".repeat(64));
    for m in results {
        println!(
            "| {:<14} | {:<6} | {:>9} | {:>9.2} | {:>12.1} |",
            m.distribution, m.queue, m.ops, m.wall_ms, m.mops_per_sec
        );
    }
}

fn results_to_json(results: &[Measurement]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "{{\"distribution\": {}, \"queue\": {}, \"ops\": {}, \
                 \"wall_ms\": {:.3}, \"mops_per_sec\": {:.2}, \"checksum\": {}}}",
                json::escape(m.distribution),
                json::escape(m.queue),
                m.ops,
                m.wall_ms,
                m.mops_per_sec,
                json::escape(&m.checksum.to_string()),
            )
        })
        .collect();
    json::document(
        &[("schema_version", SCHEMA_VERSION.to_string())],
        "results",
        &rows,
    )
}

/// Runs every distribution on both queues; checks the two implementations
/// delivered identical timelines (checksums), and — when `gate` — that the
/// wheel meets or beats the heap on the near-future distributions.
fn run(options: &Options, gate: bool) -> Result<ExitCode, String> {
    println!(
        "event-queue hold model: {} ops × {} distributions × (wheel, heap), best of {REPS}\n",
        options.ops,
        distributions().len()
    );
    let mut results = Vec::new();
    let mut failures = 0;
    for dist in distributions() {
        let wheel = measure::<TimingWheel<u64>>(&dist, options.ops, options.seed);
        let heap = measure::<NaiveEventQueue<u64>>(&dist, options.ops, options.seed);
        if wheel.checksum != heap.checksum {
            eprintln!(
                "FAIL {}: wheel and heap delivered different timelines",
                dist.label
            );
            failures += 1;
        }
        let ratio = wheel.mops_per_sec / heap.mops_per_sec.max(1e-9);
        let gated = gate && dist.label.starts_with("near");
        println!(
            "{:<14} wheel/heap = {ratio:.2}×{}",
            dist.label,
            if gated { " (gated: must be ≥ 1)" } else { "" }
        );
        if gated && ratio < 1.0 {
            eprintln!(
                "FAIL {}: wheel at {:.1} Mops/sec is slower than heap at {:.1} Mops/sec",
                dist.label, wheel.mops_per_sec, heap.mops_per_sec
            );
            failures += 1;
        }
        results.push(wheel);
        results.push(heap);
    }
    println!();
    print_results(&results);
    if let Some(path) = &options.json {
        cli::write_output(path, &results_to_json(&results))?;
        println!("results written to {path} (JSON)");
    }
    if failures > 0 {
        eprintln!("\n{failures} failure(s)");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("run");
    let rest = args.get(1..).unwrap_or(&[]);
    let outcome = match mode {
        "run" => parse_options(rest, DEFAULT_RUN_OPS).and_then(|o| run(&o, false)),
        "smoke" => parse_options(rest, DEFAULT_SMOKE_OPS).and_then(|o| run(&o, true)),
        other => {
            eprintln!("{USAGE}");
            eprintln!("error: unknown mode {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{USAGE}");
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
