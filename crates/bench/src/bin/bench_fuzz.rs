//! Differential conformance fuzzer over the adversarial workload grammar.
//!
//! Draws N seeded grammar specs (`tdm_workloads::grammar`), runs every
//! backend × scheduler cell of each, and checks the full differential
//! contract against the `TaskGraph` golden model:
//!
//! * **validity** — every cell's finish order is a topological order of the
//!   reference graph and a permutation of the workload (no lost or
//!   duplicated task);
//! * **eager ≡ streaming** — the eager and streaming drivers produce
//!   bit-identical `RunReport`s for every cell;
//! * **resume identity** — one rotating cell per case is checkpointed at
//!   quarter-makespan intervals (every snapshot pushed through the binary
//!   codec) and resumed from each checkpoint, eager and streaming, with
//!   bit-identical reports;
//! * **windowed validity** — one rotating cell per case replays through a
//!   tight master window and must still conform and bound residency;
//! * **trace round-trip** — the case dumps to a `tdmtrace v1` file that
//!   re-dumps byte-identically and replays with a bit-identical report;
//! * **fault leg** (`--fault-rate R`, R > 0) — one rotating cell per case
//!   replays under a survivable fault schedule (per-task fault cap below
//!   the retry budget, sticky core faults at `R/8`): the typed outcomes of
//!   the eager and streaming drivers must agree field for field (with
//!   `peak_resident_tasks` excluded, exactly as in the fault-free driver
//!   identity), the faulted schedule must still pass the golden model with
//!   every fault retried (no lost work), and resume from every mid-fault
//!   checkpoint must be bit-identical.
//!
//! A failing case is shrunk by halving its shape list while the failure
//! persists (sound because phases are mutually independent and derive their
//! content from `seed ^ phase`: truncation never perturbs surviving
//! phases), then printed as a replayable reproducer:
//!
//! ```text
//! bench_fuzz run [--cases N] [--seed S] [--case I] [--shapes LIST]
//!                [--fault-rate R] [--retry-budget B]
//!                [--shrink] [--reproducer PATH]
//! ```
//!
//! `--case I` replays one case of a sweep; `--shapes chain:32,storm:64x4`
//! replays an explicit (e.g. shrunken) spec with `--seed` as the content
//! seed. The CI smoke is `run --cases 64 --shrink` with the default fixed
//! base seed, so green is reproducible; `--reproducer` writes the
//! reproducer commands to a file for artifact upload on failure.

use std::process::ExitCode;

use tdm_bench::cli::{self, Args};
use tdm_bench::sweep::point_seed;
use tdm_runtime::exec::{
    resume, resume_outcome, resume_stream, simulate, simulate_checkpointed,
    simulate_checkpointed_outcome, simulate_outcome, simulate_stream, simulate_stream_checkpointed,
    simulate_stream_outcome, Backend, ExecConfig, RunOutcome, RunReport,
};
use tdm_runtime::fault::FaultConfig;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_runtime::task::{TaskRef, Workload};
use tdm_runtime::tdg::TaskGraph;
use tdm_runtime::trace::{self, TraceSource};
use tdm_sim::clock::Cycle;
use tdm_sim::config::ChipConfig;
use tdm_sim::snapshot::Snapshot;
use tdm_workloads::grammar::GrammarSpec;

const USAGE: &str = "usage: bench_fuzz run [--cases N] [--seed S] [--case I] \
    [--shapes chain:32,storm:64x4,...] [--fault-rate R] [--retry-budget B] \
    [--shrink] [--reproducer PATH]";

/// Default number of fuzz cases.
const DEFAULT_CASES: usize = 16;
/// Default base seed: fixed, so CI green is reproducible.
const DEFAULT_SEED: u64 = 42;
/// Tight master window exercised by the windowed-validity check.
const TIGHT_WINDOWS: [usize; 3] = [2, 7, 64];

struct Options {
    cases: usize,
    seed: u64,
    case: Option<usize>,
    shapes: Option<String>,
    fault: Option<FaultConfig>,
    shrink: bool,
    reproducer: Option<String>,
}

impl Options {
    /// The `--fault-rate R [--retry-budget B]` suffix for reproducer
    /// commands, so a replayed failure re-runs the same fault leg.
    fn fault_flags(&self) -> String {
        match &self.fault {
            Some(fault) => format!(
                " --fault-rate {} --retry-budget {}",
                fault.fault_rate, fault.retry_budget
            ),
            None => String::new(),
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        cases: DEFAULT_CASES,
        seed: DEFAULT_SEED,
        case: None,
        shapes: None,
        fault: None,
        shrink: false,
        reproducer: None,
    };
    let mut fault_rate: Option<f64> = None;
    let mut retry_budget: Option<u32> = None;
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--cases" => {
                options.cases = cli::parse_count("--cases", &args.value("--cases")?, " case")?;
            }
            "--seed" => options.seed = cli::parse_u64("--seed", &args.value("--seed")?)?,
            "--case" => {
                let value = args.value("--case")?;
                let index: usize = value.parse().map_err(|e| format!("--case: {e}"))?;
                options.case = Some(index);
            }
            "--shapes" => options.shapes = Some(args.value("--shapes")?),
            "--fault-rate" => {
                fault_rate = Some(cli::parse_rate(
                    "--fault-rate",
                    &args.value("--fault-rate")?,
                )?);
            }
            "--retry-budget" => {
                let n =
                    cli::parse_count("--retry-budget", &args.value("--retry-budget")?, " retry")?;
                retry_budget = Some(u32::try_from(n).unwrap_or(u32::MAX));
            }
            "--shrink" => options.shrink = true,
            "--reproducer" => options.reproducer = Some(args.value("--reproducer")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if retry_budget.is_some() && fault_rate.is_none() {
        return Err("--retry-budget needs --fault-rate".to_string());
    }
    if let Some(rate) = fault_rate {
        if rate > 0.0 {
            // Survivable by construction: the per-task fault cap stays at 2,
            // and the budget is clamped to at least the cap, so no task can
            // exhaust its retries — the fuzz contract checks completed runs.
            let budget = retry_budget
                .unwrap_or(FaultConfig::default().retry_budget)
                .max(2);
            options.fault = Some(
                FaultConfig::default()
                    .with_fault_rate(rate)
                    .with_max_faults_per_task(2)
                    .with_retry_budget(budget)
                    .with_core_fault_rate(rate / 8.0),
            );
        }
    }
    if let Some(index) = options.case {
        if options.shapes.is_some() {
            return Err("--case and --shapes are mutually exclusive".to_string());
        }
        if index >= options.cases {
            options.cases = index + 1;
        }
    }
    Ok(options)
}

/// The execution configuration every check runs under: a small chip keeps
/// 20-cell cases fast while still scheduling in parallel, and schedule
/// tracing feeds the golden-model replay.
fn fuzz_config() -> ExecConfig {
    ExecConfig {
        chip: ChipConfig::with_cores(8),
        ..ExecConfig::default()
    }
    .with_trace_schedule()
}

fn backends() -> Vec<Backend> {
    vec![
        Backend::Software,
        Backend::tdm_default(),
        Backend::Carbon,
        Backend::task_superscalar_default(),
    ]
}

/// `order` must contain every task exactly once.
fn check_permutation(order: &[TaskRef], n: usize) -> Result<(), String> {
    if order.len() != n {
        return Err(format!("finished {} of {n} tasks", order.len()));
    }
    let mut seen = vec![false; n];
    for task in order {
        if task.index() >= n || seen[task.index()] {
            return Err(format!("task {task} lost, duplicated or out of range"));
        }
        seen[task.index()] = true;
    }
    Ok(())
}

/// Golden-model checks on one report: permutation + topological validity.
fn check_golden(graph: &TaskGraph, report: &RunReport, context: &str) -> Result<(), String> {
    let order = report.finish_order();
    check_permutation(&order, graph.len()).map_err(|e| format!("{context}: {e}"))?;
    if let Err((pred, task)) = graph.check_order(&order) {
        return Err(format!(
            "{context}: task {task} finished before its predecessor {pred}"
        ));
    }
    Ok(())
}

/// A capture interval yielding several checkpoints over the straight run.
fn quarter_interval(straight: &RunReport) -> Cycle {
    Cycle::new((straight.makespan().raw() / 4).max(1))
}

/// Field-wise eager-vs-streaming identity. `peak_resident_tasks` is
/// excluded: it measures the driver's memory footprint (eager materialises
/// the whole workload, streaming only what is in flight), not the schedule.
fn cross_driver_diff(eager: &RunReport, streamed: &RunReport) -> Option<&'static str> {
    if eager.makespan() != streamed.makespan() {
        Some("makespan")
    } else if eager.stats != streamed.stats {
        Some("runtime stats")
    } else if eager.hardware != streamed.hardware {
        Some("hardware report")
    } else if eager.schedule != streamed.schedule {
        Some("schedule trace")
    } else if eager.tasks != streamed.tasks {
        Some("task count")
    } else if (eager.faults_injected, eager.retries, eager.retired_cores)
        != (
            streamed.faults_injected,
            streamed.retries,
            streamed.retired_cores,
        )
    {
        Some("fault counters")
    } else {
        None
    }
}

/// [`cross_driver_diff`] lifted to typed outcomes: completed runs compare
/// report-wise, aborts must agree on the offending task and attempt count
/// (and their partial reports), and a completed/aborted mismatch is itself
/// a divergence.
fn outcome_diff(eager: &RunOutcome, streamed: &RunOutcome) -> Option<&'static str> {
    match (eager, streamed) {
        (RunOutcome::Completed(e), RunOutcome::Completed(s)) => cross_driver_diff(e, s),
        (
            RunOutcome::Aborted {
                task: e_task,
                attempts: e_attempts,
                report: e_report,
            },
            RunOutcome::Aborted {
                task: s_task,
                attempts: s_attempts,
                report: s_report,
            },
        ) => {
            if (e_task, e_attempts) != (s_task, s_attempts) {
                Some("aborting task")
            } else {
                cross_driver_diff(e_report, s_report)
            }
        }
        _ => Some("completion outcome"),
    }
}

/// Runs the full differential contract on one spec. Returns the number of
/// simulations executed, or the first failure. `fault`, when set, adds the
/// fault leg on the rotating cell.
fn check_case(spec: &GrammarSpec, fault: Option<&FaultConfig>) -> Result<usize, String> {
    let config = fuzz_config();
    let workload: Workload = spec.stream().into_workload();
    let graph = TaskGraph::build(&workload);
    let mut sims = 0usize;

    // The rotating cell for the expensive per-case checks (resume, window,
    // trace) — a pure function of the content seed, so a replayed case
    // re-runs exactly the same checks.
    let backends = backends();
    let schedulers = SchedulerKind::all();
    let cell = (spec.seed % (backends.len() * schedulers.len()) as u64) as usize;
    let (cell_backend, cell_scheduler) = (
        &backends[cell / schedulers.len()],
        schedulers[cell % schedulers.len()],
    );

    // Validity + eager≡streaming, every cell.
    for backend in &backends {
        for &scheduler in &schedulers {
            let context = format!("{} with {}", backend.name(), scheduler.name());
            let eager = simulate(&workload, backend, scheduler, &config);
            check_golden(&graph, &eager, &context)?;
            let mut stream = spec.stream();
            let streamed = simulate_stream(&mut stream, backend, scheduler, &config);
            sims += 2;
            if let Some(field) = cross_driver_diff(&eager, &streamed) {
                return Err(format!(
                    "{context}: eager and streaming diverged on {field}"
                ));
            }
        }
    }

    // Resume identity on the rotating cell: eager and streaming, every
    // checkpoint through the binary codec.
    let context = format!(
        "{} with {} (resume)",
        cell_backend.name(),
        cell_scheduler.name()
    );
    let straight = simulate(&workload, cell_backend, cell_scheduler, &config);
    let ckpt_config = config
        .clone()
        .with_checkpoint_every(quarter_interval(&straight));
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut codec_err: Option<String> = None;
    let checkpointed = simulate_checkpointed(
        &workload,
        cell_backend,
        cell_scheduler,
        &ckpt_config,
        &mut |snap| match Snapshot::from_bytes(&snap.to_bytes()) {
            Ok(snap) => {
                snaps.push(snap);
                true
            }
            Err(e) => {
                codec_err = Some(e.to_string());
                false
            }
        },
    );
    if let Some(e) = codec_err {
        return Err(format!("{context}: snapshot codec round trip failed: {e}"));
    }
    let checkpointed = checkpointed.ok_or_else(|| format!("{context}: sink halted the run"))?;
    sims += 2;
    if checkpointed != straight {
        return Err(format!("{context}: capture perturbed the run"));
    }
    if snaps.is_empty() {
        return Err(format!("{context}: no checkpoints captured"));
    }
    for (i, snap) in snaps.iter().enumerate() {
        let resumed = resume(&workload, snap, &ckpt_config)
            .map_err(|e| format!("{context}: checkpoint {i}: {e}"))?;
        sims += 1;
        if resumed != straight {
            return Err(format!("{context}: resume from checkpoint {i} diverged"));
        }
    }
    let mut stream = spec.stream();
    let streamed_straight = simulate_stream(&mut stream, cell_backend, cell_scheduler, &config);
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut stream = spec.stream();
    let streamed_ckpt = simulate_stream_checkpointed(
        &mut stream,
        cell_backend,
        cell_scheduler,
        &ckpt_config,
        &mut |snap| {
            snaps.push(snap);
            true
        },
    )
    .ok_or_else(|| format!("{context}: streaming sink halted the run"))?;
    sims += 2;
    if streamed_ckpt != streamed_straight {
        return Err(format!("{context}: streaming capture perturbed the run"));
    }
    for (i, snap) in snaps.iter().enumerate() {
        let mut fresh = spec.stream();
        let resumed = resume_stream(&mut fresh, snap, &ckpt_config)
            .map_err(|e| format!("{context}: streaming checkpoint {i}: {e}"))?;
        sims += 1;
        if resumed != streamed_straight {
            return Err(format!(
                "{context}: streaming resume from checkpoint {i} diverged"
            ));
        }
    }

    // Windowed validity on the rotating cell: a tight master window must
    // still conform and bound residency (identity is not expected — the
    // throttled master changes the timeline).
    let window = TIGHT_WINDOWS[(spec.seed / 16) as usize % TIGHT_WINDOWS.len()];
    let context = format!(
        "{} with {} (window {window})",
        cell_backend.name(),
        cell_scheduler.name()
    );
    let mut stream = spec.stream();
    let windowed = simulate_stream(
        &mut stream,
        cell_backend,
        cell_scheduler,
        &config.clone().with_window(window),
    );
    sims += 1;
    check_golden(&graph, &windowed, &context)?;
    if windowed.peak_resident_tasks > window + 1 {
        return Err(format!(
            "{context}: {} specs resident, window bound is {}",
            windowed.peak_resident_tasks,
            window + 1
        ));
    }

    // Trace round-trip: dump → parse → re-dump byte-identically, and the
    // replay must be bit-identical to streaming the generator.
    let context = format!(
        "{} with {} (trace)",
        cell_backend.name(),
        cell_scheduler.name()
    );
    let text =
        trace::dump(&mut spec.stream()).map_err(|e| format!("{context}: dump failed: {e}"))?;
    let mut replay =
        TraceSource::parse(&text).map_err(|e| format!("{context}: parse failed: {e}"))?;
    let again =
        trace::dump(&mut replay.clone()).map_err(|e| format!("{context}: re-dump failed: {e}"))?;
    if text != again {
        return Err(format!(
            "{context}: dump → parse → dump is not byte-identical"
        ));
    }
    let replayed = simulate_stream(&mut replay, cell_backend, cell_scheduler, &config);
    sims += 1;
    if replayed != streamed_straight {
        return Err(format!(
            "{context}: trace replay diverged from the generator run"
        ));
    }

    // Fault leg on the rotating cell: typed-outcome identity across
    // drivers, golden validity of the faulted schedule, no lost work, and
    // bit-exact resume through mid-fault checkpoints.
    if let Some(fault) = fault {
        let context = format!(
            "{} with {} (faults)",
            cell_backend.name(),
            cell_scheduler.name()
        );
        let fault_config = config.clone().with_faults(fault.clone());
        let eager = simulate_outcome(&workload, cell_backend, cell_scheduler, &fault_config);
        let mut stream = spec.stream();
        let streamed =
            simulate_stream_outcome(&mut stream, cell_backend, cell_scheduler, &fault_config);
        sims += 2;
        if let Some(field) = outcome_diff(&eager, &streamed) {
            return Err(format!(
                "{context}: eager and streaming outcomes diverged on {field}"
            ));
        }
        let report = match &eager {
            RunOutcome::Completed(report) => report,
            RunOutcome::Aborted { task, attempts, .. } => {
                return Err(format!(
                    "{context}: survivable schedule aborted on task {task} \
                     after {attempts} attempts"
                ));
            }
        };
        check_golden(&graph, report, &context)?;
        if report.faults_injected != report.retries {
            return Err(format!(
                "{context}: {} faults but {} retries — lost work",
                report.faults_injected, report.retries
            ));
        }

        let ckpt_config = fault_config
            .clone()
            .with_checkpoint_every(quarter_interval(report));
        let mut snaps: Vec<Snapshot> = Vec::new();
        let mut codec_err: Option<String> = None;
        let checkpointed = simulate_checkpointed_outcome(
            &workload,
            cell_backend,
            cell_scheduler,
            &ckpt_config,
            &mut |snap| match Snapshot::from_bytes(&snap.to_bytes()) {
                Ok(snap) => {
                    snaps.push(snap);
                    true
                }
                Err(e) => {
                    codec_err = Some(e.to_string());
                    false
                }
            },
        );
        if let Some(e) = codec_err {
            return Err(format!("{context}: snapshot codec round trip failed: {e}"));
        }
        let checkpointed = checkpointed.ok_or_else(|| format!("{context}: sink halted the run"))?;
        sims += 1;
        if checkpointed != eager {
            return Err(format!("{context}: capture perturbed the run"));
        }
        if snaps.is_empty() {
            return Err(format!("{context}: no checkpoints captured"));
        }
        for (i, snap) in snaps.iter().enumerate() {
            let resumed = resume_outcome(&workload, snap, &ckpt_config)
                .map_err(|e| format!("{context}: checkpoint {i}: {e}"))?;
            sims += 1;
            if resumed != eager {
                return Err(format!("{context}: resume from checkpoint {i} diverged"));
            }
        }
    }

    Ok(sims)
}

/// Shrinks a failing spec by halving its shape list while the failure
/// persists. Truncation is the only sound reduction: phase `p` derives its
/// content from `seed ^ p`, so dropping a *suffix* never perturbs the
/// surviving phases.
fn shrink(mut spec: GrammarSpec, fault: Option<&FaultConfig>) -> GrammarSpec {
    while spec.shapes.len() > 1 {
        let mut candidate = spec.clone();
        candidate
            .shapes
            .truncate(candidate.shapes.len().div_ceil(2));
        if check_case(&candidate, fault).is_err() {
            spec = candidate;
        } else {
            break;
        }
    }
    spec
}

struct Failure {
    message: String,
    reproduce: Vec<String>,
}

fn run(options: &Options) -> Result<(), Failure> {
    let mut total_sims = 0usize;
    let mut total_tasks = 0usize;

    // Explicit shapes: a single case with --seed as the content seed.
    if let Some(shapes) = &options.shapes {
        let spec = GrammarSpec::parse(options.seed, shapes).map_err(|e| Failure {
            message: format!("--shapes: {e}"),
            reproduce: Vec::new(),
        })?;
        println!(
            "case explicit: seed {} shapes {} ({} tasks)",
            spec.seed,
            spec.encode(),
            spec.task_count()
        );
        return match check_case(&spec, options.fault.as_ref()) {
            Ok(sims) => {
                println!(
                    "fuzz: 1 case, {} tasks, {sims} simulations, all checks passed",
                    spec.task_count()
                );
                Ok(())
            }
            Err(message) => Err(Failure {
                reproduce: vec![format!(
                    "bench_fuzz run --seed {} --shapes {}{}",
                    spec.seed,
                    spec.encode(),
                    options.fault_flags()
                )],
                message,
            }),
        };
    }

    let indices: Vec<usize> = match options.case {
        Some(i) => vec![i],
        None => (0..options.cases).collect(),
    };
    for &index in &indices {
        let content_seed = point_seed(options.seed, index as u64);
        let spec = GrammarSpec::draw(content_seed);
        total_tasks += spec.task_count();
        match check_case(&spec, options.fault.as_ref()) {
            Ok(sims) => {
                total_sims += sims;
                println!(
                    "case {index:3}: grammar-{content_seed} {} ({} tasks) OK",
                    spec.encode(),
                    spec.task_count()
                );
            }
            Err(message) => {
                let mut reproduce = vec![format!(
                    "bench_fuzz run --seed {} --case {index}{}",
                    options.seed,
                    options.fault_flags()
                )];
                if options.shrink {
                    let small = shrink(spec, options.fault.as_ref());
                    reproduce.push(format!(
                        "bench_fuzz run --seed {} --shapes {}{}",
                        small.seed,
                        small.encode(),
                        options.fault_flags()
                    ));
                }
                return Err(Failure {
                    message: format!("case {index} (grammar-{content_seed}): {message}"),
                    reproduce,
                });
            }
        }
    }
    println!(
        "fuzz: {} cases, {total_tasks} tasks, {total_sims} simulations, all checks passed",
        indices.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match raw.split_first() {
        Some((mode, rest)) if mode == "run" => (mode.clone(), rest.to_vec()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    debug_assert_eq!(mode, "run");
    let options = match parse_options(&rest) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("bench_fuzz: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("FAILED: {}", failure.message);
            let mut file_lines = vec![format!("# {}", failure.message)];
            for line in &failure.reproduce {
                eprintln!("  reproduce: {line}");
                file_lines.push(line.clone());
            }
            if let Some(path) = &options.reproducer {
                file_lines.push(String::new());
                if let Err(e) = cli::write_output(path, &file_lines.join("\n")) {
                    eprintln!("bench_fuzz: {e}");
                }
            }
            ExitCode::FAILURE
        }
    }
}
