//! Scaled streaming-execution harness: million-task runs through the
//! windowed master, plus the Table II eager-vs-streaming equivalence gate.
//!
//! ```text
//! bench_scale run    [--tasks N] [--window W] [--bench NAME] [--backend B]
//!                    [--checkpoint-every CYCLES] [--checkpoint-file PATH] [--halt-after K]
//!                    [--fault-rate P] [--retry-budget R]
//! bench_scale smoke  [--tasks N] [--window W] [...]  # CI: small run, asserts bounds
//! bench_scale verify                                 # CI: Table II, 36 cells, bit-identical
//! bench_scale resume [--checkpoint-file PATH] [--verify]
//! ```
//!
//! * `run` drives each selected benchmark's scaled-up lazy generator
//!   ([`Benchmark::scaled_stream`]) through [`simulate_stream`] with a
//!   finite window (default 4096) and reports simulated tasks/sec and the
//!   peak number of resident `TaskSpec`s — which stays bounded by the
//!   window no matter how many tasks stream through. The default is a
//!   ≥1,000,000-task run per benchmark.
//! * `smoke` is the small CI variant (default 50,000 tasks, window 256): it
//!   fails (nonzero exit) if any run loses tasks or exceeds the resident
//!   bound.
//! * `verify` replays the full Table II benchmark × backend matrix twice —
//!   eager `simulate` over the collected workload vs `simulate_stream` over
//!   the lazy generator — and fails on any difference in makespan, task
//!   count or DMU access totals. This is the 36-cell equivalence gate the
//!   scaled-down conformance tests mirror in debug builds.
//! * `--checkpoint-every CYCLES` makes `run`/`smoke` write a binary snapshot
//!   (see `SNAPSHOT_FORMAT.md`) to `--checkpoint-file` at each interval of
//!   simulated time; `--halt-after K` stops the run at the K-th checkpoint,
//!   leaving the snapshot on disk as the resume point.
//! * `resume` reads the snapshot back, rebuilds the scaled generator from
//!   the BENCH section, fast-forwards it to the stored cursor and drives the
//!   run to completion. With `--verify` it also replays the same run
//!   uninterrupted and fails unless the two reports are bit-identical —
//!   the CI checkpoint smoke uses exactly this.
//! * `--fault-rate P` injects deterministic transient task failures with
//!   probability `P` per attempt (see `tdm_runtime::fault`); `--retry-budget
//!   R` bounds re-issues per task (default 3). The fault configuration is
//!   persisted in the BENCH section, so `resume` rebuilds the identical
//!   fault schedule without re-passing the flags.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use tdm_bench::cli::{self, Args};
use tdm_bench::standard_config;
use tdm_runtime::exec::{
    resume_stream, simulate, simulate_stream, simulate_stream_checkpointed, Backend, ExecConfig,
};
use tdm_runtime::fault::FaultConfig;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::clock::Cycle;
use tdm_sim::snapshot::{section, Persist, Reader, Snapshot};
use tdm_workloads::Benchmark;

/// Default task target for `run`: the million-task milestone.
const DEFAULT_RUN_TASKS: usize = 1_000_000;
/// Default task target for `smoke`: big enough to exercise windows and
/// scaled generators, small enough for a CI job step.
const DEFAULT_SMOKE_TASKS: usize = 50_000;
/// Default creation window for `run` (double the DMU's 2048 in-flight
/// tasks, so hardware backends are DMU-limited before window-limited).
const DEFAULT_RUN_WINDOW: usize = 4096;
/// Default creation window for `smoke`: deliberately tight.
const DEFAULT_SMOKE_WINDOW: usize = 256;

/// Default snapshot path when checkpointing is requested without
/// `--checkpoint-file`.
const DEFAULT_CHECKPOINT_FILE: &str = "bench_scale.snap";

struct Options {
    tasks: usize,
    window: usize,
    bench: Option<Benchmark>,
    backend: Backend,
    checkpoint_every: Option<u64>,
    checkpoint_file: String,
    halt_after: Option<usize>,
    fault: Option<FaultConfig>,
}

fn parse_options(args: &[String], tasks: usize, window: usize) -> Result<Options, String> {
    let mut options = Options {
        tasks,
        window,
        bench: None,
        backend: Backend::tdm_default(),
        checkpoint_every: None,
        checkpoint_file: DEFAULT_CHECKPOINT_FILE.to_string(),
        halt_after: None,
        fault: None,
    };
    let mut fault_rate: Option<f64> = None;
    let mut retry_budget: Option<u32> = None;
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--tasks" => {
                options.tasks = cli::parse_count("--tasks", &args.value("--tasks")?, "")?;
            }
            "--window" => {
                options.window = cli::parse_count(
                    "--window",
                    &args.value("--window")?,
                    " (the master needs one in-flight task; ExecConfig documents that a \
                     window of 0 behaves as 1)",
                )?;
            }
            "--bench" => {
                options.bench = Some(cli::parse_benchmark(&args.value("--bench")?)?);
            }
            "--backend" => {
                options.backend = cli::parse_backend(&args.value("--backend")?)?;
            }
            "--checkpoint-every" => {
                options.checkpoint_every = Some(cli::parse_count(
                    "--checkpoint-every",
                    &args.value("--checkpoint-every")?,
                    " cycle",
                )? as u64);
            }
            "--checkpoint-file" => {
                options.checkpoint_file = args.value("--checkpoint-file")?;
            }
            "--halt-after" => {
                options.halt_after = Some(cli::parse_count(
                    "--halt-after",
                    &args.value("--halt-after")?,
                    " checkpoint",
                )?);
            }
            "--fault-rate" => {
                fault_rate = Some(cli::parse_rate(
                    "--fault-rate",
                    &args.value("--fault-rate")?,
                )?);
            }
            "--retry-budget" => {
                retry_budget = Some(
                    cli::parse_count("--retry-budget", &args.value("--retry-budget")?, " retry")?
                        .min(u32::MAX as usize) as u32,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.halt_after.is_some() && options.checkpoint_every.is_none() {
        return Err("--halt-after needs --checkpoint-every".to_string());
    }
    if retry_budget.is_some() && fault_rate.is_none() {
        return Err("--retry-budget needs --fault-rate".to_string());
    }
    if let Some(rate) = fault_rate {
        let mut fault = FaultConfig::default().with_fault_rate(rate);
        if let Some(budget) = retry_budget {
            fault = fault.with_retry_budget(budget);
        }
        options.fault = Some(fault);
    }
    Ok(options)
}

fn selected(options: &Options) -> Vec<Benchmark> {
    match options.bench {
        Some(b) => vec![b],
        None => Benchmark::ALL.to_vec(),
    }
}

/// Serialises the BENCH section: what `resume` needs to rebuild the scaled
/// generator and the matching configuration (the rest of the run state is in
/// the driver-written sections).
fn bench_section(bench: Benchmark, options: &Options) -> Vec<u8> {
    let mut out = Vec::new();
    bench.name().to_string().save(&mut out);
    options.tasks.save(&mut out);
    options.window.save(&mut out);
    options.fault.save(&mut out);
    out
}

/// One scaled streaming run; returns `(tasks, peak_resident, tasks_per_sec,
/// makespan, faults, retries)`, or `Ok(None)` when `--halt-after` stopped
/// the run at a checkpoint.
#[allow(clippy::type_complexity)]
fn scaled_run(
    bench: Benchmark,
    options: &Options,
    config: &ExecConfig,
) -> Result<Option<(u64, usize, f64, u64, u64, u64)>, String> {
    let mut stream = bench.scaled_stream(options.tasks);
    let start = Instant::now();
    let report = if config.checkpoint_every.is_some() {
        let extra = bench_section(bench, options);
        let mut count = 0usize;
        let mut sink_error: Option<String> = None;
        let outcome = simulate_stream_checkpointed(
            &mut stream,
            &options.backend,
            SchedulerKind::Fifo,
            config,
            &mut |mut snap| {
                count += 1;
                snap.add_section(section::BENCH, extra.clone());
                if let Err(e) = snap.write_to(Path::new(&options.checkpoint_file)) {
                    sink_error = Some(e.to_string());
                    return false;
                }
                match options.halt_after {
                    Some(k) => count < k,
                    None => true,
                }
            },
        );
        if let Some(e) = sink_error {
            return Err(e);
        }
        match outcome {
            Some(report) => report,
            None => {
                println!(
                    "halted {} at checkpoint {count}; resume with: bench_scale resume \
                     --checkpoint-file {}",
                    bench.name(),
                    options.checkpoint_file
                );
                return Ok(None);
            }
        }
    } else {
        simulate_stream(&mut stream, &options.backend, SchedulerKind::Fifo, config)
    };
    let wall = start.elapsed().as_secs_f64();
    Ok(Some((
        report.tasks,
        report.peak_resident_tasks,
        report.tasks as f64 / wall.max(1e-9),
        report.makespan().raw(),
        report.faults_injected,
        report.retries,
    )))
}

fn run_or_smoke(options: &Options) -> ExitCode {
    // `parse_options` rejected window 0, so no clamp is needed here.
    let config = ExecConfig {
        window: options.window,
        checkpoint_every: options.checkpoint_every.map(Cycle::new),
        fault: options.fault.clone(),
        ..standard_config()
    };
    println!(
        "streaming {} tasks/benchmark through a window of {} on {} ({} cores)\n",
        options.tasks,
        config.window,
        options.backend.name(),
        config.chip.num_cores
    );
    println!(
        "| {:<14} | {:>9} | {:>13} | {:>16} | {:>12} |",
        "Benchmark", "Tasks", "Peak resident", "Makespan cycles", "Tasks/sec"
    );
    println!("|{}|", "-".repeat(78));
    let mut failures = 0;
    let mut total_faults = 0u64;
    let mut total_retries = 0u64;
    for bench in selected(options) {
        let (tasks, peak, throughput, makespan, faults, retries) =
            match scaled_run(bench, options, &config) {
                Ok(Some(outcome)) => outcome,
                // Halted at a checkpoint on request: the snapshot on disk is
                // the deliverable, not a completed run.
                Ok(None) => continue,
                Err(message) => {
                    eprintln!("FAIL {}: {message}", bench.name());
                    failures += 1;
                    continue;
                }
            };
        total_faults += faults;
        total_retries += retries;
        println!(
            "| {:<14} | {:>9} | {:>13} | {:>16} | {:>12.0} |",
            bench.name(),
            tasks,
            peak,
            makespan,
            throughput
        );
        if tasks < options.tasks as u64 {
            eprintln!(
                "FAIL {}: executed {tasks} tasks, expected at least {}",
                bench.name(),
                options.tasks
            );
            failures += 1;
        }
        // Window + 1 prefetched spec: the documented residency bound.
        if peak > config.window + 1 {
            eprintln!(
                "FAIL {}: {peak} specs resident exceeds window bound {}",
                bench.name(),
                config.window + 1
            );
            failures += 1;
        }
    }
    if let Some(fault) = &options.fault {
        println!(
            "\nfault injection (rate {}, retry budget {}): {total_faults} faults, \
             {total_retries} retries across all runs",
            fault.fault_rate, fault.retry_budget
        );
        if total_faults != total_retries {
            eprintln!("FAIL: {total_faults} faults but {total_retries} retries — lost work");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("\nall runs stayed within the window bound");
    ExitCode::SUCCESS
}

/// Table II equivalence: every benchmark × backend cell, eager vs streaming,
/// must agree bit-for-bit on the modeled metrics.
fn verify() -> ExitCode {
    let config = standard_config();
    let mut failures = 0;
    println!(
        "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:<9} |",
        "Benchmark", "Backend", "Tasks", "Makespan cycles", "DMU accesses", "Streaming"
    );
    println!("|{}|", "-".repeat(92));
    for bench in Benchmark::ALL {
        for backend in tdm_bench::baseline::matrix_backends() {
            // The paper's methodology: hardware dependence tracking uses the
            // TDM-optimal granularity, the software runtimes their own.
            let hardware_granularity =
                matches!(backend, Backend::Tdm(_) | Backend::TaskSuperscalar(_));
            let workload = if hardware_granularity {
                bench.tdm_workload()
            } else {
                bench.software_workload()
            };
            let eager = simulate(&workload, &backend, SchedulerKind::Fifo, &config);
            let mut stream = if hardware_granularity {
                bench.tdm_stream()
            } else {
                bench.software_stream()
            };
            let streamed = simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &config);
            let accesses = |r: &tdm_runtime::exec::RunReport| {
                r.hardware.as_ref().map_or(0, |hw| hw.stats.total_accesses)
            };
            let identical = eager.makespan() == streamed.makespan()
                && eager.tasks == streamed.tasks
                && eager.stats == streamed.stats
                && accesses(&eager) == accesses(&streamed);
            println!(
                "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:<9} |",
                bench.name(),
                backend.name(),
                eager.tasks,
                eager.makespan().raw(),
                accesses(&eager),
                if identical { "identical" } else { "MISMATCH" }
            );
            if !identical {
                eprintln!(
                    "FAIL {} × {}: eager (makespan {}, {} accesses) vs streaming \
                     (makespan {}, {} accesses)",
                    bench.name(),
                    backend.name(),
                    eager.makespan(),
                    accesses(&eager),
                    streamed.makespan(),
                    accesses(&streamed)
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} cell(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("\nall 36 cells bit-identical between eager and streaming execution");
    ExitCode::SUCCESS
}

/// Resumes a halted checkpointed run from its snapshot file and drives it to
/// completion; with `verify_against_straight` it also replays the run
/// uninterrupted and fails unless the two reports are bit-identical.
fn resume_mode(checkpoint_file: &str, verify_against_straight: bool) -> Result<ExitCode, String> {
    let path = Path::new(checkpoint_file);
    let snap = Snapshot::read_from(path).map_err(|e| e.to_string())?;
    let payload = snap.section(section::BENCH).map_err(|e| {
        format!("{e} (was this snapshot written by bench_scale's --checkpoint-every?)")
    })?;
    let mut r = Reader::new(payload);
    let bench_name = String::load(&mut r).map_err(|e| e.to_string())?;
    let tasks = usize::load(&mut r).map_err(|e| e.to_string())?;
    let window = usize::load(&mut r).map_err(|e| e.to_string())?;
    let fault = Option::<FaultConfig>::load(&mut r).map_err(|e| e.to_string())?;
    r.expect_end("BENCH").map_err(|e| e.to_string())?;
    let bench = cli::parse_benchmark(&bench_name)?;

    let config = ExecConfig {
        window,
        fault,
        ..standard_config()
    };
    let mut stream = bench.scaled_stream(tasks);
    let start = Instant::now();
    let report = resume_stream(&mut stream, &snap, &config).map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    println!(
        "resumed {} from {}: {} tasks total, makespan {} cycles, {:.0} tasks/sec \
         (resumed leg)",
        bench.name(),
        checkpoint_file,
        report.tasks,
        report.makespan().raw(),
        report.tasks as f64 / wall.max(1e-9),
    );
    if !verify_against_straight {
        return Ok(ExitCode::SUCCESS);
    }

    // The resumed run rebuilt its backend from the snapshot's META section;
    // replay the same backend straight through for comparison.
    let backend = cli::parse_backend(&report.backend)?;
    let mut stream = bench.scaled_stream(tasks);
    let straight = simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &config);
    if report == straight {
        println!("verified: resumed report is bit-identical to the uninterrupted run");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "FAIL: resumed report diverges from the uninterrupted run \
             (makespan {} vs {}, tasks {} vs {})",
            report.makespan(),
            straight.makespan(),
            report.tasks,
            straight.tasks
        );
        Ok(ExitCode::FAILURE)
    }
}

fn parse_resume(args: &[String]) -> Result<(String, bool), String> {
    let mut file = DEFAULT_CHECKPOINT_FILE.to_string();
    let mut verify = false;
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--checkpoint-file" => file = args.value("--checkpoint-file")?,
            "--verify" => verify = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((file, verify))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("run");
    let rest = args.get(1..).unwrap_or(&[]);
    let parsed = match mode {
        "run" => parse_options(rest, DEFAULT_RUN_TASKS, DEFAULT_RUN_WINDOW),
        "smoke" => parse_options(rest, DEFAULT_SMOKE_TASKS, DEFAULT_SMOKE_WINDOW),
        "verify" => {
            if !rest.is_empty() {
                eprintln!("verify takes no flags");
                return ExitCode::FAILURE;
            }
            return verify();
        }
        "resume" => {
            return match parse_resume(rest).and_then(|(file, v)| resume_mode(&file, v)) {
                Ok(code) => code,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            };
        }
        other => {
            eprintln!(
                "usage: bench_scale [run|smoke|verify|resume] [--tasks N] [--window W] \
                 [--bench NAME] [--backend B] [--checkpoint-every CYCLES] \
                 [--checkpoint-file PATH] [--halt-after K] [--verify]"
            );
            eprintln!("unknown mode {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match parsed {
        Ok(options) => run_or_smoke(&options),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
