//! Scaled streaming-execution harness: million-task runs through the
//! windowed master, plus the Table II eager-vs-streaming equivalence gate.
//!
//! ```text
//! bench_scale run    [--tasks N] [--window W] [--bench NAME] [--backend B]
//! bench_scale smoke  [--tasks N] [--window W]      # CI: small run, asserts bounds
//! bench_scale verify                               # CI: Table II, 36 cells, bit-identical
//! ```
//!
//! * `run` drives each selected benchmark's scaled-up lazy generator
//!   ([`Benchmark::scaled_stream`]) through [`simulate_stream`] with a
//!   finite window (default 4096) and reports simulated tasks/sec and the
//!   peak number of resident `TaskSpec`s — which stays bounded by the
//!   window no matter how many tasks stream through. The default is a
//!   ≥1,000,000-task run per benchmark.
//! * `smoke` is the small CI variant (default 50,000 tasks, window 256): it
//!   fails (nonzero exit) if any run loses tasks or exceeds the resident
//!   bound.
//! * `verify` replays the full Table II benchmark × backend matrix twice —
//!   eager `simulate` over the collected workload vs `simulate_stream` over
//!   the lazy generator — and fails on any difference in makespan, task
//!   count or DMU access totals. This is the 36-cell equivalence gate the
//!   scaled-down conformance tests mirror in debug builds.

use std::process::ExitCode;
use std::time::Instant;

use tdm_bench::cli::{self, Args};
use tdm_bench::standard_config;
use tdm_runtime::exec::{simulate, simulate_stream, Backend, ExecConfig};
use tdm_runtime::scheduler::SchedulerKind;
use tdm_workloads::Benchmark;

/// Default task target for `run`: the million-task milestone.
const DEFAULT_RUN_TASKS: usize = 1_000_000;
/// Default task target for `smoke`: big enough to exercise windows and
/// scaled generators, small enough for a CI job step.
const DEFAULT_SMOKE_TASKS: usize = 50_000;
/// Default creation window for `run` (double the DMU's 2048 in-flight
/// tasks, so hardware backends are DMU-limited before window-limited).
const DEFAULT_RUN_WINDOW: usize = 4096;
/// Default creation window for `smoke`: deliberately tight.
const DEFAULT_SMOKE_WINDOW: usize = 256;

struct Options {
    tasks: usize,
    window: usize,
    bench: Option<Benchmark>,
    backend: Backend,
}

fn parse_options(args: &[String], tasks: usize, window: usize) -> Result<Options, String> {
    let mut options = Options {
        tasks,
        window,
        bench: None,
        backend: Backend::tdm_default(),
    };
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--tasks" => {
                options.tasks = cli::parse_count("--tasks", &args.value("--tasks")?, "")?;
            }
            "--window" => {
                options.window = cli::parse_count(
                    "--window",
                    &args.value("--window")?,
                    " (the master needs one in-flight task; ExecConfig documents that a \
                     window of 0 behaves as 1)",
                )?;
            }
            "--bench" => {
                options.bench = Some(cli::parse_benchmark(&args.value("--bench")?)?);
            }
            "--backend" => {
                options.backend = cli::parse_backend(&args.value("--backend")?)?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

fn selected(options: &Options) -> Vec<Benchmark> {
    match options.bench {
        Some(b) => vec![b],
        None => Benchmark::ALL.to_vec(),
    }
}

/// One scaled streaming run; returns `(tasks, peak_resident, tasks_per_sec)`.
fn scaled_run(bench: Benchmark, options: &Options, config: &ExecConfig) -> (u64, usize, f64, u64) {
    let mut stream = bench.scaled_stream(options.tasks);
    let start = Instant::now();
    let report = simulate_stream(&mut stream, &options.backend, SchedulerKind::Fifo, config);
    let wall = start.elapsed().as_secs_f64();
    (
        report.tasks,
        report.peak_resident_tasks,
        report.tasks as f64 / wall.max(1e-9),
        report.makespan().raw(),
    )
}

fn run_or_smoke(options: &Options) -> ExitCode {
    // `parse_options` rejected window 0, so no clamp is needed here.
    let config = ExecConfig {
        window: options.window,
        ..standard_config()
    };
    println!(
        "streaming {} tasks/benchmark through a window of {} on {} ({} cores)\n",
        options.tasks,
        config.window,
        options.backend.name(),
        config.chip.num_cores
    );
    println!(
        "| {:<14} | {:>9} | {:>13} | {:>16} | {:>12} |",
        "Benchmark", "Tasks", "Peak resident", "Makespan cycles", "Tasks/sec"
    );
    println!("|{}|", "-".repeat(78));
    let mut failures = 0;
    for bench in selected(options) {
        let (tasks, peak, throughput, makespan) = scaled_run(bench, options, &config);
        println!(
            "| {:<14} | {:>9} | {:>13} | {:>16} | {:>12.0} |",
            bench.name(),
            tasks,
            peak,
            makespan,
            throughput
        );
        if tasks < options.tasks as u64 {
            eprintln!(
                "FAIL {}: executed {tasks} tasks, expected at least {}",
                bench.name(),
                options.tasks
            );
            failures += 1;
        }
        // Window + 1 prefetched spec: the documented residency bound.
        if peak > config.window + 1 {
            eprintln!(
                "FAIL {}: {peak} specs resident exceeds window bound {}",
                bench.name(),
                config.window + 1
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("\nall runs stayed within the window bound");
    ExitCode::SUCCESS
}

/// Table II equivalence: every benchmark × backend cell, eager vs streaming,
/// must agree bit-for-bit on the modeled metrics.
fn verify() -> ExitCode {
    let config = standard_config();
    let mut failures = 0;
    println!(
        "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:<9} |",
        "Benchmark", "Backend", "Tasks", "Makespan cycles", "DMU accesses", "Streaming"
    );
    println!("|{}|", "-".repeat(92));
    for bench in Benchmark::ALL {
        for backend in tdm_bench::baseline::matrix_backends() {
            // The paper's methodology: hardware dependence tracking uses the
            // TDM-optimal granularity, the software runtimes their own.
            let hardware_granularity =
                matches!(backend, Backend::Tdm(_) | Backend::TaskSuperscalar(_));
            let workload = if hardware_granularity {
                bench.tdm_workload()
            } else {
                bench.software_workload()
            };
            let eager = simulate(&workload, &backend, SchedulerKind::Fifo, &config);
            let mut stream = if hardware_granularity {
                bench.tdm_stream()
            } else {
                bench.software_stream()
            };
            let streamed = simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &config);
            let accesses = |r: &tdm_runtime::exec::RunReport| {
                r.hardware.as_ref().map_or(0, |hw| hw.stats.total_accesses)
            };
            let identical = eager.makespan() == streamed.makespan()
                && eager.tasks == streamed.tasks
                && eager.stats == streamed.stats
                && accesses(&eager) == accesses(&streamed);
            println!(
                "| {:<14} | {:<15} | {:>7} | {:>16} | {:>12} | {:<9} |",
                bench.name(),
                backend.name(),
                eager.tasks,
                eager.makespan().raw(),
                accesses(&eager),
                if identical { "identical" } else { "MISMATCH" }
            );
            if !identical {
                eprintln!(
                    "FAIL {} × {}: eager (makespan {}, {} accesses) vs streaming \
                     (makespan {}, {} accesses)",
                    bench.name(),
                    backend.name(),
                    eager.makespan(),
                    accesses(&eager),
                    streamed.makespan(),
                    accesses(&streamed)
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} cell(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("\nall 36 cells bit-identical between eager and streaming execution");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("run");
    let rest = args.get(1..).unwrap_or(&[]);
    let parsed = match mode {
        "run" => parse_options(rest, DEFAULT_RUN_TASKS, DEFAULT_RUN_WINDOW),
        "smoke" => parse_options(rest, DEFAULT_SMOKE_TASKS, DEFAULT_SMOKE_WINDOW),
        "verify" => {
            if !rest.is_empty() {
                eprintln!("verify takes no flags");
                return ExitCode::FAILURE;
            }
            return verify();
        }
        other => {
            eprintln!("usage: bench_scale [run|smoke|verify] [--tasks N] [--window W] [--bench NAME] [--backend B]");
            eprintln!("unknown mode {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match parsed {
        Ok(options) => run_or_smoke(&options),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
