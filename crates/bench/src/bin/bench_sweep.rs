//! Parallel design-space sweep harness: the paper's configuration grids
//! (Figures 7–13 style) executed across host threads.
//!
//! ```text
//! bench_sweep run    [flags]   # execute a grid, print a table, emit JSON/CSV
//! bench_sweep verify [flags]   # run the grid N-threaded AND single-threaded,
//!                              # fail unless results are bit-identical
//! bench_sweep smoke  [flags]   # CI: small grid, parallel vs 1-thread vs a
//!                              # serial simulate_stream of every point
//! ```
//!
//! Flags (malformed values are rejected with an error, never a panic;
//! `smoke` runs a fixed grid and rejects the grid-shaping flags
//! `--benchmarks`/`--schedulers`/`--windows`/`--scale`):
//!
//! ```text
//! --threads N            worker threads (default: host parallelism, min 4
//!                        for verify; must be ≥ 1)
//! --benchmarks a,b,...   benchmark subset by name (default: all nine)
//! --backends a,b,...     software|tdm|carbon|tss (default: all four)
//! --schedulers a,b,...   fifo|lifo|locality|successor|age (default: fifo)
//! --windows w1,w2,...    master windows, each ≥ 1 (default: 4096)
//! --scale N              scale every benchmark to ≥ N tasks
//! --seed S               base seed (default: 42)
//! --fixed-seed           one seed for all points (default: per-point seeds)
//! --json PATH            write results as JSON
//! --csv PATH             write results as CSV
//! ```
//!
//! The default `run`/`verify` grid is the full Table II benchmark × backend
//! matrix (9 × 4 = 36 points) with FIFO scheduling and a 4096-task window —
//! the acceptance grid for sweep determinism: `verify` executes it on ≥ 4
//! threads and once single-threaded and demands bit-identical modeled
//! results for every point.

use std::process::ExitCode;

use tdm_bench::cli::{self, Args};
use tdm_bench::sweep::{
    results_to_csv, results_to_json, run_point, run_sweep, BackendSpec, SweepGrid, WorkloadSpec,
};
use tdm_bench::{default_threads, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

const USAGE: &str = "usage: bench_sweep [run|verify|smoke] [--threads N] \
    [--benchmarks a,b] [--backends software,tdm,carbon,tss] \
    [--schedulers fifo,lifo,locality,successor,age] [--windows W1,W2] \
    [--scale N] [--seed S] [--fixed-seed] [--json PATH] [--csv PATH]";

/// Default master window: double the DMU's 2048 in-flight tasks, like
/// `bench_scale run`, so hardware backends are DMU-limited before
/// window-limited.
const DEFAULT_WINDOW: usize = 4096;

struct Options {
    threads: Option<usize>,
    /// Grid-shaping flags stay `None` until the user passes them, so modes
    /// with a fixed grid (`smoke`) can reject them instead of silently
    /// ignoring them.
    benchmarks: Option<Vec<Benchmark>>,
    backends: Vec<BackendSpec>,
    schedulers: Option<Vec<SchedulerKind>>,
    windows: Option<Vec<usize>>,
    scale: Option<usize>,
    seed: u64,
    fixed_seed: bool,
    json: Option<String>,
    csv: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        threads: None,
        benchmarks: None,
        backends: vec![
            BackendSpec::from(Backend::Software),
            BackendSpec::from(Backend::tdm_default()),
            BackendSpec::from(Backend::Carbon),
            BackendSpec::from(Backend::task_superscalar_default()),
        ],
        schedulers: None,
        windows: None,
        scale: None,
        seed: 42,
        fixed_seed: false,
        json: None,
        csv: None,
    };
    let mut args = Args::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--threads" => {
                options.threads = Some(cli::parse_count(
                    "--threads",
                    &args.value("--threads")?,
                    "",
                )?);
            }
            "--benchmarks" => {
                options.benchmarks = Some(cli::parse_list(
                    "--benchmarks",
                    &args.value("--benchmarks")?,
                    cli::parse_benchmark,
                )?);
            }
            "--backends" => {
                options.backends =
                    cli::parse_list("--backends", &args.value("--backends")?, |name| {
                        cli::parse_backend(name).map(BackendSpec::from)
                    })?;
            }
            "--schedulers" => {
                options.schedulers = Some(cli::parse_list(
                    "--schedulers",
                    &args.value("--schedulers")?,
                    cli::parse_scheduler,
                )?);
            }
            "--windows" => {
                options.windows = Some(cli::parse_list(
                    "--windows",
                    &args.value("--windows")?,
                    |s| cli::parse_count("--windows", s, " (the master needs one in-flight task)"),
                )?);
            }
            "--scale" => {
                options.scale = Some(cli::parse_count(
                    "--scale",
                    &args.value("--scale")?,
                    " task",
                )?);
            }
            "--seed" => options.seed = cli::parse_u64("--seed", &args.value("--seed")?)?,
            "--fixed-seed" => options.fixed_seed = true,
            "--json" => options.json = Some(args.value("--json")?),
            "--csv" => options.csv = Some(args.value("--csv")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

fn build_grid(options: &Options) -> SweepGrid {
    let benchmarks = options
        .benchmarks
        .clone()
        .unwrap_or_else(|| Benchmark::ALL.to_vec());
    let workloads = benchmarks
        .iter()
        .map(|&bench| match options.scale {
            Some(target) => WorkloadSpec::scaled(bench, target),
            None => WorkloadSpec::tdm_granularity(bench),
        })
        .collect();
    let mut grid = SweepGrid::new()
        .with_workloads(workloads)
        .with_backends(options.backends.clone())
        .with_schedulers(
            options
                .schedulers
                .clone()
                .unwrap_or_else(|| vec![SchedulerKind::Fifo]),
        )
        .with_windows(
            options
                .windows
                .clone()
                .unwrap_or_else(|| vec![DEFAULT_WINDOW]),
        )
        .with_seed(options.seed);
    if !options.fixed_seed {
        grid = grid.with_per_point_seeds();
    }
    grid
}

fn print_results(results: &[tdm_bench::sweep::SweepResult]) {
    println!(
        "| {:<18} | {:<15} | {:<9} | {:>9} | {:>8} | {:>16} | {:>12} | {:>9} |",
        "Workload",
        "Backend",
        "Scheduler",
        "Window",
        "Tasks",
        "Makespan cycles",
        "DMU accesses",
        "Wall ms"
    );
    println!("|{}|", "-".repeat(116));
    for r in results {
        let window = if r.window == usize::MAX {
            "unbounded".to_string()
        } else {
            r.window.to_string()
        };
        println!(
            "| {:<18} | {:<15} | {:<9} | {:>9} | {:>8} | {:>16} | {:>12} | {:>9.2} |",
            r.workload,
            r.backend,
            r.scheduler,
            window,
            r.report.tasks,
            r.makespan_cycles(),
            r.dmu_accesses(),
            r.wall_ms,
        );
    }
}

fn write_outputs(
    options: &Options,
    results: &[tdm_bench::sweep::SweepResult],
) -> Result<(), String> {
    if let Some(path) = &options.json {
        cli::write_output(path, &results_to_json(results))?;
        println!("results written to {path} (JSON)");
    }
    if let Some(path) = &options.csv {
        cli::write_output(path, &results_to_csv(results))?;
        println!("results written to {path} (CSV)");
    }
    Ok(())
}

fn run(options: &Options) -> Result<ExitCode, String> {
    let grid = build_grid(options);
    if grid.is_empty() {
        return Err("the grid is empty (an axis has no entries)".to_string());
    }
    let threads = options.threads.unwrap_or_else(|| default_threads(1));
    println!(
        "sweeping {} points ({} workloads × {} backends × {} schedulers × {} windows) on {threads} threads\n",
        grid.len(),
        grid.workloads.len(),
        grid.backends.len(),
        grid.schedulers.len(),
        grid.windows.len(),
    );
    let start = std::time::Instant::now();
    let results = run_sweep(&grid, threads);
    let wall = start.elapsed().as_secs_f64();
    print_results(&results);
    let simulated: u64 = results.iter().map(|r| r.report.tasks).sum();
    println!(
        "\n{} points, {simulated} simulated tasks in {wall:.2} s wall ({:.0} tasks/sec aggregate)",
        results.len(),
        simulated as f64 / wall.max(1e-9)
    );
    write_outputs(options, &results)?;
    Ok(ExitCode::SUCCESS)
}

/// Compares two result vectors point-by-point; prints and counts mismatches.
fn compare_runs(
    what: &str,
    reference: &[tdm_bench::sweep::SweepResult],
    candidate: &[tdm_bench::sweep::SweepResult],
) -> usize {
    let mut mismatches = 0;
    if reference.len() != candidate.len() {
        eprintln!(
            "FAIL {what}: {} points vs {} points",
            reference.len(),
            candidate.len()
        );
        return 1;
    }
    for (a, b) in reference.iter().zip(candidate) {
        if !a.modeled_eq(b) {
            eprintln!(
                "FAIL {what}: {} × {} × {} (window {}) diverged: makespan {} vs {}, \
                 accesses {} vs {}",
                a.workload,
                a.backend,
                a.scheduler,
                a.window,
                a.makespan_cycles(),
                b.makespan_cycles(),
                a.dmu_accesses(),
                b.dmu_accesses(),
            );
            mismatches += 1;
        }
    }
    mismatches
}

fn verify(options: &Options) -> Result<ExitCode, String> {
    let grid = build_grid(options);
    if grid.is_empty() {
        return Err("the grid is empty (an axis has no entries)".to_string());
    }
    let threads = options.threads.unwrap_or_else(|| default_threads(4));
    println!(
        "verifying sweep determinism: {} points, {threads} threads vs single-threaded",
        grid.len()
    );
    let parallel = run_sweep(&grid, threads);
    let serial = run_sweep(&grid, 1);
    let mismatches = compare_runs("parallel vs single-threaded", &serial, &parallel);
    print_results(&parallel);
    write_outputs(options, &parallel)?;
    if mismatches > 0 {
        eprintln!("\n{mismatches} point(s) diverged between thread counts");
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "\nall {} points bit-identical between {threads} threads and 1 thread",
        parallel.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn smoke(options: &Options) -> Result<ExitCode, String> {
    // Smoke uses a fixed small grid; accepting grid-shaping flags and then
    // ignoring them would let an operator believe they reproduced a failure
    // on a configuration that never actually ran.
    if options.benchmarks.is_some()
        || options.schedulers.is_some()
        || options.windows.is_some()
        || options.scale.is_some()
    {
        return Err(
            "smoke runs a fixed small grid; --benchmarks/--schedulers/--windows/--scale are not supported here (use `run` or `verify`)"
                .to_string(),
        );
    }
    // A deliberately small grid — two quick benchmarks, every backend, two
    // schedulers, a tight window and the default one — still covering the
    // properties CI must keep exercised: parallel execution, windowed
    // streaming, per-point seeding.
    let mut options = Options {
        benchmarks: Some(vec![Benchmark::Histogram, Benchmark::Lu]),
        windows: Some(vec![256, DEFAULT_WINDOW]),
        schedulers: Some(vec![SchedulerKind::Fifo, SchedulerKind::Lifo]),
        threads: options.threads,
        backends: options.backends.clone(),
        scale: None,
        seed: options.seed,
        fixed_seed: options.fixed_seed,
        json: options.json.clone(),
        csv: options.csv.clone(),
    };
    options.threads = Some(options.threads.unwrap_or_else(|| default_threads(2)).max(2));
    let grid = build_grid(&options);
    let threads = options.threads.expect("set above");
    println!(
        "sweep smoke: {} points on {threads} threads (≥2), checked against a 1-thread run \
         and a serial replay of every point\n",
        grid.len()
    );
    let parallel = run_sweep(&grid, threads);
    let serial_sweep = run_sweep(&grid, 1);
    let mut failures = compare_runs("parallel vs single-threaded", &serial_sweep, &parallel);

    // Serial replay: every point re-simulated outside the sweep runner must
    // reproduce the parallel result bit-for-bit.
    for (point, result) in grid.points().iter().zip(&parallel) {
        let replay = run_point(&grid, point);
        if !replay.modeled_eq(result) {
            eprintln!(
                "FAIL serial replay: point {} ({} × {} × {}) diverged",
                point.index, result.workload, result.backend, result.scheduler
            );
            failures += 1;
        }
        if result.window != usize::MAX && result.report.peak_resident_tasks > result.window + 1 {
            eprintln!(
                "FAIL {} × {}: {} resident specs exceed window bound {}",
                result.workload,
                result.backend,
                result.report.peak_resident_tasks,
                result.window + 1
            );
            failures += 1;
        }
    }
    print_results(&parallel);
    write_outputs(&options, &parallel)?;
    if failures > 0 {
        eprintln!("\n{failures} failure(s)");
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "\nall {} points bit-identical across thread counts and serial replay",
        parallel.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("run");
    let rest = args.get(1..).unwrap_or(&[]);
    let outcome = match mode {
        "run" => parse_options(rest).and_then(|o| run(&o)),
        "verify" => parse_options(rest).and_then(|o| verify(&o)),
        "smoke" => parse_options(rest).and_then(|o| smoke(&o)),
        other => {
            eprintln!("{USAGE}");
            eprintln!("error: unknown mode {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{USAGE}");
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
