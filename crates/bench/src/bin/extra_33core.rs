//! Section VI-C (final paragraph): adding an extra core dedicated to the
//! runtime system barely helps a pure-software runtime (≈0.8 % on average),
//! because dependence tracking stays serialized on one thread.
//!
//! The 9 software-granularity benchmarks × {32, 33} cores form one
//! [`SweepGrid`] (core-count axis) executed in parallel across host
//! threads. Results are bit-identical to the old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, geometric_mean, print_table, ratio, standard_config, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let base_cores = standard_config().chip.num_cores;
    let grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::software_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(Backend::Software)])
        .with_schedulers(vec![SchedulerKind::Fifo])
        .with_core_counts(vec![base_cores, base_cores + 1]);
    let results = run_sweep(&grid, default_threads(1));

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        // Grid order per benchmark: [32 cores, 33 cores].
        let base = &results[b * 2];
        let extra = &results[b * 2 + 1];
        let speedup = extra.report.speedup_over(&base.report);
        speedups.push(speedup);
        rows.push(vec![bench.abbrev().to_string(), ratio(speedup)]);
    }
    rows.push(vec!["AVG".to_string(), ratio(geometric_mean(&speedups))]);
    print_table(
        "Extra core for the runtime: 33-core vs 32-core software runtime",
        &["bench", "speedup"],
        &rows,
    );
}
