//! Section VI-C (final paragraph): adding an extra core dedicated to the
//! runtime system barely helps a pure-software runtime (≈0.8 % on average),
//! because dependence tracking stays serialized on one thread.

use tdm_bench::{geometric_mean, print_table, ratio, Benchmark};
use tdm_runtime::exec::{simulate, Backend, ExecConfig};
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let base_config = ExecConfig::default();
    let extra_config = ExecConfig::default().with_cores(33);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for bench in Benchmark::ALL {
        let workload = bench.software_workload();
        let base = simulate(
            &workload,
            &Backend::Software,
            SchedulerKind::Fifo,
            &base_config,
        );
        let extra = simulate(
            &workload,
            &Backend::Software,
            SchedulerKind::Fifo,
            &extra_config,
        );
        let speedup = extra.speedup_over(&base);
        speedups.push(speedup);
        rows.push(vec![bench.abbrev().to_string(), ratio(speedup)]);
    }
    rows.push(vec!["AVG".to_string(), ratio(geometric_mean(&speedups))]);
    print_table(
        "Extra core for the runtime: 33-core vs 32-core software runtime",
        &["bench", "speedup"],
        &rows,
    );
}
