//! Figure 2: execution-time breakdown (DEPS / SCHED / EXEC / IDLE) of the
//! master and worker threads under the pure software runtime.

use tdm_bench::{pct, print_table, run, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::stats::Phase;

fn main() {
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let workload = bench.software_workload();
        let report = run(&workload, &Backend::Software, SchedulerKind::Fifo);
        let master = report.stats.master_breakdown();
        let workers = report.stats.worker_breakdown();
        rows.push(vec![
            bench.abbrev().to_string(),
            pct(master.fraction(Phase::Deps)),
            pct(master.fraction(Phase::Sched)),
            pct(master.fraction(Phase::Exec)),
            pct(master.fraction(Phase::Idle)),
            pct(workers.fraction(Phase::Deps)),
            pct(workers.fraction(Phase::Sched)),
            pct(workers.fraction(Phase::Exec)),
            pct(workers.fraction(Phase::Idle)),
        ]);
    }
    print_table(
        "Figure 2: time breakdown with the software runtime (master | workers)",
        &[
            "bench", "M-DEPS", "M-SCHED", "M-EXEC", "M-IDLE", "W-DEPS", "W-SCHED", "W-EXEC",
            "W-IDLE",
        ],
        &rows,
    );
}
