//! Figure 2: execution-time breakdown (DEPS / SCHED / EXEC / IDLE) of the
//! master and worker threads under the pure software runtime.
//!
//! The 9 software-granularity benchmarks form one [`SweepGrid`] executed in
//! parallel across host threads. Results are bit-identical to the old
//! serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, pct, print_table, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::stats::Phase;

fn main() {
    let grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::software_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(Backend::Software)])
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let results = run_sweep(&grid, default_threads(1));

    let mut rows = Vec::new();
    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        let report = &results[b].report;
        let master = report.stats.master_breakdown();
        let workers = report.stats.worker_breakdown();
        rows.push(vec![
            bench.abbrev().to_string(),
            pct(master.fraction(Phase::Deps)),
            pct(master.fraction(Phase::Sched)),
            pct(master.fraction(Phase::Exec)),
            pct(master.fraction(Phase::Idle)),
            pct(workers.fraction(Phase::Deps)),
            pct(workers.fraction(Phase::Sched)),
            pct(workers.fraction(Phase::Exec)),
            pct(workers.fraction(Phase::Idle)),
        ]);
    }
    print_table(
        "Figure 2: time breakdown with the software runtime (master | workers)",
        &[
            "bench", "M-DEPS", "M-SCHED", "M-EXEC", "M-IDLE", "W-DEPS", "W-SCHED", "W-EXEC",
            "W-IDLE",
        ],
        &rows,
    );
}
