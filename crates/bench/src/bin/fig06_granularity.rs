//! Figure 6: execution time as a function of task granularity, with the
//! software runtime, normalized to the best granularity of each benchmark.
//!
//! The 30 granularity points are declared as one [`SweepGrid`] (each
//! benchmark × granularity is a workload-axis entry backed by its lazy
//! stream generator) and executed in parallel across host threads. The grid
//! keeps the standard fixed seed and unbounded window, so every point is
//! bit-identical to the serial eager harness this replaces — same numbers,
//! same printed table, byte for byte.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, print_table, ratio};
use tdm_runtime::exec::Backend;
use tdm_workloads::{blackscholes, cholesky, fluidanimate, histogram, lu, qr, streamcluster};

/// One benchmark's granularity sweep: the group label and its labelled
/// workload points, in figure order.
struct Group {
    name: &'static str,
    points: Vec<WorkloadSpec>,
}

fn groups() -> Vec<Group> {
    let mut groups = Vec::new();

    groups.push(Group {
        name: "blackscholes",
        points: [1024u64, 2048, 4096, 8192]
            .iter()
            .map(|&kb| {
                WorkloadSpec::new(format!("{}KB", kb / 1024), move || {
                    blackscholes::stream(blackscholes::Params::with_block_bytes(kb))
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "cholesky",
        points: [64usize, 32, 16, 8]
            .iter()
            .map(|&blocks| {
                let tile_kb = (2048 / blocks) * (2048 / blocks) * 4 / 1024;
                WorkloadSpec::new(format!("{tile_kb}KB"), move || {
                    cholesky::stream(cholesky::Params { blocks })
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "fluidanimate",
        points: [256usize, 128, 64, 32]
            .iter()
            .map(|&partitions| {
                WorkloadSpec::new(format!("{partitions}"), move || {
                    fluidanimate::stream(fluidanimate::Params {
                        partitions,
                        timesteps: fluidanimate::TIMESTEPS,
                    })
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "histogram",
        points: [1024usize, 512, 256, 128, 64]
            .iter()
            .map(|&stripes| {
                let stripe_kb = 4096u64 * 4096 * 4 / stripes as u64 / 1024;
                WorkloadSpec::new(format!("{stripe_kb}KB"), move || {
                    histogram::stream(histogram::Params { stripes })
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "LU",
        points: [64usize, 32, 16, 8]
            .iter()
            .map(|&blocks| {
                let tile_kb = (2048 / blocks) * (2048 / blocks) * 4 / 1024;
                WorkloadSpec::new(format!("{tile_kb}KB"), move || {
                    lu::stream(lu::Params { blocks })
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "QR",
        points: [32usize, 16, 8, 4]
            .iter()
            .map(|&blocks| {
                let tile_kb = (1024 / blocks) * (1024 / blocks) * 4 / 1024;
                WorkloadSpec::new(format!("{tile_kb}KB"), move || {
                    qr::stream(qr::Params { blocks })
                })
            })
            .collect(),
    });

    groups.push(Group {
        name: "streamcluster",
        points: [1680usize, 840, 420, 210, 105]
            .iter()
            .map(|&batches| {
                WorkloadSpec::new(format!("{batches} batches"), move || {
                    streamcluster::stream(streamcluster::Params {
                        batches,
                        phases: streamcluster::PHASES,
                    })
                })
            })
            .collect(),
    });

    groups
}

fn main() {
    // Flatten the groups into the workload axis, keeping only each group's
    // (name, point count); point labels come back in the results (a
    // `SweepResult`'s workload field is its `WorkloadSpec` label).
    let mut shapes: Vec<(&'static str, usize)> = Vec::new();
    let mut workloads: Vec<WorkloadSpec> = Vec::new();
    for group in groups() {
        shapes.push((group.name, group.points.len()));
        workloads.extend(group.points);
    }
    let grid = SweepGrid::new()
        .with_workloads(workloads)
        .with_backends(vec![BackendSpec::from(Backend::Software)]);
    let results = run_sweep(&grid, default_threads(1));

    // Workloads are the only populated axis, so each group's points occupy
    // one consecutive chunk of the results, in declaration order.
    let mut rows = Vec::new();
    let mut offset = 0;
    for (name, len) in shapes {
        let chunk = &results[offset..offset + len];
        offset += len;
        let best = chunk
            .iter()
            .map(|r| r.report.makespan().as_f64())
            .fold(f64::INFINITY, f64::min);
        for r in chunk {
            rows.push(vec![
                name.to_string(),
                r.workload.clone(),
                ratio(r.report.makespan().as_f64() / best),
            ]);
        }
    }

    print_table(
        "Figure 6: execution time vs task granularity (software runtime, normalized to each benchmark's best point)",
        &["benchmark", "granularity", "normalized time"],
        &rows,
    );
}
