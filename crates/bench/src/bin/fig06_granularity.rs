//! Figure 6: execution time as a function of task granularity, with the
//! software runtime, normalized to the best granularity of each benchmark.

use tdm_bench::{print_table, ratio, run};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_runtime::task::Workload;
use tdm_workloads::{blackscholes, cholesky, fluidanimate, histogram, lu, qr, streamcluster};

fn sweep(name: &str, points: Vec<(String, Workload)>, rows: &mut Vec<Vec<String>>) {
    let reports: Vec<(String, f64)> = points
        .into_iter()
        .map(|(label, workload)| {
            let report = run(&workload, &Backend::Software, SchedulerKind::Fifo);
            (label, report.makespan().as_f64())
        })
        .collect();
    let best = reports
        .iter()
        .map(|(_, t)| *t)
        .fold(f64::INFINITY, f64::min);
    for (label, time) in reports {
        rows.push(vec![name.to_string(), label, ratio(time / best)]);
    }
}

fn main() {
    let mut rows = Vec::new();

    sweep(
        "blackscholes",
        [1024u64, 2048, 4096, 8192]
            .iter()
            .map(|&kb| {
                (
                    format!("{}KB", kb / 1024),
                    blackscholes::generate(blackscholes::Params::with_block_bytes(kb)),
                )
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "cholesky",
        [64usize, 32, 16, 8]
            .iter()
            .map(|&blocks| {
                let tile_kb = (2048 / blocks) * (2048 / blocks) * 4 / 1024;
                (
                    format!("{tile_kb}KB"),
                    cholesky::generate(cholesky::Params { blocks }),
                )
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "fluidanimate",
        [256usize, 128, 64, 32]
            .iter()
            .map(|&partitions| {
                (
                    format!("{partitions}"),
                    fluidanimate::generate(fluidanimate::Params {
                        partitions,
                        timesteps: fluidanimate::TIMESTEPS,
                    }),
                )
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "histogram",
        [1024usize, 512, 256, 128, 64]
            .iter()
            .map(|&stripes| {
                let stripe_kb = 4096u64 * 4096 * 4 / stripes as u64 / 1024;
                (
                    format!("{stripe_kb}KB"),
                    histogram::generate(histogram::Params { stripes }),
                )
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "LU",
        [64usize, 32, 16, 8]
            .iter()
            .map(|&blocks| {
                let tile_kb = (2048 / blocks) * (2048 / blocks) * 4 / 1024;
                (format!("{tile_kb}KB"), lu::generate(lu::Params { blocks }))
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "QR",
        [32usize, 16, 8, 4]
            .iter()
            .map(|&blocks| {
                let tile_kb = (1024 / blocks) * (1024 / blocks) * 4 / 1024;
                (format!("{tile_kb}KB"), qr::generate(qr::Params { blocks }))
            })
            .collect(),
        &mut rows,
    );

    sweep(
        "streamcluster",
        [1680usize, 840, 420, 210, 105]
            .iter()
            .map(|&batches| {
                (
                    format!("{batches} batches"),
                    streamcluster::generate(streamcluster::Params {
                        batches,
                        phases: streamcluster::PHASES,
                    }),
                )
            })
            .collect(),
        &mut rows,
    );

    print_table(
        "Figure 6: execution time vs task granularity (software runtime, normalized to each benchmark's best point)",
        &["benchmark", "granularity", "normalized time"],
        &rows,
    );
}
