//! Figure 7: performance with different TAT and DAT sizes, normalized to an
//! ideal DMU with unlimited entries and the same latency.

use tdm_bench::{geometric_mean, print_table, ratio, run, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

/// The five benchmarks the paper plots individually (the rest reach maximum
/// performance with 512 entries already); the geometric mean covers all nine.
const PLOTTED: [Benchmark; 5] = [
    Benchmark::Cholesky,
    Benchmark::Ferret,
    Benchmark::Histogram,
    Benchmark::Lu,
    Benchmark::Qr,
];

fn main() {
    let sizes = [512usize, 1024, 2048, 4096];
    let mut rows = Vec::new();

    // Ideal baseline per benchmark.
    let ideal: Vec<(Benchmark, f64)> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let report = run(
                &b.tdm_workload(),
                &Backend::Tdm(DmuConfig::ideal()),
                SchedulerKind::Fifo,
            );
            (b, report.makespan().as_f64())
        })
        .collect();
    let ideal_of = |b: Benchmark| ideal.iter().find(|(x, _)| *x == b).unwrap().1;

    for &dat in &sizes {
        for &tat in &sizes {
            let config = DmuConfig::default().with_alias_sizes(tat, dat);
            let mut all_perf = Vec::new();
            let mut row = vec![format!("{tat} TAT"), format!("{dat} DAT")];
            for &bench in &Benchmark::ALL {
                let report = run(
                    &bench.tdm_workload(),
                    &Backend::Tdm(config.clone()),
                    SchedulerKind::Fifo,
                );
                let perf = ideal_of(bench) / report.makespan().as_f64();
                all_perf.push(perf);
                if PLOTTED.contains(&bench) {
                    row.push(ratio(perf));
                }
            }
            row.push(ratio(geometric_mean(&all_perf)));
            rows.push(row);
        }
    }

    print_table(
        "Figure 7: performance vs TAT/DAT size (normalized to ideal DMU)",
        &[
            "TAT",
            "DAT",
            "cholesky",
            "ferret",
            "hist",
            "LU",
            "QR",
            "AVG (all 9)",
        ],
        &rows,
    );
}
