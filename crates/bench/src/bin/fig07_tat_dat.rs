//! Figure 7: performance with different TAT and DAT sizes, normalized to an
//! ideal DMU with unlimited entries and the same latency.
//!
//! The 9 benchmarks × (16 TAT/DAT combinations + the ideal baseline) grid is
//! declared as a [`SweepGrid`] and executed in parallel across host threads;
//! every point streams its generator through `simulate_stream` with the
//! standard fixed seed, which is bit-identical to the old serial eager
//! harness (pinned by the conformance suite).

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, geometric_mean, print_table, ratio, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;

/// The five benchmarks the paper plots individually (the rest reach maximum
/// performance with 512 entries already); the geometric mean covers all nine.
const PLOTTED: [Benchmark; 5] = [
    Benchmark::Cholesky,
    Benchmark::Ferret,
    Benchmark::Histogram,
    Benchmark::Lu,
    Benchmark::Qr,
];

fn main() {
    let sizes = [512usize, 1024, 2048, 4096];

    // Backend axis: the ideal DMU first, then every DAT × TAT combination in
    // row order (DAT outer, TAT inner — the order the figure's rows use).
    let mut backends = vec![BackendSpec::labelled(
        "ideal",
        Backend::Tdm(DmuConfig::ideal()),
    )];
    for &dat in &sizes {
        for &tat in &sizes {
            backends.push(BackendSpec::labelled(
                format!("{tat}T/{dat}D"),
                Backend::Tdm(DmuConfig::default().with_alias_sizes(tat, dat)),
            ));
        }
    }
    let configs_per_bench = backends.len();

    let grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(backends);
    let threads = default_threads(1);
    let results = run_sweep(&grid, threads);

    // Grid order: workloads outermost, backends inner — so benchmark `b`'s
    // results occupy one contiguous chunk, ideal first.
    let chunk = |b: usize| &results[b * configs_per_bench..(b + 1) * configs_per_bench];

    let mut rows = Vec::new();
    for combo in 0..sizes.len() * sizes.len() {
        let mut all_perf = Vec::new();
        let mut row = Vec::new();
        for (b, &bench) in Benchmark::ALL.iter().enumerate() {
            let per_bench = chunk(b);
            let ideal = per_bench[0].makespan_cycles() as f64;
            let perf = ideal / per_bench[1 + combo].makespan_cycles() as f64;
            all_perf.push(perf);
            if PLOTTED.contains(&bench) {
                row.push(ratio(perf));
            }
        }
        // Label columns from the combo's TAT/DAT, matching the old output.
        let tat = sizes[combo % sizes.len()];
        let dat = sizes[combo / sizes.len()];
        let mut labelled = vec![format!("{tat} TAT"), format!("{dat} DAT")];
        labelled.extend(row);
        labelled.push(ratio(geometric_mean(&all_perf)));
        rows.push(labelled);
    }

    print_table(
        "Figure 7: performance vs TAT/DAT size (normalized to ideal DMU)",
        &[
            "TAT",
            "DAT",
            "cholesky",
            "ferret",
            "hist",
            "LU",
            "QR",
            "AVG (all 9)",
        ],
        &rows,
    );
}
