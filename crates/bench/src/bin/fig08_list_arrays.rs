//! Figure 8: average performance with different list-array sizes, normalized
//! to an ideal DMU with unlimited entries and the same latency.

use tdm_bench::{geometric_mean, print_table, ratio, run, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn average_perf(config: &DmuConfig, ideal: &[(Benchmark, f64)]) -> f64 {
    let perfs: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let report = run(
                &bench.tdm_workload(),
                &Backend::Tdm(config.clone()),
                SchedulerKind::Fifo,
            );
            let ideal_time = ideal.iter().find(|(b, _)| *b == bench).unwrap().1;
            ideal_time / report.makespan().as_f64()
        })
        .collect();
    geometric_mean(&perfs)
}

fn main() {
    let sizes = [128usize, 512, 1024, 2048];
    let ideal: Vec<(Benchmark, f64)> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let report = run(
                &b.tdm_workload(),
                &Backend::Tdm(DmuConfig::ideal()),
                SchedulerKind::Fifo,
            );
            (b, report.makespan().as_f64())
        })
        .collect();

    // Sweep the successor and dependence list arrays jointly (the paper's
    // X axis) against the reader list array size (the grouped series).
    let mut rows = Vec::new();
    for &readers in &sizes {
        for &succ_deps in &sizes {
            let config = DmuConfig::default().with_list_array_sizes(succ_deps, succ_deps, readers);
            let perf = average_perf(&config, &ideal);
            rows.push(vec![
                format!("{readers}"),
                format!("{succ_deps}"),
                ratio(perf),
            ]);
        }
    }
    print_table(
        "Figure 8: average performance vs list-array sizes (normalized to ideal DMU)",
        &["Readers LA", "Successor/Deps LA", "AVG performance"],
        &rows,
    );
}
