//! Figure 8: average performance with different list-array sizes, normalized
//! to an ideal DMU with unlimited entries and the same latency.
//!
//! The 9 benchmarks × 17 DMU geometries (the ideal baseline plus the 4×4
//! readers × successor/deps list-array grid) form one [`SweepGrid`]
//! executed in parallel across host threads; the ideal column of each
//! benchmark's chunk is the normalization base. Results are bit-identical
//! to the old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, geometric_mean, print_table, ratio, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let sizes = [128usize, 512, 1024, 2048];

    // Backend axis: the ideal DMU first, then the readers-outer ×
    // successor/deps-inner size grid (the row order of the table).
    let mut backends = vec![BackendSpec::labelled(
        "tdm-ideal",
        Backend::Tdm(DmuConfig::ideal()),
    )];
    for &readers in &sizes {
        for &succ_deps in &sizes {
            backends.push(BackendSpec::labelled(
                format!("tdm-r{readers}-sd{succ_deps}"),
                Backend::Tdm(
                    DmuConfig::default().with_list_array_sizes(succ_deps, succ_deps, readers),
                ),
            ));
        }
    }
    let per_bench = backends.len();

    let grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(backends)
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let results = run_sweep(&grid, default_threads(1));

    // Geometric mean across benchmarks of each geometry's performance
    // relative to the ideal DMU (chunk position 0 of every benchmark).
    let mut rows = Vec::new();
    for (c, (&readers, &succ_deps)) in sizes
        .iter()
        .flat_map(|r| sizes.iter().map(move |s| (r, s)))
        .enumerate()
    {
        let perfs: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .map(|(b, _)| {
                let chunk = &results[b * per_bench..(b + 1) * per_bench];
                chunk[0].report.makespan().as_f64() / chunk[1 + c].report.makespan().as_f64()
            })
            .collect();
        rows.push(vec![
            format!("{readers}"),
            format!("{succ_deps}"),
            ratio(geometric_mean(&perfs)),
        ]);
    }
    print_table(
        "Figure 8: average performance vs list-array sizes (normalized to ideal DMU)",
        &["Readers LA", "Successor/Deps LA", "AVG performance"],
        &rows,
    );
}
