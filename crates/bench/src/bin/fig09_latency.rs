//! Figure 9: performance when the access time of every DMU structure grows
//! from 1 to 16 cycles, normalized to zero-latency structures.

use tdm_bench::{geometric_mean, print_table, ratio, run, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::clock::Cycle;

fn main() {
    let latencies = [1u64, 4, 16];
    let mut rows = Vec::new();
    let mut per_latency: Vec<Vec<f64>> = vec![Vec::new(); latencies.len()];

    for bench in Benchmark::ALL {
        let workload = bench.tdm_workload();
        // Zero-latency baseline.
        let base = run(
            &workload,
            &Backend::Tdm(DmuConfig::default().with_access_latency(Cycle::ZERO)),
            SchedulerKind::Fifo,
        );
        let mut row = vec![bench.abbrev().to_string()];
        for (i, &lat) in latencies.iter().enumerate() {
            let report = run(
                &workload,
                &Backend::Tdm(DmuConfig::default().with_access_latency(Cycle::new(lat))),
                SchedulerKind::Fifo,
            );
            let perf = base.makespan().as_f64() / report.makespan().as_f64();
            per_latency[i].push(perf);
            row.push(ratio(perf));
        }
        rows.push(row);
    }
    let mut avg = vec!["AVG".to_string()];
    for col in &per_latency {
        avg.push(ratio(geometric_mean(col)));
    }
    rows.push(avg);

    print_table(
        "Figure 9: performance vs DMU access latency (normalized to zero-latency structures)",
        &["bench", "1 cycle", "4 cycles", "16 cycles"],
        &rows,
    );
}
