//! Figure 9: performance when the access time of every DMU structure grows
//! from 1 to 16 cycles, normalized to zero-latency structures.
//!
//! The 9 benchmarks × 4 latency points (0, 1, 4 and 16 cycles) form one
//! [`SweepGrid`] executed in parallel across host threads; the zero-latency
//! column of each benchmark's chunk is the normalization base. Results are
//! bit-identical to the old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, geometric_mean, print_table, ratio, Benchmark};
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::clock::Cycle;

fn main() {
    let latencies = [0u64, 1, 4, 16];
    let per_bench = latencies.len();

    let grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(
            latencies
                .iter()
                .map(|&lat| {
                    BackendSpec::labelled(
                        format!("tdm-lat{lat}"),
                        Backend::Tdm(DmuConfig::default().with_access_latency(Cycle::new(lat))),
                    )
                })
                .collect(),
        )
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let results = run_sweep(&grid, default_threads(1));

    let mut rows = Vec::new();
    let mut per_latency: Vec<Vec<f64>> = vec![Vec::new(); latencies.len() - 1];

    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        let chunk = &results[b * per_bench..(b + 1) * per_bench];
        // Grid order puts the zero-latency point first: the baseline.
        let base = &chunk[0];
        let mut row = vec![bench.abbrev().to_string()];
        for (i, point) in chunk[1..].iter().enumerate() {
            let perf = base.report.makespan().as_f64() / point.report.makespan().as_f64();
            per_latency[i].push(perf);
            row.push(ratio(perf));
        }
        rows.push(row);
    }
    let mut avg = vec!["AVG".to_string()];
    for col in &per_latency {
        avg.push(ratio(geometric_mean(col)));
    }
    rows.push(avg);

    print_table(
        "Figure 9: performance vs DMU access latency (normalized to zero-latency structures)",
        &["bench", "1 cycle", "4 cycles", "16 cycles"],
        &rows,
    );
}
