//! Figure 10: percentage of time the master thread spends creating tasks and
//! managing their dependences, with the pure software runtime and with TDM.

use tdm_bench::{geometric_mean, pct, print_table, run, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let mut rows = Vec::new();
    let mut sw_fracs = Vec::new();
    let mut tdm_fracs = Vec::new();
    for bench in Benchmark::ALL {
        let sw = run(
            &bench.software_workload(),
            &Backend::Software,
            SchedulerKind::Fifo,
        );
        let tdm = run(
            &bench.tdm_workload(),
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
        );
        let sw_frac = sw.master_deps_fraction();
        let tdm_frac = tdm.master_deps_fraction();
        sw_fracs.push(sw_frac.max(1e-6));
        tdm_fracs.push(tdm_frac.max(1e-6));
        rows.push(vec![
            bench.abbrev().to_string(),
            pct(sw_frac),
            pct(tdm_frac),
            format!("{:.1}×", sw_frac / tdm_frac.max(1e-9)),
        ]);
    }
    rows.push(vec![
        "AVG".to_string(),
        pct(sw_fracs.iter().sum::<f64>() / sw_fracs.len() as f64),
        pct(tdm_fracs.iter().sum::<f64>() / tdm_fracs.len() as f64),
        format!(
            "{:.1}×",
            geometric_mean(&sw_fracs) / geometric_mean(&tdm_fracs)
        ),
    ]);
    print_table(
        "Figure 10: master time spent in task creation (SW vs TDM)",
        &["bench", "SW", "TDM", "reduction"],
        &rows,
    );
}
