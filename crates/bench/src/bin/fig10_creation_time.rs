//! Figure 10: percentage of time the master thread spends creating tasks and
//! managing their dependences, with the pure software runtime and with TDM.
//!
//! Two [`SweepGrid`]s executed in parallel across host threads: the
//! software-granularity benchmarks on the software runtime and the
//! TDM-granularity benchmarks on TDM (each backend at its optimal
//! granularity, exactly like Figure 13). Results are bit-identical to the
//! old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, geometric_mean, pct, print_table, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let threads = default_threads(1);
    let sw_grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::software_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(Backend::Software)])
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let sw_results = run_sweep(&sw_grid, threads);

    let tdm_grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(Backend::tdm_default())])
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let tdm_results = run_sweep(&tdm_grid, threads);

    let mut rows = Vec::new();
    let mut sw_fracs = Vec::new();
    let mut tdm_fracs = Vec::new();
    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        let sw_frac = sw_results[b].report.master_deps_fraction();
        let tdm_frac = tdm_results[b].report.master_deps_fraction();
        sw_fracs.push(sw_frac.max(1e-6));
        tdm_fracs.push(tdm_frac.max(1e-6));
        rows.push(vec![
            bench.abbrev().to_string(),
            pct(sw_frac),
            pct(tdm_frac),
            format!("{:.1}×", sw_frac / tdm_frac.max(1e-9)),
        ]);
    }
    rows.push(vec![
        "AVG".to_string(),
        pct(sw_fracs.iter().sum::<f64>() / sw_fracs.len() as f64),
        pct(tdm_fracs.iter().sum::<f64>() / tdm_fracs.len() as f64),
        format!(
            "{:.1}×",
            geometric_mean(&sw_fracs) / geometric_mean(&tdm_fracs)
        ),
    ]);
    print_table(
        "Figure 10: master time spent in task creation (SW vs TDM)",
        &["bench", "SW", "TDM", "reduction"],
        &rows,
    );
}
