//! Figure 11: average number of occupied DAT sets with static index-bit
//! selection (starting at bits 0, 4, 8, 12, 16) versus the proposed dynamic
//! selection based on the dependence size.

use tdm_bench::{print_table, run, Benchmark};
use tdm_core::config::{DmuConfig, IndexPolicy};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

/// Benchmarks the paper plots (the ones sensitive to index-bit selection).
const PLOTTED: [Benchmark; 5] = [
    Benchmark::Blackscholes,
    Benchmark::Cholesky,
    Benchmark::Fluidanimate,
    Benchmark::Histogram,
    Benchmark::Qr,
];

fn main() {
    let static_bits = [0u32, 4, 8, 12, 16];
    let mut rows = Vec::new();
    for bench in PLOTTED {
        let workload = bench.tdm_workload();
        let mut row = vec![bench.abbrev().to_string()];
        for &bit in &static_bits {
            let config =
                DmuConfig::default().with_index_policy(IndexPolicy::Static { low_bit: bit });
            let report = run(&workload, &Backend::Tdm(config), SchedulerKind::Fifo);
            let occupancy = report
                .hardware
                .as_ref()
                .expect("TDM runs have hardware reports")
                .dat_average_occupied_sets;
            row.push(format!("{occupancy:.0}"));
        }
        let dynamic = run(
            &workload,
            &Backend::Tdm(DmuConfig::default().with_index_policy(IndexPolicy::Dynamic)),
            SchedulerKind::Fifo,
        );
        row.push(format!(
            "{:.0}",
            dynamic.hardware.as_ref().unwrap().dat_average_occupied_sets
        ));
        rows.push(row);
    }
    print_table(
        "Figure 11: average occupied DAT sets (out of 256) — static index bits vs dynamic selection",
        &["bench", "bit 0", "bit 4", "bit 8", "bit 12", "bit 16", "DYN"],
        &rows,
    );
}
