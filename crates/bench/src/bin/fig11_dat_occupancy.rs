//! Figure 11: average number of occupied DAT sets with static index-bit
//! selection (starting at bits 0, 4, 8, 12, 16) versus the proposed dynamic
//! selection based on the dependence size.
//!
//! The 5 benchmarks × 6 index policies are one [`SweepGrid`] executed in
//! parallel across host threads, streaming each generator through
//! `simulate_stream` — bit-identical to the old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
use tdm_bench::{default_threads, print_table, Benchmark};
use tdm_core::config::{DmuConfig, IndexPolicy};
use tdm_runtime::exec::Backend;

/// Benchmarks the paper plots (the ones sensitive to index-bit selection).
const PLOTTED: [Benchmark; 5] = [
    Benchmark::Blackscholes,
    Benchmark::Cholesky,
    Benchmark::Fluidanimate,
    Benchmark::Histogram,
    Benchmark::Qr,
];

fn main() {
    let static_bits = [0u32, 4, 8, 12, 16];

    let mut backends: Vec<BackendSpec> = static_bits
        .iter()
        .map(|&bit| {
            BackendSpec::labelled(
                format!("bit {bit}"),
                Backend::Tdm(
                    DmuConfig::default().with_index_policy(IndexPolicy::Static { low_bit: bit }),
                ),
            )
        })
        .collect();
    backends.push(BackendSpec::labelled(
        "DYN",
        Backend::Tdm(DmuConfig::default().with_index_policy(IndexPolicy::Dynamic)),
    ));
    let per_bench = backends.len();

    let grid = SweepGrid::new()
        .with_workloads(
            PLOTTED
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(backends);
    let threads = default_threads(1);
    let results = run_sweep(&grid, threads);

    let mut rows = Vec::new();
    for (b, bench) in PLOTTED.iter().enumerate() {
        let mut row = vec![bench.abbrev().to_string()];
        for result in &results[b * per_bench..(b + 1) * per_bench] {
            let occupancy = result
                .report
                .hardware
                .as_ref()
                .expect("TDM runs have hardware reports")
                .dat_average_occupied_sets;
            row.push(format!("{occupancy:.0}"));
        }
        rows.push(row);
    }
    print_table(
        "Figure 11: average occupied DAT sets (out of 256) — static index bits vs dynamic selection",
        &["bench", "bit 0", "bit 4", "bit 8", "bit 12", "bit 16", "DYN"],
        &rows,
    );
}
