//! Figure 12: speedup (top) and normalized EDP (bottom) of the five software
//! schedulers combined with TDM, plus the best software configuration
//! (OptSW) and the best TDM configuration (OptTDM), all normalized to the
//! software runtime with a FIFO scheduler.

use tdm_bench::{best_scheduler, geometric_mean, print_table, ratio, run_with_energy, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let tdm_schedulers = SchedulerKind::all();
    let mut speedup_rows = Vec::new();
    let mut edp_rows = Vec::new();
    // Columns: OptSW, FIFO+TDM, LIFO+TDM, Local+TDM, Succ+TDM, Age+TDM, OptTDM.
    let mut speedup_cols: Vec<Vec<f64>> = vec![Vec::new(); 7];
    let mut edp_cols: Vec<Vec<f64>> = vec![Vec::new(); 7];

    for bench in Benchmark::ALL {
        let sw_workload = bench.software_workload();
        let tdm_workload = bench.tdm_workload();

        let (base_run, base_energy) =
            run_with_energy(&sw_workload, &Backend::Software, SchedulerKind::Fifo);

        let mut speedups = Vec::new();
        let mut edps = Vec::new();

        // OptSW: best scheduler on the software runtime.
        let opt_sw = best_scheduler(&sw_workload, &Backend::Software);
        speedups.push(opt_sw.report.speedup_over(&base_run));
        edps.push(opt_sw.energy.normalized_edp(&base_energy));

        // Each scheduler with TDM.
        for kind in &tdm_schedulers {
            let (report, energy) = run_with_energy(&tdm_workload, &Backend::tdm_default(), *kind);
            speedups.push(report.speedup_over(&base_run));
            edps.push(energy.normalized_edp(&base_energy));
        }

        // OptTDM: best scheduler with TDM.
        let opt_tdm = best_scheduler(&tdm_workload, &Backend::tdm_default());
        speedups.push(opt_tdm.report.speedup_over(&base_run));
        edps.push(opt_tdm.energy.normalized_edp(&base_energy));

        for (col, &v) in speedups.iter().enumerate() {
            speedup_cols[col].push(v);
        }
        for (col, &v) in edps.iter().enumerate() {
            edp_cols[col].push(v);
        }

        let mut sp_row = vec![bench.abbrev().to_string()];
        sp_row.extend(speedups.iter().map(|&v| ratio(v)));
        speedup_rows.push(sp_row);
        let mut edp_row = vec![bench.abbrev().to_string()];
        edp_row.extend(edps.iter().map(|&v| ratio(v)));
        edp_rows.push(edp_row);
    }

    let mut avg_sp = vec!["AVG".to_string()];
    avg_sp.extend(speedup_cols.iter().map(|c| ratio(geometric_mean(c))));
    speedup_rows.push(avg_sp);
    let mut avg_edp = vec!["AVG".to_string()];
    avg_edp.extend(edp_cols.iter().map(|c| ratio(geometric_mean(c))));
    edp_rows.push(avg_edp);

    let header = [
        "bench",
        "OptSW",
        "FIFO+TDM",
        "LIFO+TDM",
        "Local+TDM",
        "Succ+TDM",
        "Age+TDM",
        "OptTDM",
    ];
    print_table(
        "Figure 12 (top): speedup over software runtime with FIFO",
        &header,
        &speedup_rows,
    );
    print_table(
        "Figure 12 (bottom): EDP normalized to software runtime with FIFO",
        &header,
        &edp_rows,
    );
}
