//! Figure 12: speedup (top) and normalized EDP (bottom) of the five software
//! schedulers combined with TDM, plus the best software configuration
//! (OptSW) and the best TDM configuration (OptTDM), all normalized to the
//! software runtime with a FIFO scheduler.
//!
//! The two scheduler sweeps — 9 benchmarks × 5 schedulers on the software
//! runtime (its own granularity) and the same on TDM (TDM granularity) —
//! are [`SweepGrid`]s executed in parallel across host threads; energy is
//! evaluated from each point's `RunReport` afterwards. Results are
//! bit-identical to the old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, SweepResult, WorkloadSpec};
use tdm_bench::{
    default_threads, dmu_of, frequency, geometric_mean, power_model, print_table, ratio, Benchmark,
};
use tdm_energy::edp::{evaluate, EnergyReport};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

/// Evaluates the energy of a sweep point's run (the DMU geometry comes from
/// the point's backend via [`dmu_of`], exactly like `run_with_energy`).
fn energy_of(result: &SweepResult, backend: &Backend) -> EnergyReport {
    evaluate(
        &result.report,
        &power_model(),
        &dmu_of(backend),
        frequency(),
    )
}

/// The best scheduler of one benchmark's chunk: first strict minimum of the
/// makespan in `SchedulerKind::all()` order (the OptSW / OptTDM selection of
/// Section VI-A, reproduced from the sweep results).
fn best(chunk: &[SweepResult]) -> &SweepResult {
    let mut best = &chunk[0];
    for candidate in &chunk[1..] {
        if candidate.report.makespan() < best.report.makespan() {
            best = candidate;
        }
    }
    best
}

fn main() {
    let schedulers = SchedulerKind::all();
    let per_bench = schedulers.len();
    let threads = default_threads(1);

    // Sweep 1: every scheduler on the software runtime at its granularity.
    let sw_backend = Backend::Software;
    let sw_grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::software_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(sw_backend.clone())])
        .with_schedulers(schedulers.clone());
    let sw_results = run_sweep(&sw_grid, threads);

    // Sweep 2: every scheduler on TDM at the TDM granularity.
    let tdm_backend = Backend::tdm_default();
    let tdm_grid = SweepGrid::new()
        .with_workloads(
            Benchmark::ALL
                .iter()
                .map(|&b| WorkloadSpec::tdm_granularity(b))
                .collect(),
        )
        .with_backends(vec![BackendSpec::from(tdm_backend.clone())])
        .with_schedulers(schedulers.clone());
    let tdm_results = run_sweep(&tdm_grid, threads);

    let mut speedup_rows = Vec::new();
    let mut edp_rows = Vec::new();
    // Columns: OptSW, FIFO+TDM, LIFO+TDM, Local+TDM, Succ+TDM, Age+TDM, OptTDM.
    let mut speedup_cols: Vec<Vec<f64>> = vec![Vec::new(); 7];
    let mut edp_cols: Vec<Vec<f64>> = vec![Vec::new(); 7];

    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        let sw_chunk = &sw_results[b * per_bench..(b + 1) * per_bench];
        let tdm_chunk = &tdm_results[b * per_bench..(b + 1) * per_bench];
        // Grid order puts FIFO first in each chunk: the normalization base.
        let base_run = &sw_chunk[0];
        let base_energy = energy_of(base_run, &sw_backend);

        let mut speedups = Vec::new();
        let mut edps = Vec::new();

        // OptSW: best scheduler on the software runtime.
        let opt_sw = best(sw_chunk);
        speedups.push(opt_sw.report.speedup_over(&base_run.report));
        edps.push(energy_of(opt_sw, &sw_backend).normalized_edp(&base_energy));

        // Each scheduler with TDM.
        for result in tdm_chunk {
            speedups.push(result.report.speedup_over(&base_run.report));
            edps.push(energy_of(result, &tdm_backend).normalized_edp(&base_energy));
        }

        // OptTDM: best scheduler with TDM.
        let opt_tdm = best(tdm_chunk);
        speedups.push(opt_tdm.report.speedup_over(&base_run.report));
        edps.push(energy_of(opt_tdm, &tdm_backend).normalized_edp(&base_energy));

        for (col, &v) in speedups.iter().enumerate() {
            speedup_cols[col].push(v);
        }
        for (col, &v) in edps.iter().enumerate() {
            edp_cols[col].push(v);
        }

        let mut sp_row = vec![bench.abbrev().to_string()];
        sp_row.extend(speedups.iter().map(|&v| ratio(v)));
        speedup_rows.push(sp_row);
        let mut edp_row = vec![bench.abbrev().to_string()];
        edp_row.extend(edps.iter().map(|&v| ratio(v)));
        edp_rows.push(edp_row);
    }

    let mut avg_sp = vec!["AVG".to_string()];
    avg_sp.extend(speedup_cols.iter().map(|c| ratio(geometric_mean(c))));
    speedup_rows.push(avg_sp);
    let mut avg_edp = vec!["AVG".to_string()];
    avg_edp.extend(edp_cols.iter().map(|c| ratio(geometric_mean(c))));
    edp_rows.push(avg_edp);

    let header = [
        "bench",
        "OptSW",
        "FIFO+TDM",
        "LIFO+TDM",
        "Local+TDM",
        "Succ+TDM",
        "Age+TDM",
        "OptTDM",
    ];
    print_table(
        "Figure 12 (top): speedup over software runtime with FIFO",
        &header,
        &speedup_rows,
    );
    print_table(
        "Figure 12 (bottom): EDP normalized to software runtime with FIFO",
        &header,
        &edp_rows,
    );
}
