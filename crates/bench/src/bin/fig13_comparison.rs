//! Figure 13: speedup and normalized EDP of Carbon, Task Superscalar and TDM
//! (with the best scheduler per benchmark) over the software runtime with a
//! FIFO scheduler.

use tdm_bench::{best_scheduler, geometric_mean, print_table, ratio, run_with_energy, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

fn main() {
    let mut speedup_rows = Vec::new();
    let mut edp_rows = Vec::new();
    let mut speedup_cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut edp_cols: Vec<Vec<f64>> = vec![Vec::new(); 3];

    for bench in Benchmark::ALL {
        let sw_workload = bench.software_workload();
        let tdm_workload = bench.tdm_workload();
        let (base_run, base_energy) =
            run_with_energy(&sw_workload, &Backend::Software, SchedulerKind::Fifo);

        // Carbon: hardware FIFO queues, software dependence tracking, software
        // granularity (its runtime overheads match the software baseline).
        let (carbon_run, carbon_energy) =
            run_with_energy(&sw_workload, &Backend::Carbon, SchedulerKind::Fifo);
        // Task Superscalar: everything in hardware, fixed FIFO; it benefits
        // from the same reduced overheads as TDM, so it uses the TDM-optimal
        // granularity.
        let (tss_run, tss_energy) = run_with_energy(
            &tdm_workload,
            &Backend::task_superscalar_default(),
            SchedulerKind::Fifo,
        );
        // TDM with the best scheduler per benchmark (OptTDM).
        let opt_tdm = best_scheduler(&tdm_workload, &Backend::tdm_default());

        let speedups = [
            carbon_run.speedup_over(&base_run),
            tss_run.speedup_over(&base_run),
            opt_tdm.report.speedup_over(&base_run),
        ];
        let edps = [
            carbon_energy.normalized_edp(&base_energy),
            tss_energy.normalized_edp(&base_energy),
            opt_tdm.energy.normalized_edp(&base_energy),
        ];
        for (col, &v) in speedups.iter().enumerate() {
            speedup_cols[col].push(v);
        }
        for (col, &v) in edps.iter().enumerate() {
            edp_cols[col].push(v);
        }
        let mut sp_row = vec![bench.abbrev().to_string()];
        sp_row.extend(speedups.iter().map(|&v| ratio(v)));
        speedup_rows.push(sp_row);
        let mut edp_row = vec![bench.abbrev().to_string()];
        edp_row.extend(edps.iter().map(|&v| ratio(v)));
        edp_rows.push(edp_row);
    }

    let mut avg_sp = vec!["AVG".to_string()];
    avg_sp.extend(speedup_cols.iter().map(|c| ratio(geometric_mean(c))));
    speedup_rows.push(avg_sp);
    let mut avg_edp = vec!["AVG".to_string()];
    avg_edp.extend(edp_cols.iter().map(|c| ratio(geometric_mean(c))));
    edp_rows.push(avg_edp);

    let header = ["bench", "Carbon", "Task Superscalar", "OptTDM"];
    print_table(
        "Figure 13 (top): speedup over software runtime with FIFO",
        &header,
        &speedup_rows,
    );
    print_table(
        "Figure 13 (bottom): EDP normalized to software runtime with FIFO",
        &header,
        &edp_rows,
    );
}
