//! Figure 13: speedup and normalized EDP of Carbon, Task Superscalar and TDM
//! (with the best scheduler per benchmark) over the software runtime with a
//! FIFO scheduler.
//!
//! Three [`SweepGrid`]s executed in parallel across host threads: the
//! software-granularity benchmarks on the software runtime and Carbon (its
//! runtime overheads match the software baseline), and the TDM-granularity
//! benchmarks on Task Superscalar (FIFO) and TDM (all five schedulers, from
//! which OptTDM picks the best per benchmark). Energy is evaluated from
//! each point's `RunReport` afterwards. Results are bit-identical to the
//! old serial eager harness.

use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, SweepResult, WorkloadSpec};
use tdm_bench::{
    default_threads, dmu_of, frequency, geometric_mean, power_model, print_table, ratio, Benchmark,
};
use tdm_energy::edp::{evaluate, EnergyReport};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;

/// Evaluates the energy of a sweep point's run (the DMU geometry comes from
/// the point's backend via [`dmu_of`], exactly like `run_with_energy`).
fn energy_of(result: &SweepResult, backend: &Backend) -> EnergyReport {
    evaluate(
        &result.report,
        &power_model(),
        &dmu_of(backend),
        frequency(),
    )
}

/// The best scheduler of one benchmark's chunk: first strict minimum of the
/// makespan in `SchedulerKind::all()` order (the OptTDM selection of
/// Section VI-A, reproduced from the sweep results).
fn best(chunk: &[SweepResult]) -> &SweepResult {
    let mut best = &chunk[0];
    for candidate in &chunk[1..] {
        if candidate.report.makespan() < best.report.makespan() {
            best = candidate;
        }
    }
    best
}

fn main() {
    let threads = default_threads(1);
    let sw_workloads = || {
        Benchmark::ALL
            .iter()
            .map(|&b| WorkloadSpec::software_granularity(b))
            .collect()
    };
    let tdm_workloads = || {
        Benchmark::ALL
            .iter()
            .map(|&b| WorkloadSpec::tdm_granularity(b))
            .collect()
    };

    // Sweep 1: software granularity on the software runtime and Carbon
    // (hardware FIFO queues, software dependence tracking), FIFO.
    let sw_backend = Backend::Software;
    let carbon_backend = Backend::Carbon;
    let sw_grid = SweepGrid::new()
        .with_workloads(sw_workloads())
        .with_backends(vec![
            BackendSpec::from(sw_backend.clone()),
            BackendSpec::from(carbon_backend.clone()),
        ])
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let sw_results = run_sweep(&sw_grid, threads);

    // Sweep 2: Task Superscalar — everything in hardware, fixed FIFO; it
    // benefits from the same reduced overheads as TDM, so it uses the
    // TDM-optimal granularity.
    let tss_backend = Backend::task_superscalar_default();
    let tss_grid = SweepGrid::new()
        .with_workloads(tdm_workloads())
        .with_backends(vec![BackendSpec::from(tss_backend.clone())])
        .with_schedulers(vec![SchedulerKind::Fifo]);
    let tss_results = run_sweep(&tss_grid, threads);

    // Sweep 3: TDM under every scheduler; OptTDM is the best per benchmark.
    let tdm_backend = Backend::tdm_default();
    let schedulers = SchedulerKind::all();
    let per_bench = schedulers.len();
    let tdm_grid = SweepGrid::new()
        .with_workloads(tdm_workloads())
        .with_backends(vec![BackendSpec::from(tdm_backend.clone())])
        .with_schedulers(schedulers);
    let tdm_results = run_sweep(&tdm_grid, threads);

    let mut speedup_rows = Vec::new();
    let mut edp_rows = Vec::new();
    let mut speedup_cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut edp_cols: Vec<Vec<f64>> = vec![Vec::new(); 3];

    for (b, bench) in Benchmark::ALL.iter().enumerate() {
        // Grid order per benchmark: [Software FIFO, Carbon FIFO].
        let base_run = &sw_results[b * 2];
        let carbon_run = &sw_results[b * 2 + 1];
        let tss_run = &tss_results[b];
        let tdm_chunk = &tdm_results[b * per_bench..(b + 1) * per_bench];
        let opt_tdm = best(tdm_chunk);

        let base_energy = energy_of(base_run, &sw_backend);
        let speedups = [
            carbon_run.report.speedup_over(&base_run.report),
            tss_run.report.speedup_over(&base_run.report),
            opt_tdm.report.speedup_over(&base_run.report),
        ];
        let edps = [
            energy_of(carbon_run, &carbon_backend).normalized_edp(&base_energy),
            energy_of(tss_run, &tss_backend).normalized_edp(&base_energy),
            energy_of(opt_tdm, &tdm_backend).normalized_edp(&base_energy),
        ];
        for (col, &v) in speedups.iter().enumerate() {
            speedup_cols[col].push(v);
        }
        for (col, &v) in edps.iter().enumerate() {
            edp_cols[col].push(v);
        }
        let mut sp_row = vec![bench.abbrev().to_string()];
        sp_row.extend(speedups.iter().map(|&v| ratio(v)));
        speedup_rows.push(sp_row);
        let mut edp_row = vec![bench.abbrev().to_string()];
        edp_row.extend(edps.iter().map(|&v| ratio(v)));
        edp_rows.push(edp_row);
    }

    let mut avg_sp = vec!["AVG".to_string()];
    avg_sp.extend(speedup_cols.iter().map(|c| ratio(geometric_mean(c))));
    speedup_rows.push(avg_sp);
    let mut avg_edp = vec!["AVG".to_string()];
    avg_edp.extend(edp_cols.iter().map(|c| ratio(geometric_mean(c))));
    edp_rows.push(avg_edp);

    let header = ["bench", "Carbon", "Task Superscalar", "OptTDM"];
    print_table(
        "Figure 13 (top): speedup over software runtime with FIFO",
        &header,
        &speedup_rows,
    );
    print_table(
        "Figure 13 (bottom): EDP normalized to software runtime with FIFO",
        &header,
        &edp_rows,
    );
}
