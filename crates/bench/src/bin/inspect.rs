//! Debug/inspection harness: run one benchmark on one backend/scheduler and
//! dump the full report (phase breakdown, DMU statistics, stalls).
//!
//! Usage: `inspect <benchmark> <software|tdm|carbon|tss> [fifo|lifo|locality|successor|age]`

use tdm_bench::{pct, run, Benchmark};
use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::stats::Phase;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench_name = args.get(1).map(String::as_str).unwrap_or("cholesky");
    let backend_name = args.get(2).map(String::as_str).unwrap_or("tdm");
    let sched_name = args.get(3).map(String::as_str).unwrap_or("fifo");

    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(bench_name) || b.abbrev() == bench_name)
        .unwrap_or_else(|| panic!("unknown benchmark {bench_name}"));
    let backend = match backend_name {
        "software" | "sw" => Backend::Software,
        "tdm" => Backend::tdm_default(),
        "carbon" => Backend::Carbon,
        "tss" => Backend::task_superscalar_default(),
        other => panic!("unknown backend {other}"),
    };
    let scheduler = match sched_name {
        "fifo" => SchedulerKind::Fifo,
        "lifo" => SchedulerKind::Lifo,
        "locality" => SchedulerKind::Locality,
        "successor" => SchedulerKind::Successor { threshold: 2 },
        "age" => SchedulerKind::Age,
        other => panic!("unknown scheduler {other}"),
    };

    let workload = match backend {
        Backend::Software | Backend::Carbon => bench.software_workload(),
        _ => bench.tdm_workload(),
    };
    println!(
        "benchmark={} backend={} scheduler={} tasks={} avg_task_us={:.0}",
        bench.name(),
        backend.name(),
        scheduler.name(),
        workload.len(),
        workload.average_duration().as_f64() / 2000.0
    );
    let report = run(&workload, &backend, scheduler);
    let makespan_ms = report.makespan().as_f64() / 2e6;
    println!("makespan = {makespan_ms:.2} ms");
    let master = report.stats.master_breakdown();
    let workers = report.stats.worker_breakdown();
    for (name, b) in [("master", *master), ("workers", workers)] {
        println!(
            "{name:8} DEPS {:>6} SCHED {:>6} EXEC {:>6} IDLE {:>6}",
            pct(b.fraction(Phase::Deps)),
            pct(b.fraction(Phase::Sched)),
            pct(b.fraction(Phase::Exec)),
            pct(b.fraction(Phase::Idle)),
        );
    }
    if let Some(hw) = &report.hardware {
        println!(
            "DMU: creates={} adds={} finishes={} get_ready={} stalls={} accesses={}",
            hw.stats.creates,
            hw.stats.add_dependences,
            hw.stats.finishes,
            hw.stats.get_readies,
            hw.stats.stalls,
            hw.stats.total_accesses
        );
        println!(
            "DMU peaks: tasks={} deps={} sla={} dla={} rla={} rq={} | stall_cycles={} instrs={}",
            hw.peak.tasks,
            hw.peak.deps,
            hw.peak.successor_la,
            hw.peak.dependence_la,
            hw.peak.reader_la,
            hw.peak.ready_queue,
            hw.stall_cycles.raw(),
            hw.instructions
        );
        println!(
            "DAT avg occupied sets = {:.1}",
            hw.dat_average_occupied_sets
        );
    }
}
