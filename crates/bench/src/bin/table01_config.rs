//! Table I: configuration of the simulated chip and DMU structures.

use tdm_bench::print_table;
use tdm_core::config::DmuConfig;
use tdm_sim::config::ChipConfig;

fn main() {
    let chip = ChipConfig::default();
    let dmu = DmuConfig::default();

    let rows = vec![
        vec![
            "Cores".into(),
            format!(
                "{} out-of-order cores, {:.1} GHz",
                chip.num_cores,
                chip.frequency.as_ghz()
            ),
        ],
        vec![
            "Issue width".into(),
            format!("{} instr/cycle", chip.core.issue_width),
        ],
        vec![
            "Reorder buffer".into(),
            format!("{} entries", chip.core.rob_entries),
        ],
        vec![
            "Issue queue".into(),
            format!("{} entries", chip.core.issue_queue_entries),
        ],
        vec![
            "Register file".into(),
            format!(
                "{} int, {} FP",
                chip.core.int_registers, chip.core.fp_registers
            ),
        ],
        vec![
            "L1 data cache".into(),
            format!(
                "{} KB, {}-way, {} hit",
                chip.memory.l1_size_bytes / 1024,
                chip.memory.l1_ways,
                chip.memory.l1_hit_latency
            ),
        ],
        vec![
            "Shared L2".into(),
            format!(
                "{} MB, {}-way",
                chip.memory.l2_size_bytes / (1024 * 1024),
                chip.memory.l2_ways
            ),
        ],
        vec![
            "NoC".into(),
            format!(
                "mesh, {} per hop, DMU round trip {}",
                chip.noc_hop_latency,
                chip.dmu_round_trip()
            ),
        ],
        vec![
            "TAT".into(),
            format!(
                "{} entries, {}-way, {} per access",
                dmu.tat_entries, dmu.tat_ways, dmu.access_latency
            ),
        ],
        vec![
            "DAT".into(),
            format!(
                "{} entries, {}-way, {} per access",
                dmu.dat_entries, dmu.dat_ways, dmu.access_latency
            ),
        ],
        vec![
            "Task / Dependence Table".into(),
            format!("{} entries each", dmu.task_table_entries()),
        ],
        vec![
            "SLA / DLA / RLA".into(),
            format!(
                "{} entries, {} elements/entry",
                dmu.successor_la_entries, dmu.elems_per_list_entry
            ),
        ],
    ];
    print_table(
        "Table I: simulated system configuration",
        &["Parameter", "Value"],
        &rows,
    );
}
