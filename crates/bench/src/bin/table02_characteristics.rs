//! Table II: number of tasks and average task duration per benchmark, at the
//! optimal granularity for the software runtime and for TDM.

use tdm_bench::{print_table, Benchmark};

fn main() {
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let sw = bench.software_workload();
        let tdm = bench.tdm_workload();
        let sw_target = bench.table2_software();
        let tdm_target = bench.table2_tdm();
        rows.push(vec![
            bench.name().to_string(),
            format!("{}", sw.len()),
            format!("{:.0}", sw.average_duration().as_f64() / 2000.0),
            format!("{} / {:.0} µs", sw_target.0, sw_target.1),
            format!("{}", tdm.len()),
            format!("{:.0}", tdm.average_duration().as_f64() / 2000.0),
            format!("{} / {:.0} µs", tdm_target.0, tdm_target.1),
        ]);
    }
    print_table(
        "Table II: benchmark characteristics (generated vs paper)",
        &[
            "Benchmark",
            "SW #tasks",
            "SW avg µs",
            "SW paper",
            "TDM #tasks",
            "TDM avg µs",
            "TDM paper",
        ],
        &rows,
    );
}
