//! Table III: DMU storage and area requirements, plus the comparison against
//! Task Superscalar's storage (Section VI-C).

use tdm_bench::print_table;
use tdm_core::area::{carbon_kilobytes, task_superscalar_kilobytes, DmuStorageReport};
use tdm_core::config::DmuConfig;
use tdm_energy::sram::{area_mm2, SramKind};

fn main() {
    let config = DmuConfig::default();
    let report = DmuStorageReport::for_config(&config);
    let kind_of = |name: &str| match name {
        "TAT" | "DAT" => SramKind::SetAssociative,
        "ReadyQ" => SramKind::Fifo,
        _ => SramKind::DirectMapped,
    };

    let mut rows = Vec::new();
    let mut total_kb = 0.0;
    let mut total_mm2 = 0.0;
    for s in &report.structures {
        let kb = s.kilobytes();
        let mm2 = area_mm2(kb, kind_of(s.name));
        total_kb += kb;
        total_mm2 += mm2;
        rows.push(vec![
            s.name.to_string(),
            format!("{kb:.2}"),
            format!("{mm2:.3}"),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        format!("{total_kb:.2}"),
        format!("{total_mm2:.3}"),
    ]);
    print_table(
        "Table III: DMU storage (KB) and area (mm²) at 22 nm",
        &["Structure", "Storage (KB)", "Area (mm²)"],
        &rows,
    );

    let tss_kb = task_superscalar_kilobytes(config.task_table_entries());
    let carbon_kb = carbon_kilobytes(32);
    print_table(
        "Hardware-complexity comparison (Section VI-C)",
        &["System", "Storage (KB)", "vs DMU"],
        &[
            vec!["TDM (DMU)".into(), format!("{total_kb:.2}"), "1.0×".into()],
            vec![
                "Task Superscalar".into(),
                format!("{tss_kb:.0}"),
                format!("{:.1}×", tss_kb / total_kb),
            ],
            vec![
                "Carbon (32 queues)".into(),
                format!("{carbon_kb:.0}"),
                format!("{:.1}×", carbon_kb / total_kb),
            ],
        ],
    );
}
