//! Shared command-line parsing for the bench binaries.
//!
//! `bench_baseline`, `bench_scale`, `bench_sweep` and `bench_events` all
//! take the same shapes of arguments — `--flag value` pairs, comma-separated
//! axis lists, benchmark/backend/scheduler names — and each used to carry
//! its own copy of the parsing loop. The shared pieces live here instead;
//! a malformed value is always an `Err(String)` for the binary to print
//! next to its usage line, never a panic.
//!
//! The matching hand-rolled JSON *writer* shared by the same binaries is
//! [`crate::baseline::json::document`] (the workspace's `serde` is a no-op
//! shim, so JSON output is assembled by hand against one helper).

use tdm_runtime::exec::Backend;
use tdm_runtime::scheduler::SchedulerKind;
use tdm_workloads::Benchmark;

/// A `--flag value --flag2 value2 ...` argument stream.
///
/// # Example
///
/// ```
/// use tdm_bench::cli::Args;
///
/// let raw = vec!["--threads".to_string(), "4".to_string()];
/// let mut args = Args::new(&raw);
/// assert_eq!(args.next_flag(), Some("--threads".to_string()));
/// assert_eq!(args.value("--threads").unwrap(), "4");
/// assert_eq!(args.next_flag(), None);
/// ```
pub struct Args<'a> {
    items: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    /// Wraps a raw argument slice (normally `std::env::args().skip(..)`
    /// collected by the binary).
    pub fn new(items: &'a [String]) -> Self {
        Args { items, pos: 0 }
    }

    /// The next flag token, or `None` when the arguments are exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let item = self.items.get(self.pos)?;
        self.pos += 1;
        Some(item.clone())
    }

    /// The value belonging to `flag`, which must be the flag just returned
    /// by [`next_flag`](Args::next_flag).
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        let item = self
            .items
            .get(self.pos)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.pos += 1;
        Ok(item.clone())
    }
}

/// Parses a positive count (`--tasks`, `--threads`, `--window`, ...);
/// rejects zero with `zero_hint` appended to the error.
pub fn parse_count(flag: &str, value: &str, zero_hint: &str) -> Result<usize, String> {
    let n: usize = value.parse().map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1{zero_hint}"));
    }
    Ok(n)
}

/// Parses a `u64` flag value (seeds and the like; zero allowed).
pub fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parses a probability flag (`--fault-rate` and the like): a finite `f64`
/// in `[0, 1]`.
pub fn parse_rate(flag: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "{flag} must be a probability in [0, 1], got {value}"
        ));
    }
    Ok(rate)
}

/// Parses a Table II benchmark by (case-insensitive) name.
pub fn parse_benchmark(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!("unknown benchmark {name:?} (known: {})", known.join(", "))
        })
}

/// Parses a backend by name (`software`/`sw`, `tdm`, `carbon`,
/// `tss`/`tasksuperscalar`), with the default DMU geometry where one is
/// needed.
pub fn parse_backend(name: &str) -> Result<Backend, String> {
    match name.to_ascii_lowercase().as_str() {
        "software" | "sw" => Ok(Backend::Software),
        "tdm" => Ok(Backend::tdm_default()),
        "carbon" => Ok(Backend::Carbon),
        "tss" | "tasksuperscalar" => Ok(Backend::task_superscalar_default()),
        other => Err(format!(
            "unknown backend {other:?} (known: software, tdm, carbon, tss)"
        )),
    }
}

/// Parses a scheduler policy by (case-insensitive) display name.
pub fn parse_scheduler(name: &str) -> Result<SchedulerKind, String> {
    SchedulerKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("unknown scheduler {name:?} (known: fifo, lifo, locality, successor, age)")
        })
}

/// Parses a non-empty comma-separated list with a per-item parser.
pub fn parse_list<T>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Vec<&str> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(format!("{flag} needs a non-empty comma-separated list"));
    }
    items.iter().map(|s| parse(s)).collect()
}

/// Writes `content` to `path` with the error message the binaries share.
pub fn write_output(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_walk_flags_and_values() {
        let raw: Vec<String> = ["--a", "1", "--b", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut args = Args::new(&raw);
        assert_eq!(args.next_flag().as_deref(), Some("--a"));
        assert_eq!(args.value("--a").unwrap(), "1");
        assert_eq!(args.next_flag().as_deref(), Some("--b"));
        assert_eq!(args.value("--b").unwrap(), "2");
        assert_eq!(args.next_flag(), None);
    }

    #[test]
    fn missing_value_is_an_error_not_a_panic() {
        let raw: Vec<String> = vec!["--threads".to_string()];
        let mut args = Args::new(&raw);
        args.next_flag();
        assert!(args
            .value("--threads")
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn counts_reject_zero_and_garbage() {
        assert_eq!(parse_count("--tasks", "5", "").unwrap(), 5);
        assert!(parse_count("--tasks", "0", " task").is_err());
        assert!(parse_count("--tasks", "x", "").is_err());
        assert_eq!(parse_u64("--seed", "0").unwrap(), 0);
        assert!(parse_u64("--seed", "?").is_err());
    }

    #[test]
    fn rates_must_be_finite_probabilities() {
        assert_eq!(parse_rate("--fault-rate", "0").unwrap(), 0.0);
        assert_eq!(parse_rate("--fault-rate", "0.25").unwrap(), 0.25);
        assert_eq!(parse_rate("--fault-rate", "1").unwrap(), 1.0);
        for bad in ["-0.1", "1.5", "NaN", "inf", "x"] {
            assert!(parse_rate("--fault-rate", bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn names_resolve_case_insensitively() {
        assert_eq!(parse_benchmark("CHOLESKY").unwrap().name(), "cholesky");
        assert!(parse_benchmark("nope").is_err());
        assert_eq!(parse_backend("SW").unwrap().name(), "Software");
        assert_eq!(parse_backend("tss").unwrap().name(), "TaskSuperscalar");
        assert!(parse_backend("nope").is_err());
        assert_eq!(parse_scheduler("age").unwrap().name(), "Age");
        assert!(parse_scheduler("nope").is_err());
    }

    #[test]
    fn lists_split_trim_and_reject_empty() {
        let v = parse_list("--x", "a, b ,c", |s| Ok(s.to_string())).unwrap();
        assert_eq!(v, vec!["a", "b", "c"]);
        assert!(parse_list("--x", " , ", |s| Ok(s.to_string())).is_err());
        assert!(parse_list("--x", "a,b", |s| {
            if s == "b" {
                Err("bad".to_string())
            } else {
                Ok(s.to_string())
            }
        })
        .is_err());
    }
}
