//! Parallel design-space sweeps: a declarative configuration grid executed
//! across host threads.
//!
//! The paper's headline results (Figures 7–13) are sweeps — alias-table
//! sizes, index-bit policies, schedulers, core counts — and every point of
//! such a sweep is an *independent, pure* simulation: a deterministic
//! function of its configuration and seed. That makes the grid
//! embarrassingly parallel on the host, and this module exploits it:
//!
//! * [`SweepGrid`] declares the axes — workloads ([`WorkloadSpec`]: a
//!   benchmark at some granularity or scale factor, or any custom
//!   [`TaskStream`] factory), backends ([`BackendSpec`]: any
//!   [`Backend`], so DMU geometries and index policies are one axis entry
//!   each), schedulers, master windows and core counts — plus the seeding
//!   policy.
//! * [`SweepGrid::points`] expands the cross product into an ordered list of
//!   [`SweepPoint`]s, each carrying **its own deterministic seed** (see
//!   [`point_seed`]).
//! * [`run_sweep`] executes the points with `std::thread::scope` over a
//!   shared atomic work queue. Each worker pulls the next unclaimed point,
//!   builds the stream *inside* the worker (streams are `Send` but need not
//!   be `Sync`), drives [`simulate_stream`] through the windowed master, and
//!   writes the result into the point's slot. Because every point is a pure
//!   function of the grid, the assembled result vector is **bit-identical
//!   regardless of thread count or scheduling order** — only the wall-clock
//!   measurements differ, and [`SweepResult::modeled_eq`] compares
//!   everything but those. `tests/conformance/sweep.rs` pins this, and
//!   `bench_sweep verify` re-checks it at full scale in CI.
//!
//! Results serialise to JSON/CSV through the same hand-rolled
//! [`crate::baseline::json`] module the perf baseline uses (the
//! workspace's `serde` is a no-op shim).
//!
//! # Example
//!
//! ```
//! use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};
//! use tdm_core::config::DmuConfig;
//! use tdm_runtime::exec::Backend;
//!
//! let grid = SweepGrid::new()
//!     .with_workloads(vec![WorkloadSpec::scaled(tdm_bench::Benchmark::Histogram, 600)])
//!     .with_backends(vec![
//!         BackendSpec::labelled("tdm-small", Backend::Tdm(DmuConfig::default().with_alias_sizes(512, 512))),
//!         BackendSpec::from(Backend::tdm_default()),
//!     ])
//!     .with_windows(vec![64]);
//! assert_eq!(grid.len(), 2);
//! let results = run_sweep(&grid, 2);
//! assert!(results.iter().all(|r| r.report.tasks >= 600));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tdm_runtime::exec::{simulate_stream, Backend, ExecConfig, RunReport};
use tdm_runtime::scheduler::SchedulerKind;
use tdm_sim::rng::SplitMix64;
use tdm_workloads::{Benchmark, TaskStream};

use crate::baseline::json;
use crate::standard_config;

/// Schema version of the `bench_sweep` JSON output; bump when fields change.
/// Version 2 added the fault-injection counters (`faults_injected`,
/// `retries`, `retired_cores`) to every row.
pub const SCHEMA_VERSION: u64 = 2;

/// One workload axis entry: a label plus a factory producing a fresh
/// [`TaskStream`] for every simulation point that uses it.
///
/// The factory is `Fn` (not `FnOnce`) and `Send + Sync` because several
/// worker threads may build streams from the same spec concurrently; each
/// call must yield an identical, independent stream (the generators are
/// closed-form, so this is their natural behaviour).
pub struct WorkloadSpec {
    label: String,
    build: Box<dyn Fn() -> TaskStream + Send + Sync>,
}

impl WorkloadSpec {
    /// A custom workload from any stream factory.
    pub fn new(
        label: impl Into<String>,
        build: impl Fn() -> TaskStream + Send + Sync + 'static,
    ) -> Self {
        WorkloadSpec {
            label: label.into(),
            build: Box::new(build),
        }
    }

    /// A Table II benchmark at the TDM-optimal granularity.
    pub fn tdm_granularity(bench: Benchmark) -> Self {
        WorkloadSpec::new(bench.name(), move || bench.tdm_stream())
    }

    /// A Table II benchmark at the software-optimal granularity.
    pub fn software_granularity(bench: Benchmark) -> Self {
        WorkloadSpec::new(format!("{}-sw", bench.name()), move || {
            bench.software_stream()
        })
    }

    /// A benchmark scaled to **at least** `target_tasks` tasks
    /// (see [`Benchmark::scaled_stream`]).
    pub fn scaled(bench: Benchmark, target_tasks: usize) -> Self {
        WorkloadSpec::new(format!("{}@{}", bench.name(), target_tasks), move || {
            bench.scaled_stream(target_tasks)
        })
    }

    /// The label identifying this workload in points and results.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Builds a fresh stream of this workload.
    pub fn stream(&self) -> TaskStream {
        (self.build)()
    }
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// One backend axis entry: a [`Backend`] with a label that distinguishes
/// configurations sharing a backend name (e.g. several DMU geometries, which
/// all report as `"TDM"`).
#[derive(Debug, Clone)]
pub struct BackendSpec {
    label: String,
    backend: Backend,
}

impl BackendSpec {
    /// A backend labelled explicitly (use when sweeping several
    /// configurations of the same backend kind).
    pub fn labelled(label: impl Into<String>, backend: Backend) -> Self {
        BackendSpec {
            label: label.into(),
            backend,
        }
    }

    /// The label identifying this backend in points and results.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The backend configuration itself.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }
}

impl From<Backend> for BackendSpec {
    /// Labels the spec with the backend's display name.
    fn from(backend: Backend) -> Self {
        BackendSpec {
            label: backend.name().to_string(),
            backend,
        }
    }
}

/// A declarative design-space grid: the cross product of every axis, plus
/// the seeding policy.
///
/// Point order is deterministic and documented: workloads are the outermost
/// axis, then backends, schedulers, windows and core counts (innermost) —
/// the nesting order of the fields below.
#[derive(Debug)]
pub struct SweepGrid {
    /// Workload axis (outermost).
    pub workloads: Vec<WorkloadSpec>,
    /// Backend axis, DMU configurations included.
    pub backends: Vec<BackendSpec>,
    /// Scheduler axis (hardware-scheduled backends ignore it, as always).
    pub schedulers: Vec<SchedulerKind>,
    /// Master creation-window axis (`usize::MAX` = unbounded).
    pub windows: Vec<usize>,
    /// Core-count axis (innermost).
    pub core_counts: Vec<usize>,
    /// Base seed (see [`SweepGrid::with_per_point_seeds`]).
    pub seed: u64,
    /// When true, each point derives its own seed via [`point_seed`]; when
    /// false (default) every point uses `seed` directly, matching the fixed
    /// seed of [`standard_config`] so sweep results line up with the classic
    /// figure harnesses.
    pub per_point_seeds: bool,
}

impl SweepGrid {
    /// An empty grid with the standard defaults: FIFO scheduling, unbounded
    /// window, the Table I core count, and the standard fixed seed.
    pub fn new() -> Self {
        let config = standard_config();
        SweepGrid {
            workloads: Vec::new(),
            backends: Vec::new(),
            schedulers: vec![SchedulerKind::Fifo],
            windows: vec![usize::MAX],
            core_counts: vec![config.chip.num_cores],
            seed: config.seed,
            per_point_seeds: false,
        }
    }

    /// Replaces the workload axis.
    pub fn with_workloads(mut self, workloads: Vec<WorkloadSpec>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Replaces the backend axis.
    pub fn with_backends(mut self, backends: Vec<BackendSpec>) -> Self {
        self.backends = backends;
        self
    }

    /// Replaces the scheduler axis.
    pub fn with_schedulers(mut self, schedulers: Vec<SchedulerKind>) -> Self {
        self.schedulers = schedulers;
        self
    }

    /// Replaces the window axis. Windows are clamped to at least 1 by the
    /// execution driver (0 behaves as 1, documented on
    /// [`ExecConfig::window`]).
    pub fn with_windows(mut self, windows: Vec<usize>) -> Self {
        self.windows = windows;
        self
    }

    /// Replaces the core-count axis.
    pub fn with_core_counts(mut self, core_counts: Vec<usize>) -> Self {
        self.core_counts = core_counts;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives an independent seed per point ([`point_seed`]) instead of
    /// using the base seed everywhere. Duration jitter then decorrelates
    /// across points while staying a pure function of (base seed, point
    /// index) — bit-identical no matter how many threads execute the sweep.
    pub fn with_per_point_seeds(mut self) -> Self {
        self.per_point_seeds = true;
        self
    }

    /// Number of points in the grid (the product of all axis lengths).
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.backends.len()
            * self.schedulers.len()
            * self.windows.len()
            * self.core_counts.len()
    }

    /// True if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its ordered point list.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for (workload, spec) in self.workloads.iter().enumerate() {
            for backend in &self.backends {
                for &scheduler in &self.schedulers {
                    for &window in &self.windows {
                        for &cores in &self.core_counts {
                            let index = points.len();
                            let seed = if self.per_point_seeds {
                                point_seed(self.seed, index as u64)
                            } else {
                                self.seed
                            };
                            points.push(SweepPoint {
                                index,
                                workload,
                                workload_label: spec.label.clone(),
                                backend_label: backend.label.clone(),
                                backend: backend.backend.clone(),
                                scheduler,
                                window,
                                cores,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        points
    }
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

/// Deterministic per-point seed: one SplitMix64 output keyed by the base
/// seed and the point's index in the expanded grid. A pure function, so a
/// serial rerun of any single point reproduces the sweep's result exactly.
pub fn point_seed(base_seed: u64, point_index: u64) -> u64 {
    SplitMix64::new(base_seed ^ point_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// One fully resolved simulation point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in the expanded grid (also the result-vector position).
    pub index: usize,
    /// Index of the workload spec in [`SweepGrid::workloads`].
    pub workload: usize,
    /// Label of that workload spec.
    pub workload_label: String,
    /// Label of the backend spec.
    pub backend_label: String,
    /// The backend configuration to simulate.
    pub backend: Backend,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Master creation window.
    pub window: usize,
    /// Simulated core count.
    pub cores: usize,
    /// Seed for this point's run.
    pub seed: u64,
}

impl SweepPoint {
    /// The [`ExecConfig`] this point runs with: the standard configuration,
    /// re-cored if the point's core count differs, with the point's seed and
    /// window applied. Public so the conformance suite can replay any point
    /// serially and demand a bit-identical report.
    pub fn exec_config(&self) -> ExecConfig {
        let mut config = standard_config();
        if self.cores != config.chip.num_cores {
            config = config.with_cores(self.cores);
        }
        config.seed = self.seed;
        config.window = self.window;
        config
    }
}

/// The outcome of one sweep point: the point's identity, the full
/// [`RunReport`] and the host wall-clock time.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Workload label of the point.
    pub workload: String,
    /// Backend label of the point.
    pub backend: String,
    /// Scheduler actually applied (hardware backends force FIFO).
    pub scheduler: String,
    /// Master creation window of the point.
    pub window: usize,
    /// Simulated core count of the point.
    pub cores: usize,
    /// Seed the point ran with.
    pub seed: u64,
    /// The complete simulation report (modeled quantities only).
    pub report: RunReport,
    /// Host wall-clock time of the simulation, in milliseconds. The only
    /// field that varies between reruns; excluded from [`modeled_eq`].
    ///
    /// [`modeled_eq`]: SweepResult::modeled_eq
    pub wall_ms: f64,
}

impl SweepResult {
    /// True if every modeled quantity matches `other` bit-for-bit — the
    /// whole result except the host wall-clock measurement.
    pub fn modeled_eq(&self, other: &SweepResult) -> bool {
        self.workload == other.workload
            && self.backend == other.backend
            && self.scheduler == other.scheduler
            && self.window == other.window
            && self.cores == other.cores
            && self.seed == other.seed
            && self.report == other.report
    }

    /// Modeled makespan in cycles.
    pub fn makespan_cycles(&self) -> u64 {
        self.report.makespan().raw()
    }

    /// Total DMU SRAM accesses (0 for software dependence tracking).
    pub fn dmu_accesses(&self) -> u64 {
        self.report
            .hardware
            .as_ref()
            .map_or(0, |hw| hw.stats.total_accesses)
    }

    /// Number of DMU stalls (0 for software dependence tracking).
    pub fn dmu_stalls(&self) -> u64 {
        self.report
            .hardware
            .as_ref()
            .map_or(0, |hw| hw.stats.stalls)
    }

    /// Simulated tasks per second of host time.
    pub fn tasks_per_sec(&self) -> f64 {
        self.report.tasks as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

/// Runs one point: builds a fresh stream from its workload spec and drives
/// the windowed streaming simulator. Pure in everything but `wall_ms`.
pub fn run_point(grid: &SweepGrid, point: &SweepPoint) -> SweepResult {
    let mut stream = grid.workloads[point.workload].stream();
    let config = point.exec_config();
    let start = Instant::now();
    let report = simulate_stream(&mut stream, &point.backend, point.scheduler, &config);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    SweepResult {
        workload: point.workload_label.clone(),
        backend: point.backend_label.clone(),
        scheduler: report.scheduler.clone(),
        window: point.window,
        cores: point.cores,
        seed: point.seed,
        report,
        wall_ms,
    }
}

/// Executes every point of `grid` on `threads` host threads (clamped to
/// `1..=points`), returning results in grid order.
///
/// Threads share an atomic cursor over the point list: each worker claims
/// the next unclaimed point, runs it to completion and stores the result in
/// that point's dedicated slot, so no two workers ever touch the same slot
/// and the output order never depends on scheduling. Modeled results are
/// bit-identical for every `threads` value.
///
/// # Panics
///
/// Propagates a panic from any worker (a simulation deadlock is a bug, not
/// a result).
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> Vec<SweepResult> {
    let points = grid.points();
    let threads = threads.clamp(1, points.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepResult>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else {
                    break;
                };
                let result = run_point(grid, point);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed point stored a result")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

/// Serialises sweep results as JSON (via the baseline's hand-rolled JSON
/// module). Unbounded windows (`usize::MAX`) are emitted as `null` and
/// seeds as strings — both exceed the exact-integer range of JSON
/// numbers-as-f64, which the parser side stores.
pub fn results_to_json(results: &[SweepResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\": {}, \"backend\": {}, \"scheduler\": {}, \
                 \"window\": {}, \"cores\": {}, \"seed\": {}, \"tasks\": {}, \
                 \"makespan_cycles\": {}, \"dmu_accesses\": {}, \"dmu_stalls\": {}, \
                 \"peak_resident_tasks\": {}, \"faults_injected\": {}, \
                 \"retries\": {}, \"retired_cores\": {}, \"wall_ms\": {:.3}}}",
                json::escape(&r.workload),
                json::escape(&r.backend),
                json::escape(&r.scheduler),
                window_json(r.window),
                r.cores,
                json::escape(&r.seed.to_string()),
                r.report.tasks,
                r.makespan_cycles(),
                r.dmu_accesses(),
                r.dmu_stalls(),
                r.report.peak_resident_tasks,
                r.report.faults_injected,
                r.report.retries,
                r.report.retired_cores,
                json::finite(r.wall_ms, "wall_ms"),
            )
        })
        .collect();
    json::document(
        &[("schema_version", SCHEMA_VERSION.to_string())],
        "results",
        &rows,
    )
}

fn window_json(window: usize) -> String {
    if window == usize::MAX {
        "null".to_string()
    } else {
        window.to_string()
    }
}

/// Serialises sweep results as CSV (header + one row per point). Unbounded
/// windows are written as `unbounded`.
pub fn results_to_csv(results: &[SweepResult]) -> String {
    let mut out = String::from(
        "workload,backend,scheduler,window,cores,seed,tasks,makespan_cycles,\
         dmu_accesses,dmu_stalls,peak_resident_tasks,faults_injected,retries,\
         retired_cores,wall_ms\n",
    );
    for r in results {
        let window = if r.window == usize::MAX {
            "unbounded".to_string()
        } else {
            r.window.to_string()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3}\n",
            csv_field(&r.workload),
            csv_field(&r.backend),
            csv_field(&r.scheduler),
            window,
            r.cores,
            r.seed,
            r.report.tasks,
            r.makespan_cycles(),
            r.dmu_accesses(),
            r.dmu_stalls(),
            r.report.peak_resident_tasks,
            r.report.faults_injected,
            r.report.retries,
            r.report.retired_cores,
            r.wall_ms,
        ));
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote, newline or
/// carriage return (RFC 4180 quoting: the field is wrapped in double quotes
/// and embedded quotes are doubled).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_runtime::task::{DependenceSpec, TaskSpec};
    use tdm_sim::clock::Cycle;

    /// A tiny deterministic workload: `chains` chains of `len` tasks.
    fn tiny(chains: usize, len: usize) -> WorkloadSpec {
        WorkloadSpec::new(format!("tiny{chains}x{len}"), move || {
            TaskStream::new(
                format!("tiny{chains}x{len}"),
                chains * len,
                (0..chains).flat_map(move |c| {
                    (0..len).map(move |_| {
                        TaskSpec::new(
                            "link",
                            Cycle::new(200_000),
                            vec![DependenceSpec::inout(0x1000 + (c as u64) * 0x1000, 64)],
                        )
                    })
                }),
            )
        })
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .with_workloads(vec![tiny(4, 6), tiny(2, 9)])
            .with_backends(vec![
                BackendSpec::from(Backend::Software),
                BackendSpec::from(Backend::tdm_default()),
            ])
            .with_schedulers(vec![SchedulerKind::Fifo, SchedulerKind::Age])
            .with_windows(vec![usize::MAX, 4])
            .with_core_counts(vec![4])
    }

    #[test]
    fn grid_expands_in_documented_order() {
        let grid = small_grid();
        assert_eq!(grid.len(), 16);
        let points = grid.points();
        assert_eq!(points.len(), 16);
        // Workloads outermost: first half is tiny4x6.
        assert!(points[..8].iter().all(|p| p.workload_label == "tiny4x6"));
        // Innermost axis (here: windows, since cores has one entry)
        // alternates fastest.
        assert_eq!(points[0].window, usize::MAX);
        assert_eq!(points[1].window, 4);
        assert_eq!(points[0].backend_label, "Software");
        assert_eq!(points[4].backend_label, "TDM");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn fixed_seed_by_default_per_point_on_request() {
        let grid = small_grid();
        assert!(grid.points().iter().all(|p| p.seed == 42));
        let derived = small_grid().with_per_point_seeds();
        let points = derived.points();
        assert_eq!(points[3].seed, point_seed(42, 3));
        let distinct: std::collections::HashSet<u64> = points.iter().map(|p| p.seed).collect();
        assert_eq!(distinct.len(), points.len(), "derived seeds collide");
        // Pure function: re-expansion reproduces the same seeds.
        assert_eq!(
            derived.points().iter().map(|p| p.seed).collect::<Vec<_>>(),
            points.iter().map(|p| p.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let grid = small_grid();
        let serial = run_sweep(&grid, 1);
        let parallel = run_sweep(&grid, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!(
                a.modeled_eq(b),
                "{} × {} × {} diverged across thread counts",
                a.workload,
                a.backend,
                a.scheduler
            );
        }
    }

    #[test]
    fn sweep_points_match_serial_simulate_stream() {
        let grid = small_grid().with_per_point_seeds();
        let results = run_sweep(&grid, 3);
        for (point, result) in grid.points().iter().zip(&results) {
            let mut stream = grid.workloads[point.workload].stream();
            let report = simulate_stream(
                &mut stream,
                &point.backend,
                point.scheduler,
                &point.exec_config(),
            );
            assert_eq!(report, result.report, "point {}", point.index);
        }
    }

    #[test]
    fn windowed_points_respect_residency_bound() {
        let grid = small_grid();
        for result in run_sweep(&grid, 2) {
            if result.window != usize::MAX {
                assert!(result.report.peak_resident_tasks <= result.window + 1);
            }
            assert_eq!(result.report.tasks, result.report.stats.tasks_executed);
        }
    }

    #[test]
    fn json_output_round_trips_through_the_baseline_parser() {
        let grid = small_grid();
        let results = run_sweep(&grid, 2);
        let text = results_to_json(&results);
        let value = json::parse(&text).expect("bench_sweep JSON must parse");
        let obj = value.as_object("top").unwrap();
        assert_eq!(
            json::field(obj, "schema_version")
                .unwrap()
                .as_u64("schema_version")
                .unwrap(),
            SCHEMA_VERSION
        );
        let rows = json::field(obj, "results")
            .unwrap()
            .as_array("results")
            .unwrap();
        assert_eq!(rows.len(), results.len());
        let first = rows[0].as_object("results[0]").unwrap();
        assert_eq!(
            json::field(first, "makespan_cycles")
                .unwrap()
                .as_u64("makespan_cycles")
                .unwrap(),
            results[0].makespan_cycles()
        );
        // The fault counters ride along in every row (all zero without a
        // fault configuration on the grid's exec config).
        for counter in ["faults_injected", "retries", "retired_cores"] {
            assert_eq!(
                json::field(first, counter)
                    .unwrap()
                    .as_u64(counter)
                    .unwrap(),
                0,
                "{counter} must be present and zero in a fault-free sweep"
            );
        }
        // Unbounded window serialises as null, bounded as a number.
        assert!(matches!(
            json::field(first, "window").unwrap(),
            json::Value::Null
        ));
        // Seeds are strings: u64 values exceed JSON's f64-exact range.
        assert_eq!(
            json::field(first, "seed").unwrap().as_str("seed").unwrap(),
            results[0].seed.to_string()
        );
    }

    #[test]
    fn csv_output_has_one_row_per_point_plus_header() {
        let grid = small_grid();
        let results = run_sweep(&grid, 2);
        let csv = results_to_csv(&results);
        assert_eq!(csv.lines().count(), results.len() + 1);
        // Window axis alternates [unbounded, 4]: first data row unbounded,
        // second bounded.
        assert!(csv.lines().nth(1).unwrap().contains("unbounded"));
        assert!(!csv.lines().nth(2).unwrap().contains("unbounded"));
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn awkward_axis_labels_are_csv_quoted() {
        // Every delimiter-ish character triggers RFC 4180 quoting, and
        // embedded quotes are doubled.
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_field("carriage\rreturn"), "\"carriage\rreturn\"");
        assert_eq!(
            csv_field("all,of\"the\r\nabove"),
            "\"all,of\"\"the\r\nabove\""
        );

        // End to end: a workload label containing the full zoo of CSV
        // metacharacters must not change the row count or bleed into
        // neighbouring columns.
        let grid = SweepGrid::new()
            .with_workloads(vec![WorkloadSpec::new("evil,\"label\"\nx", move || {
                TaskStream::new(
                    "evil",
                    2,
                    (0..2).map(|_| {
                        TaskSpec::new(
                            "t",
                            Cycle::new(100_000),
                            vec![DependenceSpec::inout(0x1000, 64)],
                        )
                    }),
                )
            })])
            .with_backends(vec![BackendSpec::labelled(
                "geom,512",
                Backend::tdm_default(),
            )])
            .with_core_counts(vec![2]);
        let results = run_sweep(&grid, 1);
        let csv = results_to_csv(&results);
        // The embedded newline is inside quotes; a naive line count would
        // see an extra record, so split on the *unquoted* record boundary:
        // the header plus one data row means exactly two trailing-newline
        // separated records when quotes are respected.
        let data = csv.strip_prefix(
            "workload,backend,scheduler,window,cores,seed,tasks,makespan_cycles,\
             dmu_accesses,dmu_stalls,peak_resident_tasks,faults_injected,retries,\
             retired_cores,wall_ms\n",
        );
        let row = data.expect("header must be unquoted and exact");
        assert!(row.starts_with("\"evil,\"\"label\"\"\nx\",\"geom,512\","));
        // JSON side: the same labels must escape and round-trip.
        let text = results_to_json(&results);
        let value = json::parse(&text).expect("sweep JSON with awkward labels must parse");
        let obj = value.as_object("top").unwrap();
        let rows = json::field(obj, "results")
            .unwrap()
            .as_array("results")
            .unwrap();
        let first = rows[0].as_object("results[0]").unwrap();
        assert_eq!(
            json::field(first, "workload")
                .unwrap()
                .as_str("workload")
                .unwrap(),
            "evil,\"label\"\nx"
        );
        assert_eq!(
            json::field(first, "backend")
                .unwrap()
                .as_str("backend")
                .unwrap(),
            "geom,512"
        );
    }

    #[test]
    #[should_panic(expected = "wall_ms: cannot serialise non-finite value")]
    fn non_finite_wall_is_rejected_by_the_sweep_json_writer() {
        let grid = SweepGrid::new()
            .with_workloads(vec![tiny(1, 2)])
            .with_backends(vec![BackendSpec::from(Backend::Software)]);
        let mut results = run_sweep(&grid, 1);
        results[0].wall_ms = f64::NAN;
        let _ = results_to_json(&results);
    }

    #[test]
    fn thread_count_is_clamped_not_trusted() {
        let grid = SweepGrid::new()
            .with_workloads(vec![tiny(1, 3)])
            .with_backends(vec![BackendSpec::from(Backend::Software)]);
        assert_eq!(grid.len(), 1);
        // More threads than points, and zero threads, both still work.
        assert_eq!(run_sweep(&grid, 64).len(), 1);
        assert_eq!(run_sweep(&grid, 0).len(), 1);
    }
}
