//! Counting of DMU structure accesses.
//!
//! TDM operations require multiple accesses to the DMU's SRAM structures
//! (Section III-C); a list spread over several list-array entries needs one
//! access per entry, an `add_dependence` with an output direction touches the
//! successor list of every reader, and so on. The simulator models this by
//! counting accesses per structure during each operation and converting the
//! total into cycles with the configured per-access latency (Figure 9 sweeps
//! that latency from 1 to 16 cycles).

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

/// The DMU hardware structures that can be accessed by an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmuStructure {
    /// Task Alias Table.
    Tat,
    /// Dependence Alias Table.
    Dat,
    /// Task Table.
    TaskTable,
    /// Dependence Table.
    DependenceTable,
    /// Successor List Array.
    SuccessorLa,
    /// Dependence List Array.
    DependenceLa,
    /// Reader List Array.
    ReaderLa,
    /// Ready Queue.
    ReadyQueue,
}

impl DmuStructure {
    /// All structures, in a stable reporting order.
    pub const ALL: [DmuStructure; 8] = [
        DmuStructure::Tat,
        DmuStructure::Dat,
        DmuStructure::TaskTable,
        DmuStructure::DependenceTable,
        DmuStructure::SuccessorLa,
        DmuStructure::DependenceLa,
        DmuStructure::ReaderLa,
        DmuStructure::ReadyQueue,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DmuStructure::Tat => "TAT",
            DmuStructure::Dat => "DAT",
            DmuStructure::TaskTable => "Task Table",
            DmuStructure::DependenceTable => "Dependence Table",
            DmuStructure::SuccessorLa => "SLA",
            DmuStructure::DependenceLa => "DLA",
            DmuStructure::ReaderLa => "RLA",
            DmuStructure::ReadyQueue => "ReadyQ",
        }
    }
}

impl fmt::Display for DmuStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of accesses made to each DMU structure by one operation (or
/// accumulated over many operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounter {
    counts: [u64; 8],
}

impl AccessCounter {
    /// A counter with zero accesses everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(structure: DmuStructure) -> usize {
        DmuStructure::ALL
            .iter()
            .position(|&s| s == structure)
            .expect("structure is in ALL")
    }

    /// Records `n` accesses to `structure`.
    pub fn record(&mut self, structure: DmuStructure, n: u64) {
        self.counts[Self::slot(structure)] += n;
    }

    /// Records a single access to `structure`.
    pub fn touch(&mut self, structure: DmuStructure) {
        self.record(structure, 1);
    }

    /// Number of accesses made to `structure`.
    pub fn get(&self, structure: DmuStructure) -> u64 {
        self.counts[Self::slot(structure)]
    }

    /// Total accesses across all structures.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Serializes the accesses into a cycle count, assuming every access
    /// takes `latency` cycles and accesses are not overlapped (the DMU
    /// processes instructions sequentially, Section III-D).
    pub fn cost(&self, latency: Cycle) -> Cycle {
        latency.scaled(self.total())
    }

    /// True if no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl Add for AccessCounter {
    type Output = AccessCounter;

    fn add(self, rhs: AccessCounter) -> AccessCounter {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for AccessCounter {
    fn add_assign(&mut self, rhs: AccessCounter) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for AccessCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in DmuStructure::ALL {
            let n = self.get(s);
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", s.name(), n)?;
                first = false;
            }
        }
        if first {
            write!(f, "no accesses")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get_per_structure() {
        let mut c = AccessCounter::new();
        c.touch(DmuStructure::Tat);
        c.record(DmuStructure::SuccessorLa, 3);
        assert_eq!(c.get(DmuStructure::Tat), 1);
        assert_eq!(c.get(DmuStructure::SuccessorLa), 3);
        assert_eq!(c.get(DmuStructure::Dat), 0);
        assert_eq!(c.total(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn cost_is_total_times_latency() {
        let mut c = AccessCounter::new();
        c.record(DmuStructure::TaskTable, 2);
        c.record(DmuStructure::ReadyQueue, 1);
        assert_eq!(c.cost(Cycle::new(1)), Cycle::new(3));
        assert_eq!(c.cost(Cycle::new(16)), Cycle::new(48));
    }

    #[test]
    fn counters_add_componentwise() {
        let mut a = AccessCounter::new();
        a.touch(DmuStructure::Dat);
        let mut b = AccessCounter::new();
        b.record(DmuStructure::Dat, 2);
        b.touch(DmuStructure::ReaderLa);
        let sum = a + b;
        assert_eq!(sum.get(DmuStructure::Dat), 3);
        assert_eq!(sum.get(DmuStructure::ReaderLa), 1);
        assert_eq!(sum.total(), 4);
    }

    #[test]
    fn empty_counter_reports_empty() {
        let c = AccessCounter::new();
        assert!(c.is_empty());
        assert_eq!(c.cost(Cycle::new(16)), Cycle::ZERO);
        assert_eq!(c.to_string(), "no accesses");
    }

    #[test]
    fn display_lists_nonzero_structures() {
        let mut c = AccessCounter::new();
        c.touch(DmuStructure::Tat);
        c.record(DmuStructure::SuccessorLa, 2);
        let s = c.to_string();
        assert!(s.contains("TAT: 1"));
        assert!(s.contains("SLA: 2"));
        assert!(!s.contains("DAT"));
    }

    #[test]
    fn structure_names_are_unique() {
        let mut names: Vec<_> = DmuStructure::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DmuStructure::ALL.len());
    }
}
