//! Task and Dependence Alias Tables (TAT / DAT).
//!
//! The alias tables rename 64-bit runtime addresses (task descriptor
//! addresses and dependence addresses) into small internal IDs (Section
//! III-B1, Figure 4). Each table is a set-associative directory plus a queue
//! of free IDs: the set is chosen from the address bits, a free way in that
//! set holds the (address → ID) mapping, and the ID indexes the direct-mapped
//! Task or Dependence Table.
//!
//! Two kinds of allocation failure exist and both stall the TDM instruction
//! until in-flight tasks finish:
//!
//! * **conflict** — the selected set has no free way even though other sets
//!   do (the problem the dynamic index-bit selection of Section III-B1 and
//!   Figure 11 addresses), and
//! * **exhaustion** — every entry of the table is in use.
//!
//! The table also records occupancy samples so the `fig11_dat_occupancy`
//! harness can reproduce the occupied-set statistics of Figure 11.

use serde::{Deserialize, Serialize};

use crate::config::IndexPolicy;

/// Why an alias-table allocation could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AliasError {
    /// The set selected by the address's index bits has no free way.
    SetConflict,
    /// The whole table is full (no free IDs).
    Exhausted,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AliasError::SetConflict => write!(f, "alias table set conflict"),
            AliasError::Exhausted => write!(f, "alias table exhausted"),
        }
    }
}

impl std::error::Error for AliasError {}

/// Occupancy statistics gathered by an alias table.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AliasOccupancy {
    /// Sum of "number of occupied sets" over all samples.
    occupied_set_samples_sum: u64,
    /// Number of samples taken.
    samples: u64,
    /// Peak number of simultaneously valid entries.
    pub peak_entries: usize,
    /// Number of allocations that failed with a set conflict.
    pub set_conflicts: u64,
    /// Number of allocations that failed because the table was exhausted.
    pub exhaustions: u64,
}

impl AliasOccupancy {
    /// Average number of occupied sets over all samples (0 if no samples).
    pub fn average_occupied_sets(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupied_set_samples_sum as f64 / self.samples as f64
        }
    }
}

/// A set-associative alias table mapping 64-bit addresses to internal IDs.
///
/// Storage is struct-of-arrays: the `(addr, id)` ways of all sets live in two
/// parallel columns (`addrs` is the key column, `ids` the metadata column),
/// with set `s` owning the fixed-width row `[s * ways, s * ways + set_lens[s])`.
/// A probe is therefore a cache-linear tag scan over a contiguous `u64` run —
/// a shape LLVM can autovectorize — instead of walking a per-set `Vec` of
/// way structs; the scalar fallback is the same loop. Lookup/insert/remove
/// semantics (free-ID order, swap-remove eviction, occupancy sampling) are
/// unchanged from the node layout.
///
/// # Example
///
/// ```
/// use tdm_core::alias::AliasTable;
/// use tdm_core::config::IndexPolicy;
///
/// let mut tat = AliasTable::new(16, 4, IndexPolicy::Static { low_bit: 6 });
/// let id = tat.insert(0x1000, 64).unwrap();
/// assert_eq!(tat.lookup(0x1000, 64), Some(id));
/// assert_eq!(tat.remove(0x1000, 64), Some(id));
/// assert_eq!(tat.lookup(0x1000, 64), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AliasTable {
    /// Key column: the address of each valid way, `num_sets * ways` slots.
    addrs: Vec<u64>,
    /// Metadata column parallel to `addrs`: the internal ID of each way.
    ids: Vec<u32>,
    /// Number of valid ways in each set.
    set_lens: Vec<u32>,
    ways: usize,
    free_ids: Vec<u32>,
    policy: IndexPolicy,
    occupancy: AliasOccupancy,
    valid_entries: usize,
    /// Incrementally maintained count of sets with at least one valid way;
    /// replaces the O(num_sets) scan the occupancy sampling used to do on
    /// every insert.
    occupied: usize,
}

impl AliasTable {
    /// Creates an alias table with `entries` total entries organised as
    /// `entries / ways` sets of `ways` ways, using `policy` to select index
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ways` is zero, or if `ways` does not divide
    /// `entries`.
    pub fn new(entries: usize, ways: usize, policy: IndexPolicy) -> Self {
        assert!(entries > 0, "alias table needs at least one entry");
        assert!(ways > 0, "alias table needs at least one way");
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must be a multiple of ways ({ways})"
        );
        let num_sets = entries / ways;
        AliasTable {
            addrs: vec![0; entries],
            ids: vec![0; entries],
            set_lens: vec![0; num_sets],
            ways,
            free_ids: (0..entries as u32).rev().collect(),
            policy,
            occupancy: AliasOccupancy::default(),
            valid_entries: 0,
            occupied: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.set_lens.len() * self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.set_lens.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.valid_entries
    }

    /// True if the table holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.valid_entries == 0
    }

    /// Number of sets that currently hold at least one valid entry.
    pub fn occupied_sets(&self) -> usize {
        debug_assert_eq!(
            self.occupied,
            self.set_lens.iter().filter(|&&l| l > 0).count(),
            "incremental occupied-set counter out of sync with a full scan"
        );
        self.occupied
    }

    /// Occupancy statistics collected so far.
    pub fn occupancy(&self) -> AliasOccupancy {
        self.occupancy
    }

    /// The index-bit-selection policy in use.
    pub fn policy(&self) -> IndexPolicy {
        self.policy
    }

    /// Computes the set index for an address. `size` is the size in bytes of
    /// the object starting at `addr`; under [`IndexPolicy::Dynamic`] the
    /// index field starts at bit `log2(size)` so that consecutive blocks of
    /// the same array map to different sets (Section III-B1).
    pub fn set_index(&self, addr: u64, size: u64) -> usize {
        let shift = match self.policy {
            IndexPolicy::Static { low_bit } => low_bit,
            IndexPolicy::Dynamic => {
                if size <= 1 {
                    0
                } else {
                    63 - size.next_power_of_two().leading_zeros()
                }
            }
        };
        let shifted = addr >> shift.min(63);
        (shifted as usize) % self.set_lens.len()
    }

    /// Looks up the ID bound to `addr`, if any.
    pub fn lookup(&self, addr: u64, size: u64) -> Option<u32> {
        let set = self.set_index(addr, size);
        let base = set * self.ways;
        let len = self.set_lens[set] as usize;
        // Tag scan over the contiguous key column of the set's row.
        self.addrs[base..base + len]
            .iter()
            .position(|&a| a == addr)
            .map(|pos| self.ids[base + pos])
    }

    /// Inserts a new mapping for `addr`, returning the freshly allocated ID.
    ///
    /// # Errors
    ///
    /// * [`AliasError::SetConflict`] if the selected set has no free way.
    /// * [`AliasError::Exhausted`] if no free ID exists.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `addr` is already present; the DMU always
    /// checks with [`AliasTable::lookup`] first.
    pub fn insert(&mut self, addr: u64, size: u64) -> Result<u32, AliasError> {
        let set = self.set_index(addr, size);
        let base = set * self.ways;
        let len = self.set_lens[set] as usize;
        debug_assert!(
            !self.addrs[base..base + len].contains(&addr),
            "address {addr:#x} inserted twice"
        );
        if len >= self.ways {
            self.occupancy.set_conflicts += 1;
            return Err(AliasError::SetConflict);
        }
        let Some(id) = self.free_ids.pop() else {
            self.occupancy.exhaustions += 1;
            return Err(AliasError::Exhausted);
        };
        self.addrs[base + len] = addr;
        self.ids[base + len] = id;
        self.set_lens[set] += 1;
        if len == 0 {
            self.occupied += 1;
        }
        self.valid_entries += 1;
        self.occupancy.peak_entries = self.occupancy.peak_entries.max(self.valid_entries);
        self.occupancy.samples += 1;
        self.occupancy.occupied_set_samples_sum += self.occupied as u64;
        Ok(id)
    }

    /// Removes the mapping for `addr`, returning its ID to the free queue.
    ///
    /// Returns `None` if `addr` was not present.
    pub fn remove(&mut self, addr: u64, size: u64) -> Option<u32> {
        let set = self.set_index(addr, size);
        let base = set * self.ways;
        let len = self.set_lens[set] as usize;
        let pos = self.addrs[base..base + len]
            .iter()
            .position(|&a| a == addr)?;
        let id = self.ids[base + pos];
        // Swap-remove within the set's row, same eviction order as before.
        self.addrs[base + pos] = self.addrs[base + len - 1];
        self.ids[base + pos] = self.ids[base + len - 1];
        self.set_lens[set] -= 1;
        if len == 1 {
            self.occupied -= 1;
        }
        self.free_ids.push(id);
        self.valid_entries -= 1;
        Some(id)
    }

    /// Removes every mapping (used between parallel regions in tests).
    pub fn clear(&mut self) {
        let capacity = self.capacity();
        self.set_lens.fill(0);
        self.free_ids = (0..capacity as u32).rev().collect();
        self.valid_entries = 0;
        self.occupied = 0;
    }
}

// Snapshot support. Everything is persisted verbatim — including the free-ID
// queue *in order*, because IDs are popped from its back and a resumed run
// must hand out the same IDs the straight-through run would have.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for AliasOccupancy {
    fn save(&self, out: &mut Vec<u8>) {
        self.occupied_set_samples_sum.save(out);
        self.samples.save(out);
        self.peak_entries.save(out);
        self.set_conflicts.save(out);
        self.exhaustions.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(AliasOccupancy {
            occupied_set_samples_sum: u64::load(r)?,
            samples: u64::load(r)?,
            peak_entries: usize::load(r)?,
            set_conflicts: u64::load(r)?,
            exhaustions: u64::load(r)?,
        })
    }
}

impl Persist for AliasTable {
    fn save(&self, out: &mut Vec<u8>) {
        self.addrs.save(out);
        self.ids.save(out);
        self.set_lens.save(out);
        self.ways.save(out);
        self.free_ids.save(out);
        self.policy.save(out);
        self.occupancy.save(out);
        self.valid_entries.save(out);
        self.occupied.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let table = AliasTable {
            addrs: Vec::load(r)?,
            ids: Vec::load(r)?,
            set_lens: Vec::load(r)?,
            ways: usize::load(r)?,
            free_ids: Vec::load(r)?,
            policy: crate::config::IndexPolicy::load(r)?,
            occupancy: AliasOccupancy::load(r)?,
            valid_entries: usize::load(r)?,
            occupied: usize::load(r)?,
        };
        let entries = table.addrs.len();
        if table.ways == 0
            || table.ids.len() != entries
            || table.set_lens.len() * table.ways != entries
            || table.free_ids.len() != entries - table.valid_entries
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "alias table geometry is inconsistent ({} addrs, {} ids, {} sets × {} \
                     ways, {} free of {} valid)",
                    entries,
                    table.ids.len(),
                    table.set_lens.len(),
                    table.ways,
                    table.free_ids.len(),
                    table.valid_entries
                ),
            });
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: usize, ways: usize) -> AliasTable {
        AliasTable::new(entries, ways, IndexPolicy::Static { low_bit: 0 })
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = table(16, 4);
        let id = t.insert(0xABC0, 64).unwrap();
        assert_eq!(t.lookup(0xABC0, 64), Some(id));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(0xABC0, 64), Some(id));
        assert_eq!(t.lookup(0xABC0, 64), None);
        assert!(t.is_empty());
    }

    #[test]
    fn ids_are_unique_while_live() {
        let mut t = table(64, 8);
        let mut ids = Vec::new();
        for i in 0..64u64 {
            ids.push(t.insert(i, 64).unwrap());
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut t = table(4, 4);
        let a = t.insert(0x10, 1).unwrap();
        t.remove(0x10, 1).unwrap();
        let b = t.insert(0x20, 1).unwrap();
        // The freed ID must be available again (not necessarily equal, but
        // the table must not run out).
        let _ = (a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_conflict_when_low_bits_collide() {
        // 4 sets, 2 ways, static indexing at bit 0: addresses that are equal
        // modulo 4 land in the same set.
        let mut t = AliasTable::new(8, 2, IndexPolicy::Static { low_bit: 0 });
        t.insert(0, 1).unwrap();
        t.insert(4, 1).unwrap();
        // Third address mapping to set 0 conflicts even though the table is
        // mostly empty.
        assert_eq!(t.insert(8, 1), Err(AliasError::SetConflict));
        assert_eq!(t.occupancy().set_conflicts, 1);
    }

    #[test]
    fn dynamic_policy_spreads_same_array_blocks() {
        // Blocks of 4 KB: with static bit-0 indexing every block of the same
        // array shares the low 12 bits and maps to set 0; with dynamic
        // indexing the index starts at bit 12 and blocks spread across sets.
        let blocks: Vec<u64> = (0..64).map(|i| 0x10_0000 + i * 4096).collect();

        let mut static_table = AliasTable::new(256, 8, IndexPolicy::Static { low_bit: 0 });
        let mut dynamic_table = AliasTable::new(256, 8, IndexPolicy::Dynamic);
        let mut static_conflicts = 0;
        for &b in &blocks {
            if static_table.insert(b, 4096).is_err() {
                static_conflicts += 1;
            }
            dynamic_table.insert(b, 4096).unwrap();
        }
        assert!(static_conflicts > 0, "static indexing should conflict");
        assert!(dynamic_table.occupied_sets() > static_table.occupied_sets());
    }

    #[test]
    fn exhaustion_reported_when_all_entries_used() {
        let mut t = AliasTable::new(4, 4, IndexPolicy::Static { low_bit: 0 });
        for i in 0..4u64 {
            t.insert(i, 1).unwrap();
        }
        // The set (there is only one set of 4 ways... actually 1 set) is full,
        // so this reports a conflict-or-exhaustion; either way it fails.
        assert!(t.insert(100, 1).is_err());
    }

    #[test]
    fn occupied_sets_counts_nonempty_sets() {
        let mut t = AliasTable::new(16, 2, IndexPolicy::Static { low_bit: 0 });
        assert_eq!(t.occupied_sets(), 0);
        t.insert(0, 1).unwrap(); // set 0
        t.insert(1, 1).unwrap(); // set 1
        t.insert(8, 1).unwrap(); // set 0 again
        assert_eq!(t.occupied_sets(), 2);
    }

    #[test]
    fn occupancy_average_tracks_samples() {
        let mut t = AliasTable::new(16, 2, IndexPolicy::Static { low_bit: 0 });
        t.insert(0, 1).unwrap();
        t.insert(1, 1).unwrap();
        let avg = t.occupancy().average_occupied_sets();
        // First sample saw 1 occupied set, second saw 2 → average 1.5.
        assert!((avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn set_index_respects_static_low_bit() {
        let t = AliasTable::new(16, 2, IndexPolicy::Static { low_bit: 4 });
        assert_eq!(t.set_index(0x00, 1), 0);
        assert_eq!(t.set_index(0x10, 1), 1);
        assert_eq!(t.set_index(0x80, 1), 0); // 8 sets, wraps
    }

    #[test]
    fn set_index_dynamic_uses_size() {
        let t = AliasTable::new(16, 2, IndexPolicy::Dynamic);
        // size 4096 -> shift 12.
        assert_eq!(t.set_index(4096, 4096), 1 % t.num_sets());
        assert_eq!(t.set_index(8192, 4096), 2 % t.num_sets());
        // size 1 -> shift 0.
        assert_eq!(t.set_index(5, 1), 5 % t.num_sets());
    }

    #[test]
    fn clear_resets_table() {
        let mut t = table(8, 2);
        t.insert(1, 1).unwrap();
        t.insert(2, 1).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.occupied_sets(), 0);
        // All IDs are available again.
        for i in 0..8u64 {
            t.insert(i, 1).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn non_divisible_geometry_panics() {
        let _ = AliasTable::new(10, 4, IndexPolicy::Dynamic);
    }

    /// Section III-B1: with dynamic index-bit selection, consecutive 4 KB
    /// blocks of one array fill the table to its full capacity without a
    /// single conflict, while static low-bit indexing conflicts after `ways`
    /// insertions because every block shares its low 12 bits.
    #[test]
    fn dynamic_indexing_fills_table_to_capacity_on_block_pattern() {
        let entries = 2048;
        let ways = 8;
        let blocks: Vec<u64> = (0..entries as u64).map(|i| 0x10_0000 + i * 4096).collect();

        let mut dynamic = AliasTable::new(entries, ways, IndexPolicy::Dynamic);
        for &b in &blocks {
            dynamic.insert(b, 4096).unwrap();
        }
        assert_eq!(dynamic.len(), entries);
        assert_eq!(dynamic.occupancy().set_conflicts, 0);

        let mut static_tbl = AliasTable::new(entries, ways, IndexPolicy::Static { low_bit: 0 });
        for &b in &blocks[..ways] {
            static_tbl.insert(b, 4096).unwrap();
        }
        assert_eq!(
            static_tbl.insert(blocks[ways], 4096),
            Err(AliasError::SetConflict)
        );
    }

    /// Renaming churn: a window of live blocks slides across a large address
    /// range, so every insertion reuses an ID freed by an earlier removal.
    /// Live IDs must stay unique and within capacity throughout.
    #[test]
    fn renaming_recycles_ids_under_sliding_window_churn() {
        use std::collections::HashMap;
        let entries = 64;
        let mut t = AliasTable::new(entries, 8, IndexPolicy::Dynamic);
        let mut live: HashMap<u64, u32> = HashMap::new();
        let window = entries as u64; // table exactly full at steady state
        for i in 0..1000u64 {
            let addr = 0x40_0000 + i * 4096;
            if i >= window {
                let old = 0x40_0000 + (i - window) * 4096;
                let id = t.remove(old, 4096).expect("window entry must be present");
                assert_eq!(live.remove(&old), Some(id));
            }
            let id = t.insert(addr, 4096).expect("freed ID must be reusable");
            assert!((id as usize) < entries, "ID {id} out of range");
            assert!(
                !live.values().any(|&v| v == id),
                "ID {id} double-allocated at step {i}"
            );
            live.insert(addr, id);
        }
        assert_eq!(t.len(), entries);
        assert_eq!(t.occupancy().exhaustions, 0);
    }

    /// A conflicting insert stalls, but removing any entry of the victim set
    /// lets the retried insert succeed — the DMU's stall-and-retry protocol.
    #[test]
    fn conflict_resolves_after_eviction_from_victim_set() {
        let mut t = AliasTable::new(8, 2, IndexPolicy::Static { low_bit: 0 });
        // Set 0 (addresses ≡ 0 mod 4) fills up with two ways.
        t.insert(0, 1).unwrap();
        t.insert(4, 1).unwrap();
        assert_eq!(t.insert(8, 1), Err(AliasError::SetConflict));
        t.remove(4, 1).unwrap();
        let id = t.insert(8, 1).expect("eviction must clear the conflict");
        assert_eq!(t.lookup(8, 1), Some(id));
    }

    /// Dynamic index-bit selection rounds odd sizes up to the next power of
    /// two, so a 3000-byte dependence shifts by 12 bits like a 4096-byte one.
    #[test]
    fn dynamic_index_rounds_size_to_next_power_of_two() {
        let t = AliasTable::new(16, 2, IndexPolicy::Dynamic);
        assert_eq!(t.set_index(0x5000, 3000), t.set_index(0x5000, 4096));
        assert_ne!(t.set_index(0x5000, 4096), t.set_index(0x6000, 4096));
    }
}
