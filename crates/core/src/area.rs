//! Storage requirements of the DMU (Table III).
//!
//! Table III of the paper reports the storage (KB) and area (mm²) of every
//! DMU structure for the selected configuration, totalling 105.25 KB and
//! 0.17 mm² at 22 nm. The storage figures follow directly from the structure
//! geometry and the internal ID widths (the whole point of the alias-table
//! renaming is that list arrays store 11-bit IDs instead of 64-bit
//! addresses); this module reproduces that arithmetic. Converting KB to mm²
//! is an energy/technology question and lives in `tdm-energy`.

use serde::Serialize;

use crate::config::DmuConfig;

/// Address bits stored per alias-table tag. The paper's TAT/DAT storage
/// (18.75 KB for 2048 entries) corresponds to a full 64-bit tag plus the
/// 11-bit internal ID.
const ALIAS_TAG_BITS: u64 = 64;

/// Descriptor-address bits stored in a Task Table entry. The paper's 23 KB
/// Task Table corresponds to ~92 bits per entry; a 48-bit canonical virtual
/// address for the descriptor plus two counters and two list pointers lands
/// on the same figure (see `DESIGN.md`).
const TASK_DESC_ADDR_BITS: u64 = 48;

/// Extra valid/control bits per Task Table entry.
const TASK_CONTROL_BITS: u64 = 2;

/// Storage of one DMU structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StructureStorage {
    /// Structure name as used in Table III.
    pub name: &'static str,
    /// Number of entries.
    pub entries: usize,
    /// Bits per entry.
    pub bits_per_entry: u64,
}

impl StructureStorage {
    /// Total storage in bits.
    pub fn bits(&self) -> u64 {
        self.entries as u64 * self.bits_per_entry
    }

    /// Total storage in kilobytes (KiB).
    pub fn kilobytes(&self) -> f64 {
        self.bits() as f64 / 8.0 / 1024.0
    }
}

/// Storage report for the whole DMU, mirroring Table III's rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DmuStorageReport {
    /// Per-structure storage, in Table III order.
    pub structures: Vec<StructureStorage>,
}

impl DmuStorageReport {
    /// Computes the storage of every DMU structure for `config`.
    pub fn for_config(config: &DmuConfig) -> Self {
        let task_id_bits = u64::from(config.task_id_bits());
        let dep_id_bits = u64::from(config.dep_id_bits());
        let sla_ptr_bits = u64::from(config.list_ptr_bits(config.successor_la_entries));
        let dla_ptr_bits = u64::from(config.list_ptr_bits(config.dependence_la_entries));
        let rla_ptr_bits = u64::from(config.list_ptr_bits(config.reader_la_entries));
        let elems = config.elems_per_list_entry as u64;

        let structures = vec![
            StructureStorage {
                name: "Task Table",
                entries: config.task_table_entries(),
                // descriptor address + #pred + #succ + successor list ptr +
                // dependence list ptr + control bits.
                bits_per_entry: TASK_DESC_ADDR_BITS
                    + task_id_bits * 2
                    + sla_ptr_bits
                    + dla_ptr_bits
                    + TASK_CONTROL_BITS,
            },
            StructureStorage {
                name: "Dep Table",
                entries: config.dependence_table_entries(),
                // last-writer task ID + reader list pointer (invalid writer is
                // encoded as an all-ones ID).
                bits_per_entry: task_id_bits + rla_ptr_bits,
            },
            StructureStorage {
                name: "TAT",
                entries: config.tat_entries,
                bits_per_entry: ALIAS_TAG_BITS + task_id_bits,
            },
            StructureStorage {
                name: "DAT",
                entries: config.dat_entries,
                bits_per_entry: ALIAS_TAG_BITS + dep_id_bits,
            },
            StructureStorage {
                name: "SLA",
                entries: config.successor_la_entries,
                bits_per_entry: elems * task_id_bits + sla_ptr_bits,
            },
            StructureStorage {
                name: "DLA",
                entries: config.dependence_la_entries,
                bits_per_entry: elems * dep_id_bits + dla_ptr_bits,
            },
            StructureStorage {
                name: "RLA",
                entries: config.reader_la_entries,
                bits_per_entry: elems * task_id_bits + rla_ptr_bits,
            },
            StructureStorage {
                name: "ReadyQ",
                entries: config.ready_queue_entries,
                bits_per_entry: task_id_bits,
            },
        ];
        DmuStorageReport { structures }
    }

    /// Total storage across all structures, in kilobytes.
    pub fn total_kilobytes(&self) -> f64 {
        self.structures.iter().map(|s| s.kilobytes()).sum()
    }

    /// Storage of the structure named `name`, in kilobytes, if present.
    pub fn kilobytes_of(&self, name: &str) -> Option<f64> {
        self.structures
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.kilobytes())
    }
}

/// Storage of the Task Superscalar hardware for an equivalent number of
/// in-flight tasks and dependences (Section VI-C): a 1 KB gateway plus
/// 128-byte-entry TRS, ORT and Ready Queue structures. Used by the
/// `fig13_comparison` and `table03_area` harnesses.
pub fn task_superscalar_kilobytes(in_flight_entries: usize) -> f64 {
    let gateway_kb = 1.0;
    let entry_bytes = 128.0;
    let per_structure_kb = in_flight_entries as f64 * entry_bytes / 1024.0;
    gateway_kb + 3.0 * per_structure_kb
}

/// Storage of Carbon's distributed hardware queues for `num_cores` cores.
/// Carbon keeps per-core task queues of 64-byte task entries; the paper does
/// not give a figure, so this uses the configuration from the Carbon paper
/// (256 entries per local queue).
pub fn carbon_kilobytes(num_cores: usize) -> f64 {
    let entries_per_queue = 256.0;
    let entry_bytes = 64.0;
    num_cores as f64 * entries_per_queue * entry_bytes / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_config_storage_is_close_to_table_iii() {
        let report = DmuStorageReport::for_config(&DmuConfig::default());
        // Paper: Task Table 23.00, Dep Table 5.25, TAT 18.75, DAT 18.75,
        // SLA/DLA/RLA 12.25 each, ReadyQ 2.75, total 105.25 KB. Our widths
        // reproduce these within a small tolerance (see DESIGN.md).
        let expect = [
            ("Task Table", 23.00),
            ("Dep Table", 5.25),
            ("TAT", 18.75),
            ("DAT", 18.75),
            ("SLA", 12.25),
            ("DLA", 12.25),
            ("RLA", 12.25),
            ("ReadyQ", 2.75),
        ];
        for (name, kb) in expect {
            let got = report.kilobytes_of(name).unwrap();
            assert!(
                (got - kb).abs() / kb < 0.10,
                "{name}: expected ≈{kb} KB, computed {got:.2} KB"
            );
        }
        let total = report.total_kilobytes();
        assert!(
            (total - 105.25).abs() / 105.25 < 0.10,
            "total expected ≈105.25 KB, computed {total:.2} KB"
        );
    }

    #[test]
    fn alias_tables_match_exactly() {
        let report = DmuStorageReport::for_config(&DmuConfig::default());
        // 2048 entries × (64 + 11) bits = 18.75 KB exactly.
        assert!((report.kilobytes_of("TAT").unwrap() - 18.75).abs() < 1e-9);
        assert!((report.kilobytes_of("DAT").unwrap() - 18.75).abs() < 1e-9);
        // List arrays: 1024 × (8×11 + 10) bits = 12.25 KB exactly.
        assert!((report.kilobytes_of("SLA").unwrap() - 12.25).abs() < 1e-9);
        // Ready queue: 2048 × 11 bits = 2.75 KB exactly.
        assert!((report.kilobytes_of("ReadyQ").unwrap() - 2.75).abs() < 1e-9);
        // Dependence table: 2048 × 21 bits = 5.25 KB exactly.
        assert!((report.kilobytes_of("Dep Table").unwrap() - 5.25).abs() < 1e-9);
    }

    #[test]
    fn storage_scales_with_entries() {
        let small = DmuStorageReport::for_config(&DmuConfig::default().with_alias_sizes(512, 512));
        let large =
            DmuStorageReport::for_config(&DmuConfig::default().with_alias_sizes(4096, 4096));
        assert!(small.total_kilobytes() < large.total_kilobytes());
        // Alias storage is proportional to entry count (ID width changes only
        // slightly).
        assert!(small.kilobytes_of("TAT").unwrap() < large.kilobytes_of("TAT").unwrap() / 4.0);
    }

    #[test]
    fn task_superscalar_matches_paper_figure() {
        // Paper: 769 KB for 2048 in-flight entries.
        let kb = task_superscalar_kilobytes(2048);
        assert!((kb - 769.0).abs() < 1.0, "computed {kb}");
        // And the DMU/TSS ratio is about 7.3×.
        let dmu = DmuStorageReport::for_config(&DmuConfig::default()).total_kilobytes();
        let ratio = kb / dmu;
        assert!(
            (ratio - 7.3).abs() < 0.5,
            "area ratio expected ≈7.3, computed {ratio:.2}"
        );
    }

    #[test]
    fn carbon_storage_is_modest() {
        let kb = carbon_kilobytes(32);
        assert!(kb > 0.0);
        // Carbon's queues for 32 cores exceed the DMU but stay far below TSS.
        assert!(kb < task_superscalar_kilobytes(2048));
    }

    #[test]
    fn structure_storage_arithmetic() {
        let s = StructureStorage {
            name: "test",
            entries: 1024,
            bits_per_entry: 8,
        };
        assert_eq!(s.bits(), 8192);
        assert!((s.kilobytes() - 1.0).abs() < 1e-12);
    }
}
