//! Configuration of the DMU hardware structures.
//!
//! Table I of the paper fixes the structure sizes used throughout the
//! evaluation (2048-entry TAT/DAT/Task Table/Dependence Table, 1024-entry
//! list arrays with 8 elements per entry, 1-cycle access time). Section V
//! sweeps these parameters; the same sweeps are reproduced by the
//! `fig07_tat_dat`, `fig08_list_arrays` and `fig09_latency` harnesses, which
//! simply construct different [`DmuConfig`] values.

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

/// How the DAT chooses which address bits form the set index
/// (Section III-B1 and Figure 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexPolicy {
    /// The set index starts at a fixed bit position of the dependence
    /// address. Low positions collide badly when tasks access consecutive
    /// blocks of the same array (the low `log2(block size)` bits are equal).
    Static {
        /// Bit position at which the index field starts.
        low_bit: u32,
    },
    /// The set index starts at bit `log2(dependence size)`: the DMU uses the
    /// size provided by the runtime in `add_dependence` to skip exactly the
    /// bits that are constant across blocks of the same array. This is the
    /// paper's proposal.
    #[default]
    Dynamic,
}

/// Geometry and timing of every DMU hardware structure.
///
/// # Example
///
/// ```
/// use tdm_core::config::DmuConfig;
///
/// let dmu = DmuConfig::default();
/// assert_eq!(dmu.tat_entries, 2048);
/// assert_eq!(dmu.successor_la_entries, 1024);
/// assert_eq!(dmu.elems_per_list_entry, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmuConfig {
    /// Entries in the Task Alias Table (task descriptor address → task ID).
    pub tat_entries: usize,
    /// TAT associativity (ways per set).
    pub tat_ways: usize,
    /// Entries in the Dependence Alias Table (dependence address → dep ID).
    pub dat_entries: usize,
    /// DAT associativity (ways per set).
    pub dat_ways: usize,
    /// Entries in the Successor List Array.
    pub successor_la_entries: usize,
    /// Entries in the Dependence List Array.
    pub dependence_la_entries: usize,
    /// Entries in the Reader List Array.
    pub reader_la_entries: usize,
    /// Elements stored per list-array entry (8 in the paper).
    pub elems_per_list_entry: usize,
    /// Capacity of the Ready Queue, in task IDs.
    pub ready_queue_entries: usize,
    /// Access latency of every DMU structure (1 cycle in the selected
    /// design; Figure 9 sweeps 1/4/16).
    pub access_latency: Cycle,
    /// DAT index-bit selection policy.
    pub index_policy: IndexPolicy,
}

impl Default for DmuConfig {
    /// The configuration selected by the design-space exploration
    /// (Section V-C): 2048-entry TAT/DAT, 1024-entry list arrays, 1-cycle
    /// accesses, dynamic index-bit selection.
    fn default() -> Self {
        DmuConfig {
            tat_entries: 2048,
            tat_ways: 8,
            dat_entries: 2048,
            dat_ways: 8,
            successor_la_entries: 1024,
            dependence_la_entries: 1024,
            reader_la_entries: 1024,
            elems_per_list_entry: 8,
            ready_queue_entries: 2048,
            access_latency: Cycle::new(1),
            index_policy: IndexPolicy::Dynamic,
        }
    }
}

impl DmuConfig {
    /// The Task Table has one entry per TAT entry (the TAT size determines
    /// the number of in-flight tasks, Section V-A).
    pub fn task_table_entries(&self) -> usize {
        self.tat_entries
    }

    /// The Dependence Table has one entry per DAT entry.
    pub fn dependence_table_entries(&self) -> usize {
        self.dat_entries
    }

    /// An effectively unbounded configuration used as the "ideal DMU with
    /// unlimited entries and equal latency" baseline of Figures 7–9.
    pub fn ideal() -> Self {
        DmuConfig {
            tat_entries: 1 << 20,
            tat_ways: 16,
            dat_entries: 1 << 20,
            dat_ways: 16,
            successor_la_entries: 1 << 20,
            dependence_la_entries: 1 << 20,
            reader_la_entries: 1 << 20,
            elems_per_list_entry: 8,
            ready_queue_entries: 1 << 20,
            access_latency: Cycle::new(1),
            index_policy: IndexPolicy::Dynamic,
        }
    }

    /// Returns a copy with different TAT/DAT sizes (Figure 7 sweep).
    pub fn with_alias_sizes(&self, tat_entries: usize, dat_entries: usize) -> Self {
        DmuConfig {
            tat_entries,
            dat_entries,
            ..self.clone()
        }
    }

    /// Returns a copy with different list-array sizes (Figure 8 sweep).
    pub fn with_list_array_sizes(
        &self,
        successor: usize,
        dependence: usize,
        reader: usize,
    ) -> Self {
        DmuConfig {
            successor_la_entries: successor,
            dependence_la_entries: dependence,
            reader_la_entries: reader,
            ..self.clone()
        }
    }

    /// Returns a copy with a different structure access latency (Figure 9
    /// sweep).
    pub fn with_access_latency(&self, latency: Cycle) -> Self {
        DmuConfig {
            access_latency: latency,
            ..self.clone()
        }
    }

    /// Returns a copy with a different DAT index-bit-selection policy
    /// (Figure 11 sweep).
    pub fn with_index_policy(&self, policy: IndexPolicy) -> Self {
        DmuConfig {
            index_policy: policy,
            ..self.clone()
        }
    }

    /// Number of bits needed to name a task ID with this geometry.
    pub fn task_id_bits(&self) -> u32 {
        (self.task_table_entries() as u64)
            .next_power_of_two()
            .trailing_zeros()
            .max(1)
    }

    /// Number of bits needed to name a dependence ID with this geometry.
    pub fn dep_id_bits(&self) -> u32 {
        (self.dependence_table_entries() as u64)
            .next_power_of_two()
            .trailing_zeros()
            .max(1)
    }

    /// Number of bits needed to name a list-array entry.
    pub fn list_ptr_bits(&self, entries: usize) -> u32 {
        (entries as u64).next_power_of_two().trailing_zeros().max(1)
    }

    /// Validates internal consistency (non-zero sizes, associativity dividing
    /// the entry count). Returns a human-readable description of the first
    /// problem found, if any.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("tat_entries", self.tat_entries),
            ("tat_ways", self.tat_ways),
            ("dat_entries", self.dat_entries),
            ("dat_ways", self.dat_ways),
            ("successor_la_entries", self.successor_la_entries),
            ("dependence_la_entries", self.dependence_la_entries),
            ("reader_la_entries", self.reader_la_entries),
            ("elems_per_list_entry", self.elems_per_list_entry),
            ("ready_queue_entries", self.ready_queue_entries),
        ];
        for (name, value) in positive {
            if value == 0 {
                return Err(format!("{name} must be non-zero"));
            }
        }
        if !self.tat_entries.is_multiple_of(self.tat_ways) {
            return Err(format!(
                "tat_entries ({}) must be a multiple of tat_ways ({})",
                self.tat_entries, self.tat_ways
            ));
        }
        if !self.dat_entries.is_multiple_of(self.dat_ways) {
            return Err(format!(
                "dat_entries ({}) must be a multiple of dat_ways ({})",
                self.dat_entries, self.dat_ways
            ));
        }
        Ok(())
    }
}

// Snapshot support: the geometry is persisted alongside the DMU state so a
// resumed run can verify it is rebuilding against the same hardware shape.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for IndexPolicy {
    fn save(&self, out: &mut Vec<u8>) {
        match self {
            IndexPolicy::Static { low_bit } => {
                0u8.save(out);
                low_bit.save(out);
            }
            IndexPolicy::Dynamic => 1u8.save(out),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(IndexPolicy::Static {
                low_bit: u32::load(r)?,
            }),
            1 => Ok(IndexPolicy::Dynamic),
            other => Err(SnapshotError::Corrupt {
                context: format!("index-policy tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

impl Persist for DmuConfig {
    fn save(&self, out: &mut Vec<u8>) {
        self.tat_entries.save(out);
        self.tat_ways.save(out);
        self.dat_entries.save(out);
        self.dat_ways.save(out);
        self.successor_la_entries.save(out);
        self.dependence_la_entries.save(out);
        self.reader_la_entries.save(out);
        self.elems_per_list_entry.save(out);
        self.ready_queue_entries.save(out);
        self.access_latency.save(out);
        self.index_policy.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let config = DmuConfig {
            tat_entries: usize::load(r)?,
            tat_ways: usize::load(r)?,
            dat_entries: usize::load(r)?,
            dat_ways: usize::load(r)?,
            successor_la_entries: usize::load(r)?,
            dependence_la_entries: usize::load(r)?,
            reader_la_entries: usize::load(r)?,
            elems_per_list_entry: usize::load(r)?,
            ready_queue_entries: usize::load(r)?,
            access_latency: Cycle::load(r)?,
            index_policy: IndexPolicy::load(r)?,
        };
        config.validate().map_err(|msg| SnapshotError::Corrupt {
            context: format!("DMU geometry in snapshot is invalid: {msg}"),
        })?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_selected_design() {
        let c = DmuConfig::default();
        assert_eq!(c.tat_entries, 2048);
        assert_eq!(c.tat_ways, 8);
        assert_eq!(c.dat_entries, 2048);
        assert_eq!(c.dat_ways, 8);
        assert_eq!(c.successor_la_entries, 1024);
        assert_eq!(c.dependence_la_entries, 1024);
        assert_eq!(c.reader_la_entries, 1024);
        assert_eq!(c.elems_per_list_entry, 8);
        assert_eq!(c.access_latency, Cycle::new(1));
        assert_eq!(c.index_policy, IndexPolicy::Dynamic);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn table_sizes_follow_alias_table_sizes() {
        let c = DmuConfig::default().with_alias_sizes(512, 1024);
        assert_eq!(c.task_table_entries(), 512);
        assert_eq!(c.dependence_table_entries(), 1024);
    }

    #[test]
    fn id_bit_widths_match_paper() {
        let c = DmuConfig::default();
        assert_eq!(c.task_id_bits(), 11);
        assert_eq!(c.dep_id_bits(), 11);
        assert_eq!(c.list_ptr_bits(c.successor_la_entries), 10);
    }

    #[test]
    fn sweep_constructors_change_only_their_fields() {
        let base = DmuConfig::default();
        let swept = base.with_list_array_sizes(128, 512, 2048);
        assert_eq!(swept.successor_la_entries, 128);
        assert_eq!(swept.dependence_la_entries, 512);
        assert_eq!(swept.reader_la_entries, 2048);
        assert_eq!(swept.tat_entries, base.tat_entries);

        let lat = base.with_access_latency(Cycle::new(16));
        assert_eq!(lat.access_latency, Cycle::new(16));
        assert_eq!(lat.dat_entries, base.dat_entries);

        let idx = base.with_index_policy(IndexPolicy::Static { low_bit: 4 });
        assert_eq!(idx.index_policy, IndexPolicy::Static { low_bit: 4 });
    }

    #[test]
    fn ideal_config_is_huge_and_valid() {
        let c = DmuConfig::ideal();
        assert!(c.tat_entries >= 1 << 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_sizes() {
        let c = DmuConfig {
            tat_entries: 0,
            ..DmuConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_divisible_associativity() {
        let c = DmuConfig {
            tat_entries: 100,
            tat_ways: 8,
            ..DmuConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("multiple"));
    }

    #[test]
    fn default_index_policy_is_dynamic() {
        assert_eq!(IndexPolicy::default(), IndexPolicy::Dynamic);
    }
}
