//! The Dependence Management Unit (DMU).
//!
//! This module ties the alias tables, the Task/Dependence Tables, the list
//! arrays and the Ready Queue together into the operational model of
//! Section III-C: `create_task`, `add_dependence` (Algorithm 1),
//! `finish_task` (Algorithm 2) and `get_ready_task`.
//!
//! Two aspects deserve a note:
//!
//! * **Blocking semantics.** TDM instructions have barrier semantics and
//!   block when a DMU structure is full (Section III-D). The DMU model
//!   checks resource availability *before* mutating any state and returns
//!   [`DmuError::Stall`] if an operation cannot complete; the execution
//!   driver keeps the issuing core stalled and retries after the next
//!   `finish_task` frees entries. This keeps every operation atomic.
//!
//! * **Task submission.** The paper's ISA has no explicit "all dependences
//!   added" instruction, but a task whose dependences are all already
//!   satisfied at creation time must still reach the Ready Queue somehow.
//!   This model exposes that commit point as [`Dmu::submit_task`], which the
//!   runtime issues right after the last `add_dependence` of a task (it can
//!   be thought of as a flag on the last `add_dependence`, or as part of
//!   `create_task` for tasks with no dependences). The cost model charges it
//!   a single Task Table access.

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

use crate::access::{AccessCounter, DmuStructure};
use crate::alias::{AliasError, AliasTable};
use crate::config::{DmuConfig, IndexPolicy};
use crate::ids::{DepAddr, DepDirection, DepId, DescriptorAddr, TaskId};
use crate::list_array::ListArray;
use crate::ready_queue::ReadyQueue;
use crate::tables::{DepEntry, DependenceTable, TaskEntry, TaskTable};

/// Index-bit position used for the TAT. Task descriptors are small heap
/// objects, so skipping the byte-offset bits of a cache line spreads
/// consecutive descriptors across sets.
const TAT_INDEX_LOW_BIT: u32 = 6;

/// The DMU structure that caused an instruction to block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// The TAT set for this descriptor address has no free way.
    TatConflict,
    /// The TAT has no free entries at all.
    TatExhausted,
    /// The DAT set for this dependence address has no free way.
    DatConflict,
    /// The DAT has no free entries at all.
    DatExhausted,
    /// The Successor List Array has no free entries.
    SuccessorLaFull,
    /// The Dependence List Array has no free entries.
    DependenceLaFull,
    /// The Reader List Array has no free entries.
    ReaderLaFull,
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StallReason::TatConflict => "TAT set conflict",
            StallReason::TatExhausted => "TAT exhausted",
            StallReason::DatConflict => "DAT set conflict",
            StallReason::DatExhausted => "DAT exhausted",
            StallReason::SuccessorLaFull => "successor list array full",
            StallReason::DependenceLaFull => "dependence list array full",
            StallReason::ReaderLaFull => "reader list array full",
        };
        f.write_str(s)
    }
}

/// Errors returned by DMU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmuError {
    /// The operation cannot proceed until in-flight tasks finish and free
    /// entries in the named structure. No state was modified.
    Stall(StallReason),
    /// The runtime referenced a task descriptor the DMU does not know.
    /// This indicates a protocol violation by the runtime, not a resource
    /// limit.
    UnknownTask(DescriptorAddr),
}

impl std::fmt::Display for DmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmuError::Stall(reason) => write!(f, "DMU stall: {reason}"),
            DmuError::UnknownTask(desc) => write!(f, "unknown task descriptor {desc}"),
        }
    }
}

impl std::error::Error for DmuError {}

/// The value produced by a DMU operation plus the structure accesses it made.
#[derive(Debug, Clone, PartialEq)]
pub struct DmuResult<T> {
    /// The operation's result.
    pub value: T,
    /// SRAM accesses performed, for cycle accounting.
    pub accesses: AccessCounter,
}

impl<T> DmuResult<T> {
    fn new(value: T, accesses: AccessCounter) -> Self {
        DmuResult { value, accesses }
    }

    /// Cycles the DMU spends processing this operation with the given
    /// per-access latency.
    pub fn cost(&self, access_latency: Cycle) -> Cycle {
        self.accesses.cost(access_latency)
    }
}

/// A ready task as returned by `get_ready_task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyTask {
    /// Task descriptor address, used by the runtime to locate the task.
    pub descriptor: DescriptorAddr,
    /// Number of successors registered for the task, exposed so priority
    /// schedulers (e.g. the Successor scheduler of Section VI) can use it.
    pub num_successors: u32,
}

/// Aggregate statistics maintained by the DMU model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DmuStats {
    /// `create_task` operations completed.
    pub creates: u64,
    /// `add_dependence` operations completed.
    pub add_dependences: u64,
    /// `submit_task` operations completed.
    pub submits: u64,
    /// `finish_task` operations completed.
    pub finishes: u64,
    /// `get_ready_task` operations completed.
    pub get_readies: u64,
    /// Operations that returned a stall.
    pub stalls: u64,
    /// Total SRAM accesses across all completed operations.
    pub total_accesses: u64,
    /// Peak number of in-flight tasks.
    pub peak_tasks: usize,
    /// Peak number of in-flight dependences.
    pub peak_deps: usize,
}

/// The Dependence Management Unit.
///
/// # Example
///
/// ```
/// use tdm_core::config::DmuConfig;
/// use tdm_core::dmu::Dmu;
/// use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};
///
/// let mut dmu = Dmu::new(DmuConfig::default());
/// let producer = DescriptorAddr(0x1000);
/// let consumer = DescriptorAddr(0x2000);
///
/// dmu.create_task(producer).unwrap();
/// dmu.add_dependence(producer, DepAddr(0xA000), 4096, DepDirection::Out).unwrap();
/// dmu.submit_task(producer).unwrap();
///
/// dmu.create_task(consumer).unwrap();
/// dmu.add_dependence(consumer, DepAddr(0xA000), 4096, DepDirection::In).unwrap();
/// dmu.submit_task(consumer).unwrap();
///
/// // Only the producer is ready; the consumer waits for it.
/// assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, producer);
/// assert!(dmu.get_ready_task().value.is_none());
///
/// dmu.finish_task(producer).unwrap();
/// assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, consumer);
/// ```
#[derive(Debug, Clone)]
pub struct Dmu {
    config: DmuConfig,
    tat: AliasTable,
    dat: AliasTable,
    tasks: TaskTable,
    deps: DependenceTable,
    sla: ListArray,
    dla: ListArray,
    rla: ListArray,
    ready: ReadyQueue,
    stats: DmuStats,
    /// Reusable scratch for the `add_dependence` pre-check: per-target
    /// successor-list push counts, so no allocation happens per operation.
    req_scratch: Vec<(TaskId, u32)>,
}

impl Dmu {
    /// Builds a DMU with the given structure geometry.
    ///
    /// The Ready Queue is sized to at least the Task Table capacity so that
    /// Algorithm 2 can never fail to enqueue a ready task (there can never be
    /// more ready tasks than in-flight tasks).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DmuConfig::validate`].
    pub fn new(config: DmuConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid DMU configuration: {msg}");
        }
        let rq_capacity = config.ready_queue_entries.max(config.task_table_entries());
        Dmu {
            tat: AliasTable::new(
                config.tat_entries,
                config.tat_ways,
                IndexPolicy::Static {
                    low_bit: TAT_INDEX_LOW_BIT,
                },
            ),
            dat: AliasTable::new(config.dat_entries, config.dat_ways, config.index_policy),
            tasks: TaskTable::new(config.task_table_entries()),
            deps: DependenceTable::new(config.dependence_table_entries()),
            sla: ListArray::new(config.successor_la_entries, config.elems_per_list_entry),
            dla: ListArray::new(config.dependence_la_entries, config.elems_per_list_entry),
            rla: ListArray::new(config.reader_la_entries, config.elems_per_list_entry),
            ready: ReadyQueue::new(rq_capacity),
            stats: DmuStats::default(),
            req_scratch: Vec::new(),
            config,
        }
    }

    /// The configuration this DMU was built with.
    pub fn config(&self) -> &DmuConfig {
        &self.config
    }

    /// Aggregate statistics collected so far.
    pub fn stats(&self) -> DmuStats {
        self.stats
    }

    /// Number of tasks currently tracked.
    pub fn in_flight_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependences currently tracked.
    pub fn in_flight_deps(&self) -> usize {
        self.deps.len()
    }

    /// Number of tasks currently waiting in the Ready Queue.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Average number of occupied DAT sets over the run (Figure 11 metric).
    pub fn dat_average_occupied_sets(&self) -> f64 {
        self.dat.occupancy().average_occupied_sets()
    }

    /// Current number of occupied DAT sets.
    pub fn dat_occupied_sets(&self) -> usize {
        self.dat.occupied_sets()
    }

    /// Per-access latency configured for every DMU structure.
    pub fn access_latency(&self) -> Cycle {
        self.config.access_latency
    }

    fn stall(&mut self, reason: StallReason) -> DmuError {
        self.stats.stalls += 1;
        DmuError::Stall(reason)
    }

    fn task_id(&self, desc: DescriptorAddr) -> Result<TaskId, DmuError> {
        self.tat
            .lookup(desc.raw(), 64)
            .map(TaskId::new)
            .ok_or(DmuError::UnknownTask(desc))
    }

    fn record_completion(&mut self, accesses: &AccessCounter) {
        self.stats.total_accesses += accesses.total();
        self.stats.peak_tasks = self.stats.peak_tasks.max(self.tasks.len());
        self.stats.peak_deps = self.stats.peak_deps.max(self.deps.len());
    }

    /// `create_task(task_desc)`: registers a new in-flight task.
    ///
    /// Allocates a TAT entry and task ID, initializes the Task Table entry
    /// and reserves empty successor and dependence lists (Section III-C1).
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::Stall`] if the TAT or either list array is full;
    /// no state is modified in that case.
    pub fn create_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<TaskId>, DmuError> {
        // Pre-check every resource so the operation is atomic.
        if self.tat.lookup(desc.raw(), 64).is_some() {
            // Descriptor reuse while still in flight is a runtime bug.
            return Err(DmuError::UnknownTask(desc));
        }
        if self.sla.free_entries() < 1 {
            return Err(self.stall(StallReason::SuccessorLaFull));
        }
        if self.dla.free_entries() < 1 {
            return Err(self.stall(StallReason::DependenceLaFull));
        }
        let mut accesses = AccessCounter::new();
        let id = match self.tat.insert(desc.raw(), 64) {
            Ok(raw) => TaskId::new(raw),
            Err(AliasError::SetConflict) => return Err(self.stall(StallReason::TatConflict)),
            Err(AliasError::Exhausted) => return Err(self.stall(StallReason::TatExhausted)),
        };
        accesses.touch(DmuStructure::Tat);

        let successor_list = self.sla.alloc_list().expect("pre-checked SLA space");
        accesses.touch(DmuStructure::SuccessorLa);
        let dependence_list = self.dla.alloc_list().expect("pre-checked DLA space");
        accesses.touch(DmuStructure::DependenceLa);

        self.tasks.insert(
            id,
            TaskEntry {
                descriptor: desc,
                num_predecessors: 0,
                num_successors: 0,
                successor_list,
                dependence_list,
                under_construction: true,
            },
        );
        accesses.touch(DmuStructure::TaskTable);

        self.stats.creates += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new(id, accesses))
    }

    /// Looks up (or allocates) the Dependence Table entry for `addr`.
    fn dep_id_for(
        &mut self,
        addr: DepAddr,
        size: u64,
        accesses: &mut AccessCounter,
    ) -> Result<DepId, DmuError> {
        accesses.touch(DmuStructure::Dat);
        if let Some(raw) = self.dat.lookup(addr.raw(), size) {
            return Ok(DepId::new(raw));
        }
        // A new dependence needs a DAT entry and a reader list.
        if self.rla.free_entries() < 1 {
            return Err(self.stall(StallReason::ReaderLaFull));
        }
        let raw = match self.dat.insert(addr.raw(), size) {
            Ok(raw) => raw,
            Err(AliasError::SetConflict) => return Err(self.stall(StallReason::DatConflict)),
            Err(AliasError::Exhausted) => return Err(self.stall(StallReason::DatExhausted)),
        };
        let reader_list = self.rla.alloc_list().expect("pre-checked RLA space");
        accesses.touch(DmuStructure::ReaderLa);
        let id = DepId::new(raw);
        self.deps.insert(
            id,
            DepEntry {
                addr,
                size,
                last_writer: None,
                reader_list,
            },
        );
        accesses.touch(DmuStructure::DependenceTable);
        Ok(id)
    }

    /// Counts how many *new* list-array entries Algorithm 1 would need, so
    /// the operation can stall up front instead of half-applying.
    ///
    /// Successor-list demand is counted per *target list*, not per push: one
    /// operation can push the same list several times (a last writer that
    /// also sits in the reader list, or a task registered as reader twice),
    /// and earlier pushes fill the tail entry that a per-push
    /// `push_needs_new_entry` probe against pre-operation state would still
    /// see as free. `succ_pushes` is caller-provided scratch.
    fn add_dependence_requirements(
        &self,
        task: TaskId,
        dep: Option<DepId>,
        dir: DepDirection,
        succ_pushes: &mut Vec<(TaskId, u32)>,
    ) -> (usize, usize, usize) {
        fn bump(pushes: &mut Vec<(TaskId, u32)>, target: TaskId) {
            if let Some(entry) = pushes.iter_mut().find(|entry| entry.0 == target) {
                entry.1 += 1;
            } else {
                pushes.push((target, 1));
            }
        }

        succ_pushes.clear();
        let mut needed_rla = 0;
        let needed_dla = usize::from(
            self.dla
                .push_needs_new_entry(self.tasks.dependence_list(task)),
        );

        if let Some(dep_id) = dep {
            if let Some(writer) = self.deps.last_writer(dep_id) {
                if writer != task {
                    bump(succ_pushes, writer);
                }
            }
            let reader_list = self.deps.reader_list(dep_id);
            if dir.writes() {
                for reader_raw in self.rla.iter(reader_list) {
                    let reader = TaskId::new(reader_raw);
                    if reader == task {
                        continue;
                    }
                    bump(succ_pushes, reader);
                }
            } else if self.rla.push_needs_new_entry(reader_list) {
                needed_rla += 1;
            }
        } else {
            // Brand-new dependence: empty reader list, the task will be its
            // first reader or writer; a read needs one RLA slot which the
            // fresh head entry always provides.
        }
        let needed_sla = succ_pushes
            .iter()
            .map(|&(target, pushes)| {
                self.sla
                    .new_entries_for_pushes(self.tasks.successor_list(target), pushes as usize)
            })
            .sum();
        (needed_sla, needed_dla, needed_rla)
    }

    /// `add_dependence(task_desc, dep_addr, size, direction)`: Algorithm 1.
    ///
    /// Registers a dependence of `desc` on the data at `addr`, creating
    /// RAW/WAR/WAW edges with older in-flight tasks as needed. An `inout`
    /// direction behaves like `out` for graph-construction purposes (it also
    /// reads, but the read edge to the last writer is created for every
    /// direction).
    ///
    /// # Errors
    ///
    /// * [`DmuError::Stall`] if the DAT or a list array lacks space (no state
    ///   is modified).
    /// * [`DmuError::UnknownTask`] if `desc` was never created.
    pub fn add_dependence(
        &mut self,
        desc: DescriptorAddr,
        addr: DepAddr,
        size: u64,
        dir: DepDirection,
    ) -> Result<DmuResult<()>, DmuError> {
        let task = self.task_id(desc)?;
        self.add_dependence_resolved(task, addr, size, dir)
    }

    /// Batched Algorithm 1: resolves `desc` through the TAT once (actual
    /// work), then applies each dependence in order exactly as per-op
    /// [`Dmu::add_dependence`] calls would, appending one per-op
    /// [`AccessCounter`] to `completed` for every dependence that succeeds.
    ///
    /// On a stall the error is returned immediately; the dependences already
    /// applied stay applied (each completed atomically), so a caller resumes
    /// by retrying from index `completed.len()` — byte-identical to the
    /// per-op stall-and-retry protocol. The modeled accesses, including the
    /// per-dependence TAT probe, are unchanged; only the *actual* repeated
    /// TAT hash lookups are amortized.
    ///
    /// # Errors
    ///
    /// Same contract as [`Dmu::add_dependence`], applied per element.
    pub fn add_dependences<I>(
        &mut self,
        desc: DescriptorAddr,
        deps: I,
        completed: &mut Vec<AccessCounter>,
    ) -> Result<(), DmuError>
    where
        I: IntoIterator<Item = (DepAddr, u64, DepDirection)>,
    {
        let task = self.task_id(desc)?;
        for (addr, size, dir) in deps {
            let result = self.add_dependence_resolved(task, addr, size, dir)?;
            completed.push(result.accesses);
        }
        Ok(())
    }

    /// The body of Algorithm 1 once the task ID is known. The access counter
    /// still charges the modeled TAT probe for the descriptor; hoisting the
    /// *actual* lookup is what [`Dmu::add_dependences`] amortizes.
    fn add_dependence_resolved(
        &mut self,
        task: TaskId,
        addr: DepAddr,
        size: u64,
        dir: DepDirection,
    ) -> Result<DmuResult<()>, DmuError> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);

        // Resolve (or create) the dependence entry first; this can stall on
        // DAT/RLA space but does not yet modify any task state, so it is safe
        // to bail out afterwards as long as we only created the dependence
        // entry (an empty dependence entry is harmless and will be reused by
        // the retry).
        let existing = self.dat.lookup(addr.raw(), size).map(DepId::new);
        let mut scratch = std::mem::take(&mut self.req_scratch);
        let (needed_sla, needed_dla, needed_rla) =
            self.add_dependence_requirements(task, existing, dir, &mut scratch);
        self.req_scratch = scratch;
        if self.sla.free_entries() < needed_sla {
            return Err(self.stall(StallReason::SuccessorLaFull));
        }
        if self.dla.free_entries() < needed_dla {
            return Err(self.stall(StallReason::DependenceLaFull));
        }
        // +1 potential reader-list allocation for a brand-new dependence.
        let new_dep_rla = usize::from(existing.is_none());
        if self.rla.free_entries() < needed_rla + new_dep_rla {
            return Err(self.stall(StallReason::ReaderLaFull));
        }

        let dep = self.dep_id_for(addr, size, &mut accesses)?;

        // Insert depID in the dependence list of taskID.
        let dep_list = self.tasks.dependence_list(task);
        let walk = self
            .dla
            .push(dep_list, dep.raw())
            .expect("pre-checked DLA space");
        accesses.record(DmuStructure::DependenceLa, walk.entries_touched);

        // RAW / WAW edge from the last writer.
        let last_writer = self.deps.last_writer(dep);
        let reader_list = self.deps.reader_list(dep);
        accesses.touch(DmuStructure::DependenceTable);
        if let Some(writer) = last_writer {
            if writer != task {
                let succ_list = self.tasks.successor_list(writer);
                self.tasks.inc_successors(writer);
                accesses.touch(DmuStructure::TaskTable);
                let walk = self
                    .sla
                    .push(succ_list, task.raw())
                    .expect("pre-checked SLA space");
                accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                self.tasks.inc_predecessors(task);
                accesses.touch(DmuStructure::TaskTable);
            }
        }

        if dir.writes() {
            // WAR edges from every reader, then this task becomes the last
            // writer and the reader list is flushed. The reader list is
            // walked in place (no `collect()` allocation); the list arrays
            // it mutates inside the loop are disjoint structures.
            accesses.record(
                DmuStructure::ReaderLa,
                self.rla.entries_spanned(reader_list),
            );
            for reader_raw in self.rla.iter(reader_list) {
                let reader = TaskId::new(reader_raw);
                if reader == task {
                    continue;
                }
                let succ_list = self.tasks.successor_list(reader);
                self.tasks.inc_successors(reader);
                accesses.touch(DmuStructure::TaskTable);
                let walk = self
                    .sla
                    .push(succ_list, task.raw())
                    .expect("pre-checked SLA space");
                accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                self.tasks.inc_predecessors(task);
                accesses.touch(DmuStructure::TaskTable);
            }
            let flush_walk = self.rla.flush(reader_list);
            accesses.record(DmuStructure::ReaderLa, flush_walk.entries_touched);
            self.deps.set_last_writer(dep, Some(task));
            accesses.touch(DmuStructure::DependenceTable);
        } else {
            // Pure input: register this task as a reader.
            let walk = self
                .rla
                .push(reader_list, task.raw())
                .expect("pre-checked RLA space");
            accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
        }

        self.stats.add_dependences += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new((), accesses))
    }

    /// Marks the task as fully constructed. If all its dependences were
    /// already satisfied (predecessor count is zero) it is inserted into the
    /// Ready Queue.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` was never created.
    pub fn submit_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<bool>, DmuError> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);
        let task = self.task_id(desc)?;
        self.tasks.submit(task);
        accesses.touch(DmuStructure::TaskTable);
        let ready_now = self.tasks.num_predecessors(task) == 0;
        if ready_now {
            self.ready
                .push(task)
                .expect("ready queue sized to task table capacity");
            accesses.touch(DmuStructure::ReadyQueue);
        }
        self.stats.submits += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new(ready_now, accesses))
    }

    /// `finish_task(task_desc)`: Algorithm 2.
    ///
    /// Wakes up successors (moving newly ready tasks to the Ready Queue),
    /// detaches the task from its dependences, and frees every DMU resource
    /// the task held. Returns the tasks that became ready.
    ///
    /// This convenience wrapper allocates the woken list; the execution
    /// driver's hot path uses [`Dmu::finish_task_into`] with a reusable
    /// buffer instead.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` is not in flight.
    pub fn finish_task(
        &mut self,
        desc: DescriptorAddr,
    ) -> Result<DmuResult<Vec<TaskId>>, DmuError> {
        let mut woken = Vec::new();
        let result = self.finish_task_into(desc, &mut woken)?;
        Ok(DmuResult::new(woken, result.accesses))
    }

    /// Allocation-free variant of [`Dmu::finish_task`]: `woken` is cleared
    /// and filled with the tasks that became ready, so callers can reuse one
    /// buffer across every finish of a run. The successor, dependence and
    /// reader lists are walked in place (no intermediate `collect()`), with
    /// access accounting identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` is not in flight.
    pub fn finish_task_into(
        &mut self,
        desc: DescriptorAddr,
        woken: &mut Vec<TaskId>,
    ) -> Result<DmuResult<()>, DmuError> {
        woken.clear();
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);
        let task = self.task_id(desc)?;
        let successor_list = self.tasks.successor_list(task);
        let dependence_list = self.tasks.dependence_list(task);
        accesses.touch(DmuStructure::TaskTable);

        // First loop: wake up successors (walking the successor list in
        // place; it mutates only the task table and the ready queue).
        accesses.record(
            DmuStructure::SuccessorLa,
            self.sla.entries_spanned(successor_list),
        );
        for succ_raw in self.sla.iter(successor_list) {
            let succ = TaskId::new(succ_raw);
            debug_assert!(
                self.tasks.num_predecessors(succ) > 0,
                "predecessor underflow for {succ}"
            );
            let remaining = self.tasks.dec_predecessors(succ);
            accesses.touch(DmuStructure::TaskTable);
            if remaining == 0 && !self.tasks.under_construction(succ) {
                self.ready
                    .push(succ)
                    .expect("ready queue sized to task table capacity");
                accesses.touch(DmuStructure::ReadyQueue);
                woken.push(succ);
            }
        }

        // Second loop: detach from dependences and free dead ones (walking
        // the dependence list in place; it mutates only the reader list
        // array, the dependence table and the DAT).
        accesses.record(
            DmuStructure::DependenceLa,
            self.dla.entries_spanned(dependence_list),
        );
        for dep_raw in self.dla.iter(dependence_list) {
            let dep = DepId::new(dep_raw);
            if !self.deps.contains(dep) {
                // Already freed via an earlier duplicate in this task's list.
                continue;
            }
            let reader_list = self.deps.reader_list(dep);
            let dep_addr = self.deps.addr(dep);
            let dep_size = self.deps.size(dep);
            let (_, walk) = self.rla.remove(reader_list, task.raw());
            accesses.record(DmuStructure::ReaderLa, walk.entries_touched);

            accesses.touch(DmuStructure::DependenceTable);
            if self.deps.last_writer(dep) == Some(task) {
                self.deps.set_last_writer(dep, None);
            }
            if self.deps.last_writer(dep).is_none() && self.rla.is_empty(reader_list) {
                let walk = self.rla.free_list(reader_list);
                accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
                self.deps.remove(dep);
                accesses.touch(DmuStructure::DependenceTable);
                self.dat.remove(dep_addr.raw(), dep_size);
                accesses.touch(DmuStructure::Dat);
            }
        }

        // Free the task's own resources.
        let walk = self.sla.free_list(successor_list);
        accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
        let walk = self.dla.free_list(dependence_list);
        accesses.record(DmuStructure::DependenceLa, walk.entries_touched);
        self.tasks.remove(task);
        accesses.touch(DmuStructure::TaskTable);
        self.tat.remove(desc.raw(), 64);
        accesses.touch(DmuStructure::Tat);

        self.stats.finishes += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new((), accesses))
    }

    /// `get_ready_task()`: pops the oldest ready task, returning its
    /// descriptor address and successor count, or `None` if the Ready Queue
    /// is empty.
    pub fn get_ready_task(&mut self) -> DmuResult<Option<ReadyTask>> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::ReadyQueue);
        let value = self.ready.pop().map(|task| {
            let descriptor = self.tasks.descriptor(task);
            let num_successors = self.tasks.num_successors(task);
            accesses.touch(DmuStructure::TaskTable);
            ReadyTask {
                descriptor,
                num_successors,
            }
        });
        self.stats.get_readies += 1;
        self.record_completion(&accesses);
        DmuResult::new(value, accesses)
    }

    /// True if the DMU holds no in-flight state (all tasks finished).
    pub fn is_drained(&self) -> bool {
        self.tasks.is_empty() && self.deps.is_empty() && self.ready.is_empty()
    }

    /// Peak occupancy of each structure, for reporting.
    pub fn peak_occupancy(&self) -> PeakOccupancy {
        PeakOccupancy {
            tasks: self.tasks.peak(),
            deps: self.deps.peak(),
            successor_la: self.sla.peak_entries_in_use(),
            dependence_la: self.dla.peak_entries_in_use(),
            reader_la: self.rla.peak_entries_in_use(),
            ready_queue: self.ready.peak(),
            tat: self.tat.occupancy().peak_entries,
            dat: self.dat.occupancy().peak_entries,
        }
    }
}

/// Peak occupancy of every DMU structure over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeakOccupancy {
    /// Peak live Task Table entries.
    pub tasks: usize,
    /// Peak live Dependence Table entries.
    pub deps: usize,
    /// Peak Successor List Array entries in use.
    pub successor_la: usize,
    /// Peak Dependence List Array entries in use.
    pub dependence_la: usize,
    /// Peak Reader List Array entries in use.
    pub reader_la: usize,
    /// Peak Ready Queue occupancy.
    pub ready_queue: usize,
    /// Peak TAT occupancy.
    pub tat: usize,
    /// Peak DAT occupancy.
    pub dat: usize,
}

// Snapshot support: the full DMU state — geometry, both alias tables, the
// task/dependence slabs, all three list arrays, the ready queue, and the
// operation counters. `req_scratch` is per-operation scratch (always empty
// between operations) and is rebuilt empty on load.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for DmuStats {
    fn save(&self, out: &mut Vec<u8>) {
        self.creates.save(out);
        self.add_dependences.save(out);
        self.submits.save(out);
        self.finishes.save(out);
        self.get_readies.save(out);
        self.stalls.save(out);
        self.total_accesses.save(out);
        self.peak_tasks.save(out);
        self.peak_deps.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DmuStats {
            creates: u64::load(r)?,
            add_dependences: u64::load(r)?,
            submits: u64::load(r)?,
            finishes: u64::load(r)?,
            get_readies: u64::load(r)?,
            stalls: u64::load(r)?,
            total_accesses: u64::load(r)?,
            peak_tasks: usize::load(r)?,
            peak_deps: usize::load(r)?,
        })
    }
}

impl Persist for Dmu {
    fn save(&self, out: &mut Vec<u8>) {
        self.config.save(out);
        self.tat.save(out);
        self.dat.save(out);
        self.tasks.save(out);
        self.deps.save(out);
        self.sla.save(out);
        self.dla.save(out);
        self.rla.save(out);
        self.ready.save(out);
        self.stats.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Dmu {
            config: DmuConfig::load(r)?,
            tat: AliasTable::load(r)?,
            dat: AliasTable::load(r)?,
            tasks: TaskTable::load(r)?,
            deps: DependenceTable::load(r)?,
            sla: ListArray::load(r)?,
            dla: ListArray::load(r)?,
            rla: ListArray::load(r)?,
            ready: ReadyQueue::load(r)?,
            stats: DmuStats::load(r)?,
            req_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DmuConfig {
        DmuConfig {
            tat_entries: 64,
            tat_ways: 8,
            dat_entries: 64,
            dat_ways: 8,
            successor_la_entries: 64,
            dependence_la_entries: 64,
            reader_la_entries: 64,
            elems_per_list_entry: 4,
            ready_queue_entries: 64,
            access_latency: Cycle::new(1),
            index_policy: IndexPolicy::Dynamic,
        }
    }

    fn desc(i: u64) -> DescriptorAddr {
        DescriptorAddr(0x10_0000 + i * 64)
    }

    fn block(i: u64) -> DepAddr {
        DepAddr(0x80_0000 + i * 4096)
    }

    /// Creates a task with the given dependences and submits it.
    fn spawn(dmu: &mut Dmu, d: DescriptorAddr, deps: &[(DepAddr, DepDirection)]) {
        dmu.create_task(d).unwrap();
        for &(addr, dir) in deps {
            dmu.add_dependence(d, addr, 4096, dir).unwrap();
        }
        dmu.submit_task(d).unwrap();
    }

    fn drain_ready(dmu: &mut Dmu) -> Vec<DescriptorAddr> {
        let mut out = Vec::new();
        while let Some(t) = dmu.get_ready_task().value {
            out.push(t.descriptor);
        }
        out
    }

    #[test]
    fn independent_tasks_are_ready_immediately() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::Out)]);
        let ready = drain_ready(&mut dmu);
        assert_eq!(ready, vec![desc(0), desc(1)]);
    }

    #[test]
    fn raw_dependence_orders_producer_before_consumer() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        let woken = dmu.finish_task(desc(0)).unwrap().value;
        assert_eq!(woken.len(), 1);
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn war_dependence_orders_reader_before_writer() {
        let mut dmu = Dmu::new(small_config());
        // Writer W0, then reader R, then writer W1. R must wait for W0; W1
        // must wait for both W0 (WAW) and R (WAR).
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        spawn(&mut dmu, desc(2), &[(block(0), DepDirection::Out)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
        // W1 is not ready yet: the reader is still in flight.
        assert!(dmu.get_ready_task().value.is_none());
        dmu.finish_task(desc(1)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(2)]);
        dmu.finish_task(desc(2)).unwrap();
        assert!(dmu.is_drained());
    }

    #[test]
    fn waw_dependence_serializes_writers() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::Out)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn multiple_readers_run_in_parallel() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        for i in 1..=5 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        dmu.get_ready_task(); // producer
        dmu.finish_task(desc(0)).unwrap();
        let ready = drain_ready(&mut dmu);
        assert_eq!(ready.len(), 5, "all readers become ready together");
    }

    #[test]
    fn successor_counts_are_reported() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        for i in 1..=3 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        let ready = dmu.get_ready_task().value.unwrap();
        assert_eq!(ready.descriptor, desc(0));
        assert_eq!(ready.num_successors, 3);
    }

    #[test]
    fn diamond_dependence_pattern() {
        // A writes X; B and C read X and write Y_b / Y_c; D reads both.
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(
            &mut dmu,
            desc(1),
            &[(block(0), DepDirection::In), (block(1), DepDirection::Out)],
        );
        spawn(
            &mut dmu,
            desc(2),
            &[(block(0), DepDirection::In), (block(2), DepDirection::Out)],
        );
        spawn(
            &mut dmu,
            desc(3),
            &[(block(1), DepDirection::In), (block(2), DepDirection::In)],
        );
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1), desc(2)]);
        dmu.finish_task(desc(1)).unwrap();
        assert!(dmu.get_ready_task().value.is_none(), "D waits for C too");
        dmu.finish_task(desc(2)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(3)]);
        dmu.finish_task(desc(3)).unwrap();
        assert!(dmu.is_drained());
    }

    #[test]
    fn inout_behaves_like_a_chain() {
        let mut dmu = Dmu::new(small_config());
        for i in 0..4 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::InOut)]);
        }
        for i in 0..4 {
            let ready = drain_ready(&mut dmu);
            assert_eq!(ready, vec![desc(i)], "chain executes strictly in order");
            dmu.finish_task(desc(i)).unwrap();
        }
        assert!(dmu.is_drained());
    }

    #[test]
    fn finished_writer_does_not_create_edges() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        dmu.get_ready_task();
        dmu.finish_task(desc(0)).unwrap();
        // A later reader of the block must be immediately ready: the writer
        // already finished and its DMU state is gone.
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn resources_are_reclaimed_after_finish() {
        let mut dmu = Dmu::new(small_config());
        for wave in 0..10u64 {
            for i in 0..8u64 {
                let d = desc(wave * 8 + i);
                spawn(&mut dmu, d, &[(block(i), DepDirection::InOut)]);
            }
            let ready = drain_ready(&mut dmu);
            for d in ready {
                dmu.finish_task(d).unwrap();
            }
        }
        // 80 tasks flowed through a 64-entry DMU without ever stalling
        // because each wave drained before the next.
        assert!(dmu.is_drained());
        assert_eq!(dmu.stats().creates, 80);
        assert_eq!(dmu.stats().stalls, 0);
    }

    #[test]
    fn create_stalls_when_tat_is_full_and_recovers() {
        let mut config = small_config();
        config.tat_entries = 8;
        config.tat_ways = 8;
        let mut dmu = Dmu::new(config);
        for i in 0..8 {
            spawn(&mut dmu, desc(i), &[]);
        }
        let err = dmu.create_task(desc(100)).unwrap_err();
        assert!(matches!(err, DmuError::Stall(_)));
        assert_eq!(dmu.stats().stalls, 1);
        // Finishing one task frees an entry and the create succeeds.
        let victim = dmu.get_ready_task().value.unwrap().descriptor;
        dmu.finish_task(victim).unwrap();
        assert!(dmu.create_task(desc(100)).is_ok());
    }

    #[test]
    fn add_dependence_stalls_when_dat_is_full() {
        let mut config = small_config();
        config.dat_entries = 8;
        config.dat_ways = 8;
        let mut dmu = Dmu::new(config);
        dmu.create_task(desc(0)).unwrap();
        for i in 0..8 {
            dmu.add_dependence(desc(0), block(i), 4096, DepDirection::Out)
                .unwrap();
        }
        let err = dmu
            .add_dependence(desc(0), block(99), 4096, DepDirection::Out)
            .unwrap_err();
        assert!(matches!(
            err,
            DmuError::Stall(StallReason::DatConflict) | DmuError::Stall(StallReason::DatExhausted)
        ));
    }

    #[test]
    fn stalled_operation_leaves_state_consistent() {
        let mut config = small_config();
        config.successor_la_entries = 2;
        let mut dmu = Dmu::new(config);
        // Task 0 and 1 use both SLA entries for their (empty) successor lists.
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[]);
        // Creating a third task needs a new successor list and must stall.
        let err = dmu.create_task(desc(2)).unwrap_err();
        assert_eq!(err, DmuError::Stall(StallReason::SuccessorLaFull));
        // The failed create left nothing behind: finishing the ready tasks
        // drains the DMU completely.
        for d in drain_ready(&mut dmu) {
            dmu.finish_task(d).unwrap();
        }
        assert!(dmu.is_drained());
    }

    #[test]
    fn duplicate_reader_war_stalls_instead_of_panicking() {
        // Regression: one `add_dependence` can push the same successor list
        // twice (here, a task registered as reader of the same block twice).
        // The old pre-check probed `push_needs_new_entry` per push against
        // pre-operation state, undercounted the SLA demand, passed the stall
        // gate and then panicked mid-operation when the second push found no
        // free entry. The exact pre-check must stall up front instead.
        let mut config = small_config();
        config.successor_la_entries = 3;
        config.elems_per_list_entry = 2;
        let mut dmu = Dmu::new(config);
        // R writes block 0 and reads block 1 twice.
        dmu.create_task(desc(0)).unwrap();
        dmu.add_dependence(desc(0), block(0), 4096, DepDirection::Out)
            .unwrap();
        dmu.add_dependence(desc(0), block(1), 4096, DepDirection::In)
            .unwrap();
        dmu.add_dependence(desc(0), block(1), 4096, DepDirection::In)
            .unwrap();
        dmu.submit_task(desc(0)).unwrap();
        // A reads block 0, filling one of the two slots of R's successor list.
        dmu.create_task(desc(1)).unwrap();
        dmu.add_dependence(desc(1), block(0), 4096, DepDirection::In)
            .unwrap();
        dmu.submit_task(desc(1)).unwrap();
        // T's create consumes the third and last SLA entry.
        dmu.create_task(desc(2)).unwrap();
        // T writes block 1: WAR edges push R's successor list once per reader
        // occurrence. The first push fills the tail; the second would chain a
        // new entry that does not exist.
        let err = dmu
            .add_dependence(desc(2), block(1), 4096, DepDirection::Out)
            .unwrap_err();
        assert_eq!(err, DmuError::Stall(StallReason::SuccessorLaFull));
        // Nothing was half-applied: the graph drains, T retries and succeeds.
        dmu.get_ready_task();
        dmu.finish_task(desc(0)).unwrap();
        dmu.get_ready_task();
        dmu.finish_task(desc(1)).unwrap();
        dmu.add_dependence(desc(2), block(1), 4096, DepDirection::Out)
            .unwrap();
        dmu.submit_task(desc(2)).unwrap();
        dmu.get_ready_task();
        dmu.finish_task(desc(2)).unwrap();
        assert!(dmu.is_drained());
    }

    #[test]
    fn unknown_task_is_reported() {
        let mut dmu = Dmu::new(small_config());
        let err = dmu
            .add_dependence(desc(7), block(0), 64, DepDirection::In)
            .unwrap_err();
        assert_eq!(err, DmuError::UnknownTask(desc(7)));
        assert!(matches!(
            dmu.finish_task(desc(7)),
            Err(DmuError::UnknownTask(_))
        ));
        assert!(matches!(
            dmu.submit_task(desc(7)),
            Err(DmuError::UnknownTask(_))
        ));
    }

    #[test]
    fn duplicate_descriptor_rejected_while_in_flight() {
        let mut dmu = Dmu::new(small_config());
        dmu.create_task(desc(0)).unwrap();
        assert!(dmu.create_task(desc(0)).is_err());
    }

    #[test]
    fn access_counts_reflect_list_lengths() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        // Many readers: the finish of the producer must walk a long
        // successor list, so its access count grows with the reader count.
        for i in 1..=10 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        dmu.get_ready_task();
        let few_succ = {
            let mut other = Dmu::new(small_config());
            spawn(&mut other, desc(0), &[(block(0), DepDirection::Out)]);
            spawn(&mut other, desc(1), &[(block(0), DepDirection::In)]);
            other.get_ready_task();
            other.finish_task(desc(0)).unwrap().accesses.total()
        };
        let many_succ = dmu.finish_task(desc(0)).unwrap().accesses.total();
        assert!(
            many_succ > few_succ,
            "finishing a task with 10 successors ({many_succ} accesses) should cost more than with 1 ({few_succ})"
        );
    }

    #[test]
    fn cost_scales_with_access_latency() {
        let mut dmu = Dmu::new(small_config());
        let result = dmu.create_task(desc(0)).unwrap();
        assert_eq!(
            result.cost(Cycle::new(4)),
            Cycle::new(result.accesses.total() * 4)
        );
    }

    #[test]
    fn stats_count_operations() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        dmu.get_ready_task();
        dmu.finish_task(desc(0)).unwrap();
        let stats = dmu.stats();
        assert_eq!(stats.creates, 2);
        assert_eq!(stats.add_dependences, 2);
        assert_eq!(stats.submits, 2);
        assert_eq!(stats.finishes, 1);
        assert_eq!(stats.get_readies, 1);
        assert!(stats.total_accesses > 0);
        assert_eq!(stats.peak_tasks, 2);
        assert_eq!(stats.peak_deps, 1);
    }

    #[test]
    fn peak_occupancy_is_reported() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        let peak = dmu.peak_occupancy();
        assert_eq!(peak.tasks, 2);
        assert_eq!(peak.deps, 1);
        assert!(peak.successor_la >= 2);
        assert!(peak.tat >= 2);
    }

    #[test]
    fn batched_add_dependences_matches_per_op() {
        // Two identical DMUs: one fed through the batched entry point, one
        // through per-op calls. Every counter, stall and final statistic must
        // be bit-identical — the batch path only amortizes the *actual* TAT
        // hash lookup, never the modeled accesses.
        let mut config = small_config();
        config.dat_entries = 16;
        config.dat_ways = 4;
        config.reader_la_entries = 8;
        let mut per_op = Dmu::new(config.clone());
        let mut batched = Dmu::new(config);

        let mut counters = Vec::new();
        for t in 0..40u64 {
            per_op.create_task(desc(t)).unwrap();
            batched.create_task(desc(t)).unwrap();
            let deps: Vec<(DepAddr, u64, DepDirection)> = (0..4u64)
                .map(|j| {
                    let dir = match (t + j) % 3 {
                        0 => DepDirection::In,
                        1 => DepDirection::Out,
                        _ => DepDirection::InOut,
                    };
                    (block((t + j) % 6), 4096, dir)
                })
                .collect();

            // Per-op reference, stalling and retrying like the driver does.
            let mut next = 0;
            let mut reference = Vec::new();
            while next < deps.len() {
                let (addr, size, dir) = deps[next];
                match per_op.add_dependence(desc(t), addr, size, dir) {
                    Ok(r) => {
                        reference.push(r.accesses);
                        next += 1;
                    }
                    Err(DmuError::Stall(_)) => {
                        let victim = per_op.get_ready_task().value.unwrap().descriptor;
                        per_op.finish_task(victim).unwrap();
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            per_op.submit_task(desc(t)).unwrap();

            // Batched path: resume from `counters.len()` after each stall.
            counters.clear();
            loop {
                let remaining = deps[counters.len()..].iter().copied();
                match batched.add_dependences(desc(t), remaining, &mut counters) {
                    Ok(()) => break,
                    Err(DmuError::Stall(_)) => {
                        let victim = batched.get_ready_task().value.unwrap().descriptor;
                        batched.finish_task(victim).unwrap();
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            batched.submit_task(desc(t)).unwrap();
            assert_eq!(
                counters, reference,
                "per-dep access counters diverged at task {t}"
            );
        }

        // Drain both and compare the full statistics.
        loop {
            let a = per_op.get_ready_task();
            let b = batched.get_ready_task();
            assert_eq!(a, b);
            match a.value {
                Some(t) => {
                    let wa = per_op.finish_task(t.descriptor).unwrap();
                    let wb = batched.finish_task(t.descriptor).unwrap();
                    assert_eq!(wa, wb);
                }
                None => break,
            }
        }
        assert!(per_op.is_drained() && batched.is_drained());
        assert_eq!(per_op.stats(), batched.stats());
        assert_eq!(per_op.peak_occupancy(), batched.peak_occupancy());
    }

    #[test]
    fn long_chain_through_small_dmu() {
        // A 100-task chain through a tiny DMU: tasks are created lazily as
        // space frees up, mimicking the blocking creation loop of the master
        // thread.
        let mut config = small_config();
        config.tat_entries = 8;
        config.tat_ways = 8;
        config.dat_entries = 8;
        config.dat_ways = 8;
        let mut dmu = Dmu::new(config);
        let total = 100u64;
        let mut created = 0u64;
        let mut finished = 0u64;
        let mut running: Option<DescriptorAddr> = None;
        while finished < total {
            // Create as many tasks as possible until a stall.
            while created < total {
                match dmu.create_task(desc(created)) {
                    Ok(_) => {
                        dmu.add_dependence(desc(created), block(0), 4096, DepDirection::InOut)
                            .unwrap();
                        dmu.submit_task(desc(created)).unwrap();
                        created += 1;
                    }
                    Err(DmuError::Stall(_)) => break,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            // Execute one ready task.
            if running.is_none() {
                running = dmu.get_ready_task().value.map(|t| t.descriptor);
            }
            let d = running.take().expect("chain always has one ready task");
            dmu.finish_task(d).unwrap();
            finished += 1;
        }
        assert!(dmu.is_drained());
        assert_eq!(dmu.stats().finishes, total);
        assert!(dmu.stats().stalls > 0, "the tiny DMU must have stalled");
    }

    #[test]
    fn snapshot_round_trip_mid_flight() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        spawn(
            &mut dmu,
            desc(2),
            &[(block(0), DepDirection::In), (block(1), DepDirection::Out)],
        );
        // Consume one ready task so the round trip crosses a non-trivial state:
        // live tasks, pending dependences, and a partially drained ready queue.
        let first = dmu.get_ready_task().value.unwrap().descriptor;
        assert_eq!(first, desc(0));

        let mut bytes = Vec::new();
        dmu.save(&mut bytes);
        let mut reader = Reader::new(&bytes);
        let mut restored = Dmu::load(&mut reader).expect("snapshot must load");
        reader.expect_end("dmu").unwrap();
        assert_eq!(format!("{dmu:?}"), format!("{restored:?}"));

        // Both copies must behave identically from here on.
        for copy in [&mut dmu, &mut restored] {
            copy.finish_task(first).unwrap();
            let mut order = Vec::new();
            while let Some(t) = copy.get_ready_task().value {
                order.push(t.descriptor);
                copy.finish_task(t.descriptor).unwrap();
            }
            assert_eq!(order, vec![desc(1), desc(2)]);
            assert!(copy.is_drained());
        }
        assert_eq!(dmu.stats(), restored.stats());
    }
}

/// Randomized lockstep equivalence suite for the struct-of-arrays DMU.
///
/// `NaiveDmu` keeps the pre-slab reference implementation alive: per-set way
/// vectors for the alias tables, `Vec<Option<Entry>>` task/dependence tables
/// and the node-walking [`NaiveListArray`] — the layouts the slab refactor
/// replaced. Every operation of a randomized workload is replayed on both
/// models and must produce bit-identical results, per-op access counters,
/// errors and aggregate statistics.
///
/// CI runs this module by name: `cargo test --release -p tdm-core dmu_lockstep`.
#[cfg(test)]
mod dmu_lockstep {
    use super::*;
    use crate::list_array::naive::NaiveListArray;
    use tdm_sim::rng::SplitMix64;

    /// One way of a naive alias-table set: the old array-of-structs node.
    #[derive(Debug, Clone, Copy)]
    struct Way {
        addr: u64,
        id: u32,
    }

    /// Occupancy statistics mirroring [`crate::alias::AliasOccupancy`], kept
    /// separately because that struct's sampling fields are private.
    #[derive(Debug, Clone, Copy, Default)]
    struct NaiveAliasStats {
        occupied_set_samples_sum: u64,
        samples: u64,
        peak_entries: usize,
    }

    /// The pre-refactor alias table: a `Vec<Way>` per set, occupancy sampled
    /// with a full O(num_sets) scan on every insert.
    struct NaiveAliasTable {
        sets: Vec<Vec<Way>>,
        ways: usize,
        free_ids: Vec<u32>,
        policy: IndexPolicy,
        stats: NaiveAliasStats,
        valid_entries: usize,
    }

    impl NaiveAliasTable {
        fn new(entries: usize, ways: usize, policy: IndexPolicy) -> Self {
            NaiveAliasTable {
                sets: vec![Vec::new(); entries / ways],
                ways,
                free_ids: (0..entries as u32).rev().collect(),
                policy,
                stats: NaiveAliasStats::default(),
                valid_entries: 0,
            }
        }

        fn set_index(&self, addr: u64, size: u64) -> usize {
            let shift = match self.policy {
                IndexPolicy::Static { low_bit } => low_bit,
                IndexPolicy::Dynamic => {
                    if size <= 1 {
                        0
                    } else {
                        63 - size.next_power_of_two().leading_zeros()
                    }
                }
            };
            ((addr >> shift.min(63)) as usize) % self.sets.len()
        }

        fn lookup(&self, addr: u64, size: u64) -> Option<u32> {
            let set = self.set_index(addr, size);
            self.sets[set]
                .iter()
                .find(|way| way.addr == addr)
                .map(|way| way.id)
        }

        fn insert(&mut self, addr: u64, size: u64) -> Result<u32, AliasError> {
            let set = self.set_index(addr, size);
            if self.sets[set].len() >= self.ways {
                return Err(AliasError::SetConflict);
            }
            let Some(id) = self.free_ids.pop() else {
                return Err(AliasError::Exhausted);
            };
            self.sets[set].push(Way { addr, id });
            self.valid_entries += 1;
            self.stats.peak_entries = self.stats.peak_entries.max(self.valid_entries);
            self.stats.samples += 1;
            self.stats.occupied_set_samples_sum +=
                self.sets.iter().filter(|s| !s.is_empty()).count() as u64;
            Ok(id)
        }

        fn remove(&mut self, addr: u64, size: u64) -> Option<u32> {
            let set = self.set_index(addr, size);
            let pos = self.sets[set].iter().position(|way| way.addr == addr)?;
            let id = self.sets[set].swap_remove(pos).id;
            self.free_ids.push(id);
            self.valid_entries -= 1;
            Some(id)
        }

        fn average_occupied_sets(&self) -> f64 {
            if self.stats.samples == 0 {
                0.0
            } else {
                self.stats.occupied_set_samples_sum as f64 / self.stats.samples as f64
            }
        }
    }

    /// The pre-refactor task table: one `Option<TaskEntry>` box per slot.
    struct NaiveTaskTable {
        entries: Vec<Option<TaskEntry>>,
        live: usize,
        peak: usize,
    }

    impl NaiveTaskTable {
        fn new(capacity: usize) -> Self {
            NaiveTaskTable {
                entries: vec![None; capacity],
                live: 0,
                peak: 0,
            }
        }

        fn get(&self, id: TaskId) -> &TaskEntry {
            self.entries[id.index()].as_ref().expect("live task entry")
        }

        fn get_mut(&mut self, id: TaskId) -> &mut TaskEntry {
            self.entries[id.index()].as_mut().expect("live task entry")
        }

        fn insert(&mut self, id: TaskId, entry: TaskEntry) {
            assert!(self.entries[id.index()].is_none());
            self.entries[id.index()] = Some(entry);
            self.live += 1;
            self.peak = self.peak.max(self.live);
        }

        fn remove(&mut self, id: TaskId) {
            assert!(self.entries[id.index()].take().is_some());
            self.live -= 1;
        }
    }

    /// The pre-refactor dependence table.
    struct NaiveDepTable {
        entries: Vec<Option<DepEntry>>,
        live: usize,
        peak: usize,
    }

    impl NaiveDepTable {
        fn new(capacity: usize) -> Self {
            NaiveDepTable {
                entries: vec![None; capacity],
                live: 0,
                peak: 0,
            }
        }

        fn contains(&self, id: DepId) -> bool {
            self.entries[id.index()].is_some()
        }

        fn get(&self, id: DepId) -> &DepEntry {
            self.entries[id.index()]
                .as_ref()
                .expect("live dependence entry")
        }

        fn get_mut(&mut self, id: DepId) -> &mut DepEntry {
            self.entries[id.index()]
                .as_mut()
                .expect("live dependence entry")
        }

        fn insert(&mut self, id: DepId, entry: DepEntry) {
            assert!(self.entries[id.index()].is_none());
            self.entries[id.index()] = Some(entry);
            self.live += 1;
            self.peak = self.peak.max(self.live);
        }

        fn remove(&mut self, id: DepId) {
            assert!(self.entries[id.index()].take().is_some());
            self.live -= 1;
        }
    }

    /// The reference DMU: identical semantics and access accounting to
    /// [`Dmu`], implemented over the old pointer-chasing storage.
    struct NaiveDmu {
        tat: NaiveAliasTable,
        dat: NaiveAliasTable,
        tasks: NaiveTaskTable,
        deps: NaiveDepTable,
        sla: NaiveListArray,
        dla: NaiveListArray,
        rla: NaiveListArray,
        ready: ReadyQueue,
        stats: DmuStats,
    }

    impl NaiveDmu {
        fn new(config: &DmuConfig) -> Self {
            let rq_capacity = config.ready_queue_entries.max(config.task_table_entries());
            NaiveDmu {
                tat: NaiveAliasTable::new(
                    config.tat_entries,
                    config.tat_ways,
                    IndexPolicy::Static {
                        low_bit: TAT_INDEX_LOW_BIT,
                    },
                ),
                dat: NaiveAliasTable::new(config.dat_entries, config.dat_ways, config.index_policy),
                tasks: NaiveTaskTable::new(config.task_table_entries()),
                deps: NaiveDepTable::new(config.dependence_table_entries()),
                sla: NaiveListArray::new(config.successor_la_entries, config.elems_per_list_entry),
                dla: NaiveListArray::new(config.dependence_la_entries, config.elems_per_list_entry),
                rla: NaiveListArray::new(config.reader_la_entries, config.elems_per_list_entry),
                ready: ReadyQueue::new(rq_capacity),
                stats: DmuStats::default(),
            }
        }

        fn stall(&mut self, reason: StallReason) -> DmuError {
            self.stats.stalls += 1;
            DmuError::Stall(reason)
        }

        fn task_id(&self, desc: DescriptorAddr) -> Result<TaskId, DmuError> {
            self.tat
                .lookup(desc.raw(), 64)
                .map(TaskId::new)
                .ok_or(DmuError::UnknownTask(desc))
        }

        fn record_completion(&mut self, accesses: &AccessCounter) {
            self.stats.total_accesses += accesses.total();
            self.stats.peak_tasks = self.stats.peak_tasks.max(self.tasks.live);
            self.stats.peak_deps = self.stats.peak_deps.max(self.deps.live);
        }

        fn create_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<TaskId>, DmuError> {
            if self.tat.lookup(desc.raw(), 64).is_some() {
                return Err(DmuError::UnknownTask(desc));
            }
            if self.sla.free_entries() < 1 {
                return Err(self.stall(StallReason::SuccessorLaFull));
            }
            if self.dla.free_entries() < 1 {
                return Err(self.stall(StallReason::DependenceLaFull));
            }
            let mut accesses = AccessCounter::new();
            let id = match self.tat.insert(desc.raw(), 64) {
                Ok(raw) => TaskId::new(raw),
                Err(AliasError::SetConflict) => return Err(self.stall(StallReason::TatConflict)),
                Err(AliasError::Exhausted) => return Err(self.stall(StallReason::TatExhausted)),
            };
            accesses.touch(DmuStructure::Tat);
            let successor_list = self.sla.alloc_list().expect("pre-checked SLA space");
            accesses.touch(DmuStructure::SuccessorLa);
            let dependence_list = self.dla.alloc_list().expect("pre-checked DLA space");
            accesses.touch(DmuStructure::DependenceLa);
            self.tasks.insert(
                id,
                TaskEntry {
                    descriptor: desc,
                    num_predecessors: 0,
                    num_successors: 0,
                    successor_list,
                    dependence_list,
                    under_construction: true,
                },
            );
            accesses.touch(DmuStructure::TaskTable);
            self.stats.creates += 1;
            self.record_completion(&accesses);
            Ok(DmuResult::new(id, accesses))
        }

        fn dep_id_for(
            &mut self,
            addr: DepAddr,
            size: u64,
            accesses: &mut AccessCounter,
        ) -> Result<DepId, DmuError> {
            accesses.touch(DmuStructure::Dat);
            if let Some(raw) = self.dat.lookup(addr.raw(), size) {
                return Ok(DepId::new(raw));
            }
            if self.rla.free_entries() < 1 {
                return Err(self.stall(StallReason::ReaderLaFull));
            }
            let raw = match self.dat.insert(addr.raw(), size) {
                Ok(raw) => raw,
                Err(AliasError::SetConflict) => return Err(self.stall(StallReason::DatConflict)),
                Err(AliasError::Exhausted) => return Err(self.stall(StallReason::DatExhausted)),
            };
            let reader_list = self.rla.alloc_list().expect("pre-checked RLA space");
            accesses.touch(DmuStructure::ReaderLa);
            let id = DepId::new(raw);
            self.deps.insert(
                id,
                DepEntry {
                    addr,
                    size,
                    last_writer: None,
                    reader_list,
                },
            );
            accesses.touch(DmuStructure::DependenceTable);
            Ok(id)
        }

        fn add_dependence_requirements(
            &self,
            task: TaskId,
            dep: Option<DepId>,
            dir: DepDirection,
        ) -> (usize, usize, usize) {
            fn bump(pushes: &mut Vec<(TaskId, u32)>, target: TaskId) {
                if let Some(entry) = pushes.iter_mut().find(|entry| entry.0 == target) {
                    entry.1 += 1;
                } else {
                    pushes.push((target, 1));
                }
            }

            let mut succ_pushes: Vec<(TaskId, u32)> = Vec::new();
            let mut needed_rla = 0;
            let needed_dla = usize::from(
                self.dla
                    .push_needs_new_entry(self.tasks.get(task).dependence_list),
            );
            if let Some(dep_id) = dep {
                let entry = self.deps.get(dep_id);
                if let Some(writer) = entry.last_writer {
                    if writer != task {
                        bump(&mut succ_pushes, writer);
                    }
                }
                if dir.writes() {
                    for reader_raw in self.rla.collect(entry.reader_list) {
                        let reader = TaskId::new(reader_raw);
                        if reader == task {
                            continue;
                        }
                        bump(&mut succ_pushes, reader);
                    }
                } else if self.rla.push_needs_new_entry(entry.reader_list) {
                    needed_rla += 1;
                }
            }
            let needed_sla = succ_pushes
                .iter()
                .map(|&(target, pushes)| {
                    self.sla.new_entries_for_pushes(
                        self.tasks.get(target).successor_list,
                        pushes as usize,
                    )
                })
                .sum();
            (needed_sla, needed_dla, needed_rla)
        }

        fn add_dependence(
            &mut self,
            desc: DescriptorAddr,
            addr: DepAddr,
            size: u64,
            dir: DepDirection,
        ) -> Result<DmuResult<()>, DmuError> {
            let task = self.task_id(desc)?;
            let mut accesses = AccessCounter::new();
            accesses.touch(DmuStructure::Tat);

            let existing = self.dat.lookup(addr.raw(), size).map(DepId::new);
            let (needed_sla, needed_dla, needed_rla) =
                self.add_dependence_requirements(task, existing, dir);
            if self.sla.free_entries() < needed_sla {
                return Err(self.stall(StallReason::SuccessorLaFull));
            }
            if self.dla.free_entries() < needed_dla {
                return Err(self.stall(StallReason::DependenceLaFull));
            }
            let new_dep_rla = usize::from(existing.is_none());
            if self.rla.free_entries() < needed_rla + new_dep_rla {
                return Err(self.stall(StallReason::ReaderLaFull));
            }

            let dep = self.dep_id_for(addr, size, &mut accesses)?;

            let dep_list = self.tasks.get(task).dependence_list;
            let walk = self
                .dla
                .push(dep_list, dep.raw())
                .expect("pre-checked DLA space");
            accesses.record(DmuStructure::DependenceLa, walk.entries_touched);

            let last_writer = self.deps.get(dep).last_writer;
            let reader_list = self.deps.get(dep).reader_list;
            accesses.touch(DmuStructure::DependenceTable);
            if let Some(writer) = last_writer {
                if writer != task {
                    let succ_list = self.tasks.get(writer).successor_list;
                    self.tasks.get_mut(writer).num_successors += 1;
                    accesses.touch(DmuStructure::TaskTable);
                    let walk = self
                        .sla
                        .push(succ_list, task.raw())
                        .expect("pre-checked SLA space");
                    accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                    self.tasks.get_mut(task).num_predecessors += 1;
                    accesses.touch(DmuStructure::TaskTable);
                }
            }

            if dir.writes() {
                accesses.record(
                    DmuStructure::ReaderLa,
                    self.rla.entries_spanned(reader_list),
                );
                for reader_raw in self.rla.collect(reader_list) {
                    let reader = TaskId::new(reader_raw);
                    if reader == task {
                        continue;
                    }
                    let succ_list = self.tasks.get(reader).successor_list;
                    self.tasks.get_mut(reader).num_successors += 1;
                    accesses.touch(DmuStructure::TaskTable);
                    let walk = self
                        .sla
                        .push(succ_list, task.raw())
                        .expect("pre-checked SLA space");
                    accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                    self.tasks.get_mut(task).num_predecessors += 1;
                    accesses.touch(DmuStructure::TaskTable);
                }
                let flush_walk = self.rla.flush(reader_list);
                accesses.record(DmuStructure::ReaderLa, flush_walk.entries_touched);
                self.deps.get_mut(dep).last_writer = Some(task);
                accesses.touch(DmuStructure::DependenceTable);
            } else {
                let walk = self
                    .rla
                    .push(reader_list, task.raw())
                    .expect("pre-checked RLA space");
                accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
            }

            self.stats.add_dependences += 1;
            self.record_completion(&accesses);
            Ok(DmuResult::new((), accesses))
        }

        fn submit_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<bool>, DmuError> {
            let mut accesses = AccessCounter::new();
            accesses.touch(DmuStructure::Tat);
            let task = self.task_id(desc)?;
            self.tasks.get_mut(task).under_construction = false;
            accesses.touch(DmuStructure::TaskTable);
            let ready_now = self.tasks.get(task).num_predecessors == 0;
            if ready_now {
                self.ready
                    .push(task)
                    .expect("ready queue sized to capacity");
                accesses.touch(DmuStructure::ReadyQueue);
            }
            self.stats.submits += 1;
            self.record_completion(&accesses);
            Ok(DmuResult::new(ready_now, accesses))
        }

        fn finish_task_into(
            &mut self,
            desc: DescriptorAddr,
            woken: &mut Vec<TaskId>,
        ) -> Result<DmuResult<()>, DmuError> {
            woken.clear();
            let mut accesses = AccessCounter::new();
            accesses.touch(DmuStructure::Tat);
            let task = self.task_id(desc)?;
            let successor_list = self.tasks.get(task).successor_list;
            let dependence_list = self.tasks.get(task).dependence_list;
            accesses.touch(DmuStructure::TaskTable);

            accesses.record(
                DmuStructure::SuccessorLa,
                self.sla.entries_spanned(successor_list),
            );
            for succ_raw in self.sla.collect(successor_list) {
                let succ = TaskId::new(succ_raw);
                let entry = self.tasks.get_mut(succ);
                entry.num_predecessors -= 1;
                let remaining = entry.num_predecessors;
                let under_construction = entry.under_construction;
                accesses.touch(DmuStructure::TaskTable);
                if remaining == 0 && !under_construction {
                    self.ready
                        .push(succ)
                        .expect("ready queue sized to capacity");
                    accesses.touch(DmuStructure::ReadyQueue);
                    woken.push(succ);
                }
            }

            accesses.record(
                DmuStructure::DependenceLa,
                self.dla.entries_spanned(dependence_list),
            );
            for dep_raw in self.dla.collect(dependence_list) {
                let dep = DepId::new(dep_raw);
                if !self.deps.contains(dep) {
                    continue;
                }
                let reader_list = self.deps.get(dep).reader_list;
                let dep_addr = self.deps.get(dep).addr;
                let dep_size = self.deps.get(dep).size;
                let (_, walk) = self.rla.remove(reader_list, task.raw());
                accesses.record(DmuStructure::ReaderLa, walk.entries_touched);

                accesses.touch(DmuStructure::DependenceTable);
                if self.deps.get(dep).last_writer == Some(task) {
                    self.deps.get_mut(dep).last_writer = None;
                }
                if self.deps.get(dep).last_writer.is_none() && self.rla.is_empty(reader_list) {
                    let walk = self.rla.free_list(reader_list);
                    accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
                    self.deps.remove(dep);
                    accesses.touch(DmuStructure::DependenceTable);
                    self.dat.remove(dep_addr.raw(), dep_size);
                    accesses.touch(DmuStructure::Dat);
                }
            }

            let walk = self.sla.free_list(successor_list);
            accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
            let walk = self.dla.free_list(dependence_list);
            accesses.record(DmuStructure::DependenceLa, walk.entries_touched);
            self.tasks.remove(task);
            accesses.touch(DmuStructure::TaskTable);
            self.tat.remove(desc.raw(), 64);
            accesses.touch(DmuStructure::Tat);

            self.stats.finishes += 1;
            self.record_completion(&accesses);
            Ok(DmuResult::new((), accesses))
        }

        fn get_ready_task(&mut self) -> DmuResult<Option<ReadyTask>> {
            let mut accesses = AccessCounter::new();
            accesses.touch(DmuStructure::ReadyQueue);
            let value = self.ready.pop().map(|task| {
                let entry = self.tasks.get(task);
                accesses.touch(DmuStructure::TaskTable);
                ReadyTask {
                    descriptor: entry.descriptor,
                    num_successors: entry.num_successors,
                }
            });
            self.stats.get_readies += 1;
            self.record_completion(&accesses);
            DmuResult::new(value, accesses)
        }

        fn is_drained(&self) -> bool {
            self.tasks.live == 0 && self.deps.live == 0 && self.ready.is_empty()
        }
    }

    /// Applies every op to both models and asserts bit-identical outcomes.
    struct LockstepRig {
        dmu: Dmu,
        naive: NaiveDmu,
        woken_dmu: Vec<TaskId>,
        woken_naive: Vec<TaskId>,
    }

    impl LockstepRig {
        fn new(config: DmuConfig) -> Self {
            LockstepRig {
                naive: NaiveDmu::new(&config),
                dmu: Dmu::new(config),
                woken_dmu: Vec::new(),
                woken_naive: Vec::new(),
            }
        }

        fn create(&mut self, d: DescriptorAddr) -> bool {
            let a = self.dmu.create_task(d);
            let b = self.naive.create_task(d);
            assert_eq!(a, b, "create_task({d}) diverged");
            a.is_ok()
        }

        fn add_dep(&mut self, d: DescriptorAddr, addr: DepAddr, dir: DepDirection) -> bool {
            let a = self.dmu.add_dependence(d, addr, 4096, dir);
            let b = self.naive.add_dependence(d, addr, 4096, dir);
            assert_eq!(a, b, "add_dependence({d}, {addr}) diverged");
            a.is_ok()
        }

        fn submit(&mut self, d: DescriptorAddr) {
            let a = self.dmu.submit_task(d);
            let b = self.naive.submit_task(d);
            assert_eq!(a, b, "submit_task({d}) diverged");
        }

        fn pop_ready(&mut self) -> Option<DescriptorAddr> {
            let a = self.dmu.get_ready_task();
            let b = self.naive.get_ready_task();
            assert_eq!(a, b, "get_ready_task diverged");
            a.value.map(|t| t.descriptor)
        }

        fn finish(&mut self, d: DescriptorAddr) {
            let a = self.dmu.finish_task_into(d, &mut self.woken_dmu);
            let b = self.naive.finish_task_into(d, &mut self.woken_naive);
            assert_eq!(a, b, "finish_task({d}) diverged");
            assert_eq!(
                self.woken_dmu, self.woken_naive,
                "woken list diverged at {d}"
            );
        }

        fn check_aggregates(&self) {
            assert_eq!(self.dmu.stats(), self.naive.stats, "DmuStats diverged");
            let peak = self.dmu.peak_occupancy();
            assert_eq!(peak.tasks, self.naive.tasks.peak);
            assert_eq!(peak.deps, self.naive.deps.peak);
            assert_eq!(peak.tat, self.naive.tat.stats.peak_entries);
            assert_eq!(peak.dat, self.naive.dat.stats.peak_entries);
            assert_eq!(
                self.dmu.dat_average_occupied_sets().to_bits(),
                self.naive.dat.average_occupied_sets().to_bits(),
                "Figure 11 occupancy metric diverged"
            );
        }
    }

    fn lockstep_config() -> DmuConfig {
        DmuConfig {
            tat_entries: 16,
            tat_ways: 4,
            dat_entries: 16,
            dat_ways: 4,
            successor_la_entries: 12,
            dependence_la_entries: 12,
            reader_la_entries: 12,
            elems_per_list_entry: 2,
            ready_queue_entries: 16,
            access_latency: Cycle::new(1),
            index_policy: IndexPolicy::Dynamic,
        }
    }

    /// The main lockstep drive: a reuse-heavy randomized workload through a
    /// deliberately tiny DMU so stalls, overflow chains, entry recycling and
    /// WAR flushes all fire constantly.
    #[test]
    fn slab_dmu_matches_naive_reference_in_randomized_lockstep() {
        for seed in 0..6u64 {
            let mut rng = SplitMix64::new(0xD_17E ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut rig = LockstepRig::new(lockstep_config());
            let mut next_desc = 0u64;
            let mut pending: Vec<DescriptorAddr> = Vec::new();

            let desc_of = |i: u64| DescriptorAddr(0x10_0000 + i * 64);
            let block_of = |i: u64| DepAddr(0x80_0000 + i * 4096);

            for step in 0..2500u64 {
                match rng.next_below(10) {
                    0..=3 => {
                        let d = desc_of(next_desc);
                        if rig.create(d) {
                            next_desc += 1;
                            let ndeps = rng.next_below(4);
                            for _ in 0..ndeps {
                                let addr = block_of(rng.next_below(12));
                                let dir = match rng.next_below(3) {
                                    0 => DepDirection::In,
                                    1 => DepDirection::Out,
                                    _ => DepDirection::InOut,
                                };
                                if !rig.add_dep(d, addr, dir) {
                                    break;
                                }
                            }
                            rig.submit(d);
                        }
                    }
                    4..=6 => {
                        if let Some(d) = rig.pop_ready() {
                            pending.push(d);
                        }
                    }
                    _ => {
                        if !pending.is_empty() {
                            let idx = rng.next_below(pending.len() as u64) as usize;
                            let d = pending.swap_remove(idx);
                            rig.finish(d);
                        }
                    }
                }
                if step % 500 == 0 {
                    rig.check_aggregates();
                }
            }

            // Drain both models completely: finish everything popped, then
            // pop-and-finish until empty (every submitted task becomes ready
            // once its predecessors finish).
            for d in pending.drain(..) {
                rig.finish(d);
            }
            while let Some(d) = rig.pop_ready() {
                rig.finish(d);
            }
            assert!(rig.dmu.is_drained(), "slab DMU not drained (seed {seed})");
            assert!(
                rig.naive.is_drained(),
                "naive DMU not drained (seed {seed})"
            );
            rig.check_aggregates();
            assert!(
                rig.dmu.stats().stalls > 0,
                "the tiny lockstep DMU should have stalled (seed {seed})"
            );
        }
    }

    /// The batched entry point replayed in lockstep against the naive per-op
    /// reference: `add_dependences` must stay bit-identical to a loop of
    /// naive `add_dependence` calls, including stall points and resume.
    #[test]
    fn batched_adds_match_naive_per_op_in_lockstep() {
        let mut rng = SplitMix64::new(0xBA7C4);
        let config = lockstep_config();
        let mut dmu = Dmu::new(config.clone());
        let mut naive = NaiveDmu::new(&config);
        let mut counters = Vec::new();

        let desc_of = |i: u64| DescriptorAddr(0x10_0000 + i * 64);
        let block_of = |i: u64| DepAddr(0x80_0000 + i * 4096);

        for t in 0..300u64 {
            let d = desc_of(t);
            loop {
                let a = dmu.create_task(d);
                let b = naive.create_task(d);
                assert_eq!(a, b);
                if a.is_ok() {
                    break;
                }
                // Both stalled identically: free space and retry.
                let ra = dmu.get_ready_task();
                let rb = naive.get_ready_task();
                assert_eq!(ra, rb);
                let victim = ra.value.expect("a ready task must exist").descriptor;
                let mut wa = Vec::new();
                let mut wb = Vec::new();
                assert_eq!(
                    dmu.finish_task_into(victim, &mut wa),
                    naive.finish_task_into(victim, &mut wb)
                );
                assert_eq!(wa, wb);
            }

            let deps: Vec<(DepAddr, u64, DepDirection)> = (0..rng.next_below(5))
                .map(|_| {
                    let dir = match rng.next_below(3) {
                        0 => DepDirection::In,
                        1 => DepDirection::Out,
                        _ => DepDirection::InOut,
                    };
                    (block_of(rng.next_below(10)), 4096, dir)
                })
                .collect();

            counters.clear();
            let mut naive_applied = 0usize;
            loop {
                let remaining = deps[counters.len()..].iter().copied();
                let batch = dmu.add_dependences(d, remaining, &mut counters);
                // Replay the naive reference per-op up to the batch's
                // progress, comparing each returned access counter.
                while naive_applied < counters.len() {
                    let (addr, size, dir) = deps[naive_applied];
                    let r = naive
                        .add_dependence(d, addr, size, dir)
                        .expect("naive must succeed where the batch succeeded");
                    assert_eq!(
                        r.accesses, counters[naive_applied],
                        "per-dep access counter diverged at task {t}"
                    );
                    naive_applied += 1;
                }
                match batch {
                    Ok(()) => break,
                    Err(e) => {
                        // The naive per-op call must stall identically...
                        let (addr, size, dir) = deps[naive_applied];
                        let ne = naive.add_dependence(d, addr, size, dir).unwrap_err();
                        assert_eq!(e, ne, "stall reason diverged at task {t}");
                        // ...then both free space and resume from where the
                        // batch stopped (`counters.len()`).
                        let ra = dmu.get_ready_task();
                        let rb = naive.get_ready_task();
                        assert_eq!(ra, rb);
                        let victim = ra.value.expect("a ready task must exist").descriptor;
                        let mut wa = Vec::new();
                        let mut wb = Vec::new();
                        assert_eq!(
                            dmu.finish_task_into(victim, &mut wa),
                            naive.finish_task_into(victim, &mut wb)
                        );
                        assert_eq!(wa, wb);
                    }
                }
            }
            assert_eq!(dmu.submit_task(d), naive.submit_task(d));
        }

        // Drain and compare the end state.
        loop {
            let a = dmu.get_ready_task();
            let b = naive.get_ready_task();
            assert_eq!(a, b);
            let Some(t) = a.value else { break };
            let mut wa = Vec::new();
            let mut wb = Vec::new();
            assert_eq!(
                dmu.finish_task_into(t.descriptor, &mut wa),
                naive.finish_task_into(t.descriptor, &mut wb)
            );
            assert_eq!(wa, wb);
        }
        assert!(dmu.is_drained() && naive.is_drained());
        assert_eq!(dmu.stats(), naive.stats);
    }
}
