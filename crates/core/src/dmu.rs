//! The Dependence Management Unit (DMU).
//!
//! This module ties the alias tables, the Task/Dependence Tables, the list
//! arrays and the Ready Queue together into the operational model of
//! Section III-C: `create_task`, `add_dependence` (Algorithm 1),
//! `finish_task` (Algorithm 2) and `get_ready_task`.
//!
//! Two aspects deserve a note:
//!
//! * **Blocking semantics.** TDM instructions have barrier semantics and
//!   block when a DMU structure is full (Section III-D). The DMU model
//!   checks resource availability *before* mutating any state and returns
//!   [`DmuError::Stall`] if an operation cannot complete; the execution
//!   driver keeps the issuing core stalled and retries after the next
//!   `finish_task` frees entries. This keeps every operation atomic.
//!
//! * **Task submission.** The paper's ISA has no explicit "all dependences
//!   added" instruction, but a task whose dependences are all already
//!   satisfied at creation time must still reach the Ready Queue somehow.
//!   This model exposes that commit point as [`Dmu::submit_task`], which the
//!   runtime issues right after the last `add_dependence` of a task (it can
//!   be thought of as a flag on the last `add_dependence`, or as part of
//!   `create_task` for tasks with no dependences). The cost model charges it
//!   a single Task Table access.

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

use crate::access::{AccessCounter, DmuStructure};
use crate::alias::{AliasError, AliasTable};
use crate::config::{DmuConfig, IndexPolicy};
use crate::ids::{DepAddr, DepDirection, DepId, DescriptorAddr, TaskId};
use crate::list_array::ListArray;
use crate::ready_queue::ReadyQueue;
use crate::tables::{DepEntry, DependenceTable, TaskEntry, TaskTable};

/// Index-bit position used for the TAT. Task descriptors are small heap
/// objects, so skipping the byte-offset bits of a cache line spreads
/// consecutive descriptors across sets.
const TAT_INDEX_LOW_BIT: u32 = 6;

/// The DMU structure that caused an instruction to block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// The TAT set for this descriptor address has no free way.
    TatConflict,
    /// The TAT has no free entries at all.
    TatExhausted,
    /// The DAT set for this dependence address has no free way.
    DatConflict,
    /// The DAT has no free entries at all.
    DatExhausted,
    /// The Successor List Array has no free entries.
    SuccessorLaFull,
    /// The Dependence List Array has no free entries.
    DependenceLaFull,
    /// The Reader List Array has no free entries.
    ReaderLaFull,
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StallReason::TatConflict => "TAT set conflict",
            StallReason::TatExhausted => "TAT exhausted",
            StallReason::DatConflict => "DAT set conflict",
            StallReason::DatExhausted => "DAT exhausted",
            StallReason::SuccessorLaFull => "successor list array full",
            StallReason::DependenceLaFull => "dependence list array full",
            StallReason::ReaderLaFull => "reader list array full",
        };
        f.write_str(s)
    }
}

/// Errors returned by DMU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmuError {
    /// The operation cannot proceed until in-flight tasks finish and free
    /// entries in the named structure. No state was modified.
    Stall(StallReason),
    /// The runtime referenced a task descriptor the DMU does not know.
    /// This indicates a protocol violation by the runtime, not a resource
    /// limit.
    UnknownTask(DescriptorAddr),
}

impl std::fmt::Display for DmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmuError::Stall(reason) => write!(f, "DMU stall: {reason}"),
            DmuError::UnknownTask(desc) => write!(f, "unknown task descriptor {desc}"),
        }
    }
}

impl std::error::Error for DmuError {}

/// The value produced by a DMU operation plus the structure accesses it made.
#[derive(Debug, Clone, PartialEq)]
pub struct DmuResult<T> {
    /// The operation's result.
    pub value: T,
    /// SRAM accesses performed, for cycle accounting.
    pub accesses: AccessCounter,
}

impl<T> DmuResult<T> {
    fn new(value: T, accesses: AccessCounter) -> Self {
        DmuResult { value, accesses }
    }

    /// Cycles the DMU spends processing this operation with the given
    /// per-access latency.
    pub fn cost(&self, access_latency: Cycle) -> Cycle {
        self.accesses.cost(access_latency)
    }
}

/// A ready task as returned by `get_ready_task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyTask {
    /// Task descriptor address, used by the runtime to locate the task.
    pub descriptor: DescriptorAddr,
    /// Number of successors registered for the task, exposed so priority
    /// schedulers (e.g. the Successor scheduler of Section VI) can use it.
    pub num_successors: u32,
}

/// Aggregate statistics maintained by the DMU model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DmuStats {
    /// `create_task` operations completed.
    pub creates: u64,
    /// `add_dependence` operations completed.
    pub add_dependences: u64,
    /// `submit_task` operations completed.
    pub submits: u64,
    /// `finish_task` operations completed.
    pub finishes: u64,
    /// `get_ready_task` operations completed.
    pub get_readies: u64,
    /// Operations that returned a stall.
    pub stalls: u64,
    /// Total SRAM accesses across all completed operations.
    pub total_accesses: u64,
    /// Peak number of in-flight tasks.
    pub peak_tasks: usize,
    /// Peak number of in-flight dependences.
    pub peak_deps: usize,
}

/// The Dependence Management Unit.
///
/// # Example
///
/// ```
/// use tdm_core::config::DmuConfig;
/// use tdm_core::dmu::Dmu;
/// use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};
///
/// let mut dmu = Dmu::new(DmuConfig::default());
/// let producer = DescriptorAddr(0x1000);
/// let consumer = DescriptorAddr(0x2000);
///
/// dmu.create_task(producer).unwrap();
/// dmu.add_dependence(producer, DepAddr(0xA000), 4096, DepDirection::Out).unwrap();
/// dmu.submit_task(producer).unwrap();
///
/// dmu.create_task(consumer).unwrap();
/// dmu.add_dependence(consumer, DepAddr(0xA000), 4096, DepDirection::In).unwrap();
/// dmu.submit_task(consumer).unwrap();
///
/// // Only the producer is ready; the consumer waits for it.
/// assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, producer);
/// assert!(dmu.get_ready_task().value.is_none());
///
/// dmu.finish_task(producer).unwrap();
/// assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, consumer);
/// ```
#[derive(Debug, Clone)]
pub struct Dmu {
    config: DmuConfig,
    tat: AliasTable,
    dat: AliasTable,
    tasks: TaskTable,
    deps: DependenceTable,
    sla: ListArray,
    dla: ListArray,
    rla: ListArray,
    ready: ReadyQueue,
    stats: DmuStats,
}

impl Dmu {
    /// Builds a DMU with the given structure geometry.
    ///
    /// The Ready Queue is sized to at least the Task Table capacity so that
    /// Algorithm 2 can never fail to enqueue a ready task (there can never be
    /// more ready tasks than in-flight tasks).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DmuConfig::validate`].
    pub fn new(config: DmuConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid DMU configuration: {msg}");
        }
        let rq_capacity = config.ready_queue_entries.max(config.task_table_entries());
        Dmu {
            tat: AliasTable::new(
                config.tat_entries,
                config.tat_ways,
                IndexPolicy::Static {
                    low_bit: TAT_INDEX_LOW_BIT,
                },
            ),
            dat: AliasTable::new(config.dat_entries, config.dat_ways, config.index_policy),
            tasks: TaskTable::new(config.task_table_entries()),
            deps: DependenceTable::new(config.dependence_table_entries()),
            sla: ListArray::new(config.successor_la_entries, config.elems_per_list_entry),
            dla: ListArray::new(config.dependence_la_entries, config.elems_per_list_entry),
            rla: ListArray::new(config.reader_la_entries, config.elems_per_list_entry),
            ready: ReadyQueue::new(rq_capacity),
            stats: DmuStats::default(),
            config,
        }
    }

    /// The configuration this DMU was built with.
    pub fn config(&self) -> &DmuConfig {
        &self.config
    }

    /// Aggregate statistics collected so far.
    pub fn stats(&self) -> DmuStats {
        self.stats
    }

    /// Number of tasks currently tracked.
    pub fn in_flight_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependences currently tracked.
    pub fn in_flight_deps(&self) -> usize {
        self.deps.len()
    }

    /// Number of tasks currently waiting in the Ready Queue.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Average number of occupied DAT sets over the run (Figure 11 metric).
    pub fn dat_average_occupied_sets(&self) -> f64 {
        self.dat.occupancy().average_occupied_sets()
    }

    /// Current number of occupied DAT sets.
    pub fn dat_occupied_sets(&self) -> usize {
        self.dat.occupied_sets()
    }

    /// Per-access latency configured for every DMU structure.
    pub fn access_latency(&self) -> Cycle {
        self.config.access_latency
    }

    fn stall(&mut self, reason: StallReason) -> DmuError {
        self.stats.stalls += 1;
        DmuError::Stall(reason)
    }

    fn task_id(&self, desc: DescriptorAddr) -> Result<TaskId, DmuError> {
        self.tat
            .lookup(desc.raw(), 64)
            .map(TaskId::new)
            .ok_or(DmuError::UnknownTask(desc))
    }

    fn record_completion(&mut self, accesses: &AccessCounter) {
        self.stats.total_accesses += accesses.total();
        self.stats.peak_tasks = self.stats.peak_tasks.max(self.tasks.len());
        self.stats.peak_deps = self.stats.peak_deps.max(self.deps.len());
    }

    /// `create_task(task_desc)`: registers a new in-flight task.
    ///
    /// Allocates a TAT entry and task ID, initializes the Task Table entry
    /// and reserves empty successor and dependence lists (Section III-C1).
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::Stall`] if the TAT or either list array is full;
    /// no state is modified in that case.
    pub fn create_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<TaskId>, DmuError> {
        // Pre-check every resource so the operation is atomic.
        if self.tat.lookup(desc.raw(), 64).is_some() {
            // Descriptor reuse while still in flight is a runtime bug.
            return Err(DmuError::UnknownTask(desc));
        }
        if self.sla.free_entries() < 1 {
            return Err(self.stall(StallReason::SuccessorLaFull));
        }
        if self.dla.free_entries() < 1 {
            return Err(self.stall(StallReason::DependenceLaFull));
        }
        let mut accesses = AccessCounter::new();
        let id = match self.tat.insert(desc.raw(), 64) {
            Ok(raw) => TaskId::new(raw),
            Err(AliasError::SetConflict) => return Err(self.stall(StallReason::TatConflict)),
            Err(AliasError::Exhausted) => return Err(self.stall(StallReason::TatExhausted)),
        };
        accesses.touch(DmuStructure::Tat);

        let successor_list = self.sla.alloc_list().expect("pre-checked SLA space");
        accesses.touch(DmuStructure::SuccessorLa);
        let dependence_list = self.dla.alloc_list().expect("pre-checked DLA space");
        accesses.touch(DmuStructure::DependenceLa);

        self.tasks.insert(
            id,
            TaskEntry {
                descriptor: desc,
                num_predecessors: 0,
                num_successors: 0,
                successor_list,
                dependence_list,
                under_construction: true,
            },
        );
        accesses.touch(DmuStructure::TaskTable);

        self.stats.creates += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new(id, accesses))
    }

    /// Looks up (or allocates) the Dependence Table entry for `addr`.
    fn dep_id_for(
        &mut self,
        addr: DepAddr,
        size: u64,
        accesses: &mut AccessCounter,
    ) -> Result<DepId, DmuError> {
        accesses.touch(DmuStructure::Dat);
        if let Some(raw) = self.dat.lookup(addr.raw(), size) {
            return Ok(DepId::new(raw));
        }
        // A new dependence needs a DAT entry and a reader list.
        if self.rla.free_entries() < 1 {
            return Err(self.stall(StallReason::ReaderLaFull));
        }
        let raw = match self.dat.insert(addr.raw(), size) {
            Ok(raw) => raw,
            Err(AliasError::SetConflict) => return Err(self.stall(StallReason::DatConflict)),
            Err(AliasError::Exhausted) => return Err(self.stall(StallReason::DatExhausted)),
        };
        let reader_list = self.rla.alloc_list().expect("pre-checked RLA space");
        accesses.touch(DmuStructure::ReaderLa);
        let id = DepId::new(raw);
        self.deps.insert(
            id,
            DepEntry {
                addr,
                size,
                last_writer: None,
                reader_list,
            },
        );
        accesses.touch(DmuStructure::DependenceTable);
        Ok(id)
    }

    /// Counts how many *new* list-array entries Algorithm 1 would need, so
    /// the operation can stall up front instead of half-applying.
    fn add_dependence_requirements(
        &self,
        task: TaskId,
        dep: Option<DepId>,
        dir: DepDirection,
    ) -> (usize, usize, usize) {
        let task_entry = self.tasks.get(task).expect("task id came from TAT");
        let mut needed_sla = 0;
        let mut needed_rla = 0;
        let needed_dla = usize::from(self.dla.push_needs_new_entry(task_entry.dependence_list));

        if let Some(dep_id) = dep {
            let dep_entry = self.deps.get(dep_id).expect("dep id came from DAT");
            if let Some(writer) = dep_entry.last_writer {
                if writer != task {
                    let writer_entry = self.tasks.get(writer).expect("last writer is in flight");
                    if self.sla.push_needs_new_entry(writer_entry.successor_list) {
                        needed_sla += 1;
                    }
                }
            }
            if dir.writes() {
                for reader_raw in self.rla.iter(dep_entry.reader_list) {
                    let reader = TaskId::new(reader_raw);
                    if reader == task {
                        continue;
                    }
                    let reader_entry = self.tasks.get(reader).expect("reader is in flight");
                    if self.sla.push_needs_new_entry(reader_entry.successor_list) {
                        needed_sla += 1;
                    }
                }
            } else if self.rla.push_needs_new_entry(dep_entry.reader_list) {
                needed_rla += 1;
            }
        } else {
            // Brand-new dependence: empty reader list, the task will be its
            // first reader or writer; a read needs one RLA slot which the
            // fresh head entry always provides.
        }
        (needed_sla, needed_dla, needed_rla)
    }

    /// `add_dependence(task_desc, dep_addr, size, direction)`: Algorithm 1.
    ///
    /// Registers a dependence of `desc` on the data at `addr`, creating
    /// RAW/WAR/WAW edges with older in-flight tasks as needed. An `inout`
    /// direction behaves like `out` for graph-construction purposes (it also
    /// reads, but the read edge to the last writer is created for every
    /// direction).
    ///
    /// # Errors
    ///
    /// * [`DmuError::Stall`] if the DAT or a list array lacks space (no state
    ///   is modified).
    /// * [`DmuError::UnknownTask`] if `desc` was never created.
    pub fn add_dependence(
        &mut self,
        desc: DescriptorAddr,
        addr: DepAddr,
        size: u64,
        dir: DepDirection,
    ) -> Result<DmuResult<()>, DmuError> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);
        let task = self.task_id(desc)?;

        // Resolve (or create) the dependence entry first; this can stall on
        // DAT/RLA space but does not yet modify any task state, so it is safe
        // to bail out afterwards as long as we only created the dependence
        // entry (an empty dependence entry is harmless and will be reused by
        // the retry).
        let existing = self.dat.lookup(addr.raw(), size).map(DepId::new);
        let (needed_sla, needed_dla, needed_rla) =
            self.add_dependence_requirements(task, existing, dir);
        if self.sla.free_entries() < needed_sla {
            return Err(self.stall(StallReason::SuccessorLaFull));
        }
        if self.dla.free_entries() < needed_dla {
            return Err(self.stall(StallReason::DependenceLaFull));
        }
        // +1 potential reader-list allocation for a brand-new dependence.
        let new_dep_rla = usize::from(existing.is_none());
        if self.rla.free_entries() < needed_rla + new_dep_rla {
            return Err(self.stall(StallReason::ReaderLaFull));
        }

        let dep = self.dep_id_for(addr, size, &mut accesses)?;

        // Insert depID in the dependence list of taskID.
        let task_entry = self.tasks.get(task).expect("task exists");
        let dep_list = task_entry.dependence_list;
        let walk = self
            .dla
            .push(dep_list, dep.raw())
            .expect("pre-checked DLA space");
        accesses.record(DmuStructure::DependenceLa, walk.entries_touched);

        // RAW / WAW edge from the last writer.
        let dep_entry = self.deps.get(dep).expect("dep exists").clone();
        accesses.touch(DmuStructure::DependenceTable);
        if let Some(writer) = dep_entry.last_writer {
            if writer != task {
                let writer_entry = self.tasks.get_mut(writer).expect("writer in flight");
                let succ_list = writer_entry.successor_list;
                writer_entry.num_successors += 1;
                accesses.touch(DmuStructure::TaskTable);
                let walk = self
                    .sla
                    .push(succ_list, task.raw())
                    .expect("pre-checked SLA space");
                accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                let task_entry = self.tasks.get_mut(task).expect("task exists");
                task_entry.num_predecessors += 1;
                accesses.touch(DmuStructure::TaskTable);
            }
        }

        if dir.writes() {
            // WAR edges from every reader, then this task becomes the last
            // writer and the reader list is flushed. The reader list is
            // walked in place (no `collect()` allocation); the list arrays
            // it mutates inside the loop are disjoint structures.
            accesses.record(
                DmuStructure::ReaderLa,
                self.rla.entries_spanned(dep_entry.reader_list),
            );
            for reader_raw in self.rla.iter(dep_entry.reader_list) {
                let reader = TaskId::new(reader_raw);
                if reader == task {
                    continue;
                }
                let reader_entry = self.tasks.get_mut(reader).expect("reader in flight");
                let succ_list = reader_entry.successor_list;
                reader_entry.num_successors += 1;
                accesses.touch(DmuStructure::TaskTable);
                let walk = self
                    .sla
                    .push(succ_list, task.raw())
                    .expect("pre-checked SLA space");
                accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
                let task_entry = self.tasks.get_mut(task).expect("task exists");
                task_entry.num_predecessors += 1;
                accesses.touch(DmuStructure::TaskTable);
            }
            let flush_walk = self.rla.flush(dep_entry.reader_list);
            accesses.record(DmuStructure::ReaderLa, flush_walk.entries_touched);
            let dep_entry = self.deps.get_mut(dep).expect("dep exists");
            dep_entry.last_writer = Some(task);
            accesses.touch(DmuStructure::DependenceTable);
        } else {
            // Pure input: register this task as a reader.
            let walk = self
                .rla
                .push(dep_entry.reader_list, task.raw())
                .expect("pre-checked RLA space");
            accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
        }

        self.stats.add_dependences += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new((), accesses))
    }

    /// Marks the task as fully constructed. If all its dependences were
    /// already satisfied (predecessor count is zero) it is inserted into the
    /// Ready Queue.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` was never created.
    pub fn submit_task(&mut self, desc: DescriptorAddr) -> Result<DmuResult<bool>, DmuError> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);
        let task = self.task_id(desc)?;
        let entry = self.tasks.get_mut(task).expect("task exists");
        entry.under_construction = false;
        accesses.touch(DmuStructure::TaskTable);
        let ready_now = entry.num_predecessors == 0;
        if ready_now {
            self.ready
                .push(task)
                .expect("ready queue sized to task table capacity");
            accesses.touch(DmuStructure::ReadyQueue);
        }
        self.stats.submits += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new(ready_now, accesses))
    }

    /// `finish_task(task_desc)`: Algorithm 2.
    ///
    /// Wakes up successors (moving newly ready tasks to the Ready Queue),
    /// detaches the task from its dependences, and frees every DMU resource
    /// the task held. Returns the tasks that became ready.
    ///
    /// This convenience wrapper allocates the woken list; the execution
    /// driver's hot path uses [`Dmu::finish_task_into`] with a reusable
    /// buffer instead.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` is not in flight.
    pub fn finish_task(
        &mut self,
        desc: DescriptorAddr,
    ) -> Result<DmuResult<Vec<TaskId>>, DmuError> {
        let mut woken = Vec::new();
        let result = self.finish_task_into(desc, &mut woken)?;
        Ok(DmuResult::new(woken, result.accesses))
    }

    /// Allocation-free variant of [`Dmu::finish_task`]: `woken` is cleared
    /// and filled with the tasks that became ready, so callers can reuse one
    /// buffer across every finish of a run. The successor, dependence and
    /// reader lists are walked in place (no intermediate `collect()`), with
    /// access accounting identical to the allocating path.
    ///
    /// # Errors
    ///
    /// Returns [`DmuError::UnknownTask`] if `desc` is not in flight.
    pub fn finish_task_into(
        &mut self,
        desc: DescriptorAddr,
        woken: &mut Vec<TaskId>,
    ) -> Result<DmuResult<()>, DmuError> {
        woken.clear();
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::Tat);
        let task = self.task_id(desc)?;
        let entry = self.tasks.get(task).expect("task exists").clone();
        accesses.touch(DmuStructure::TaskTable);

        // First loop: wake up successors (walking the successor list in
        // place; it mutates only the task table and the ready queue).
        accesses.record(
            DmuStructure::SuccessorLa,
            self.sla.entries_spanned(entry.successor_list),
        );
        for succ_raw in self.sla.iter(entry.successor_list) {
            let succ = TaskId::new(succ_raw);
            let succ_entry = self
                .tasks
                .get_mut(succ)
                .expect("successors of an in-flight task are in flight");
            debug_assert!(
                succ_entry.num_predecessors > 0,
                "predecessor underflow for {succ}"
            );
            succ_entry.num_predecessors -= 1;
            accesses.touch(DmuStructure::TaskTable);
            if succ_entry.num_predecessors == 0 && !succ_entry.under_construction {
                self.ready
                    .push(succ)
                    .expect("ready queue sized to task table capacity");
                accesses.touch(DmuStructure::ReadyQueue);
                woken.push(succ);
            }
        }

        // Second loop: detach from dependences and free dead ones (walking
        // the dependence list in place; it mutates only the reader list
        // array, the dependence table and the DAT).
        accesses.record(
            DmuStructure::DependenceLa,
            self.dla.entries_spanned(entry.dependence_list),
        );
        for dep_raw in self.dla.iter(entry.dependence_list) {
            let dep = DepId::new(dep_raw);
            let Some(dep_entry) = self.deps.get(dep) else {
                // Already freed via an earlier duplicate in this task's list.
                continue;
            };
            let reader_list = dep_entry.reader_list;
            let dep_addr = dep_entry.addr;
            let dep_size = dep_entry.size;
            let (_, walk) = self.rla.remove(reader_list, task.raw());
            accesses.record(DmuStructure::ReaderLa, walk.entries_touched);

            let dep_entry = self.deps.get_mut(dep).expect("dep exists");
            accesses.touch(DmuStructure::DependenceTable);
            if dep_entry.last_writer == Some(task) {
                dep_entry.last_writer = None;
            }
            if dep_entry.last_writer.is_none() && self.rla.is_empty(reader_list) {
                let walk = self.rla.free_list(reader_list);
                accesses.record(DmuStructure::ReaderLa, walk.entries_touched);
                self.deps.remove(dep);
                accesses.touch(DmuStructure::DependenceTable);
                self.dat.remove(dep_addr.raw(), dep_size);
                accesses.touch(DmuStructure::Dat);
            }
        }

        // Free the task's own resources.
        let walk = self.sla.free_list(entry.successor_list);
        accesses.record(DmuStructure::SuccessorLa, walk.entries_touched);
        let walk = self.dla.free_list(entry.dependence_list);
        accesses.record(DmuStructure::DependenceLa, walk.entries_touched);
        self.tasks.remove(task);
        accesses.touch(DmuStructure::TaskTable);
        self.tat.remove(desc.raw(), 64);
        accesses.touch(DmuStructure::Tat);

        self.stats.finishes += 1;
        self.record_completion(&accesses);
        Ok(DmuResult::new((), accesses))
    }

    /// `get_ready_task()`: pops the oldest ready task, returning its
    /// descriptor address and successor count, or `None` if the Ready Queue
    /// is empty.
    pub fn get_ready_task(&mut self) -> DmuResult<Option<ReadyTask>> {
        let mut accesses = AccessCounter::new();
        accesses.touch(DmuStructure::ReadyQueue);
        let value = self.ready.pop().map(|task| {
            let entry = self.tasks.get(task).expect("ready tasks are in flight");
            accesses.touch(DmuStructure::TaskTable);
            ReadyTask {
                descriptor: entry.descriptor,
                num_successors: entry.num_successors,
            }
        });
        self.stats.get_readies += 1;
        self.record_completion(&accesses);
        DmuResult::new(value, accesses)
    }

    /// True if the DMU holds no in-flight state (all tasks finished).
    pub fn is_drained(&self) -> bool {
        self.tasks.is_empty() && self.deps.is_empty() && self.ready.is_empty()
    }

    /// Peak occupancy of each structure, for reporting.
    pub fn peak_occupancy(&self) -> PeakOccupancy {
        PeakOccupancy {
            tasks: self.tasks.peak(),
            deps: self.deps.peak(),
            successor_la: self.sla.peak_entries_in_use(),
            dependence_la: self.dla.peak_entries_in_use(),
            reader_la: self.rla.peak_entries_in_use(),
            ready_queue: self.ready.peak(),
            tat: self.tat.occupancy().peak_entries,
            dat: self.dat.occupancy().peak_entries,
        }
    }
}

/// Peak occupancy of every DMU structure over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PeakOccupancy {
    /// Peak live Task Table entries.
    pub tasks: usize,
    /// Peak live Dependence Table entries.
    pub deps: usize,
    /// Peak Successor List Array entries in use.
    pub successor_la: usize,
    /// Peak Dependence List Array entries in use.
    pub dependence_la: usize,
    /// Peak Reader List Array entries in use.
    pub reader_la: usize,
    /// Peak Ready Queue occupancy.
    pub ready_queue: usize,
    /// Peak TAT occupancy.
    pub tat: usize,
    /// Peak DAT occupancy.
    pub dat: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DmuConfig {
        DmuConfig {
            tat_entries: 64,
            tat_ways: 8,
            dat_entries: 64,
            dat_ways: 8,
            successor_la_entries: 64,
            dependence_la_entries: 64,
            reader_la_entries: 64,
            elems_per_list_entry: 4,
            ready_queue_entries: 64,
            access_latency: Cycle::new(1),
            index_policy: IndexPolicy::Dynamic,
        }
    }

    fn desc(i: u64) -> DescriptorAddr {
        DescriptorAddr(0x10_0000 + i * 64)
    }

    fn block(i: u64) -> DepAddr {
        DepAddr(0x80_0000 + i * 4096)
    }

    /// Creates a task with the given dependences and submits it.
    fn spawn(dmu: &mut Dmu, d: DescriptorAddr, deps: &[(DepAddr, DepDirection)]) {
        dmu.create_task(d).unwrap();
        for &(addr, dir) in deps {
            dmu.add_dependence(d, addr, 4096, dir).unwrap();
        }
        dmu.submit_task(d).unwrap();
    }

    fn drain_ready(dmu: &mut Dmu) -> Vec<DescriptorAddr> {
        let mut out = Vec::new();
        while let Some(t) = dmu.get_ready_task().value {
            out.push(t.descriptor);
        }
        out
    }

    #[test]
    fn independent_tasks_are_ready_immediately() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::Out)]);
        let ready = drain_ready(&mut dmu);
        assert_eq!(ready, vec![desc(0), desc(1)]);
    }

    #[test]
    fn raw_dependence_orders_producer_before_consumer() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        let woken = dmu.finish_task(desc(0)).unwrap().value;
        assert_eq!(woken.len(), 1);
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn war_dependence_orders_reader_before_writer() {
        let mut dmu = Dmu::new(small_config());
        // Writer W0, then reader R, then writer W1. R must wait for W0; W1
        // must wait for both W0 (WAW) and R (WAR).
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        spawn(&mut dmu, desc(2), &[(block(0), DepDirection::Out)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
        // W1 is not ready yet: the reader is still in flight.
        assert!(dmu.get_ready_task().value.is_none());
        dmu.finish_task(desc(1)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(2)]);
        dmu.finish_task(desc(2)).unwrap();
        assert!(dmu.is_drained());
    }

    #[test]
    fn waw_dependence_serializes_writers() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::Out)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn multiple_readers_run_in_parallel() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        for i in 1..=5 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        dmu.get_ready_task(); // producer
        dmu.finish_task(desc(0)).unwrap();
        let ready = drain_ready(&mut dmu);
        assert_eq!(ready.len(), 5, "all readers become ready together");
    }

    #[test]
    fn successor_counts_are_reported() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        for i in 1..=3 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        let ready = dmu.get_ready_task().value.unwrap();
        assert_eq!(ready.descriptor, desc(0));
        assert_eq!(ready.num_successors, 3);
    }

    #[test]
    fn diamond_dependence_pattern() {
        // A writes X; B and C read X and write Y_b / Y_c; D reads both.
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(
            &mut dmu,
            desc(1),
            &[(block(0), DepDirection::In), (block(1), DepDirection::Out)],
        );
        spawn(
            &mut dmu,
            desc(2),
            &[(block(0), DepDirection::In), (block(2), DepDirection::Out)],
        );
        spawn(
            &mut dmu,
            desc(3),
            &[(block(1), DepDirection::In), (block(2), DepDirection::In)],
        );
        assert_eq!(drain_ready(&mut dmu), vec![desc(0)]);
        dmu.finish_task(desc(0)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(1), desc(2)]);
        dmu.finish_task(desc(1)).unwrap();
        assert!(dmu.get_ready_task().value.is_none(), "D waits for C too");
        dmu.finish_task(desc(2)).unwrap();
        assert_eq!(drain_ready(&mut dmu), vec![desc(3)]);
        dmu.finish_task(desc(3)).unwrap();
        assert!(dmu.is_drained());
    }

    #[test]
    fn inout_behaves_like_a_chain() {
        let mut dmu = Dmu::new(small_config());
        for i in 0..4 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::InOut)]);
        }
        for i in 0..4 {
            let ready = drain_ready(&mut dmu);
            assert_eq!(ready, vec![desc(i)], "chain executes strictly in order");
            dmu.finish_task(desc(i)).unwrap();
        }
        assert!(dmu.is_drained());
    }

    #[test]
    fn finished_writer_does_not_create_edges() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        dmu.get_ready_task();
        dmu.finish_task(desc(0)).unwrap();
        // A later reader of the block must be immediately ready: the writer
        // already finished and its DMU state is gone.
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        assert_eq!(drain_ready(&mut dmu), vec![desc(1)]);
    }

    #[test]
    fn resources_are_reclaimed_after_finish() {
        let mut dmu = Dmu::new(small_config());
        for wave in 0..10u64 {
            for i in 0..8u64 {
                let d = desc(wave * 8 + i);
                spawn(&mut dmu, d, &[(block(i), DepDirection::InOut)]);
            }
            let ready = drain_ready(&mut dmu);
            for d in ready {
                dmu.finish_task(d).unwrap();
            }
        }
        // 80 tasks flowed through a 64-entry DMU without ever stalling
        // because each wave drained before the next.
        assert!(dmu.is_drained());
        assert_eq!(dmu.stats().creates, 80);
        assert_eq!(dmu.stats().stalls, 0);
    }

    #[test]
    fn create_stalls_when_tat_is_full_and_recovers() {
        let mut config = small_config();
        config.tat_entries = 8;
        config.tat_ways = 8;
        let mut dmu = Dmu::new(config);
        for i in 0..8 {
            spawn(&mut dmu, desc(i), &[]);
        }
        let err = dmu.create_task(desc(100)).unwrap_err();
        assert!(matches!(err, DmuError::Stall(_)));
        assert_eq!(dmu.stats().stalls, 1);
        // Finishing one task frees an entry and the create succeeds.
        let victim = dmu.get_ready_task().value.unwrap().descriptor;
        dmu.finish_task(victim).unwrap();
        assert!(dmu.create_task(desc(100)).is_ok());
    }

    #[test]
    fn add_dependence_stalls_when_dat_is_full() {
        let mut config = small_config();
        config.dat_entries = 8;
        config.dat_ways = 8;
        let mut dmu = Dmu::new(config);
        dmu.create_task(desc(0)).unwrap();
        for i in 0..8 {
            dmu.add_dependence(desc(0), block(i), 4096, DepDirection::Out)
                .unwrap();
        }
        let err = dmu
            .add_dependence(desc(0), block(99), 4096, DepDirection::Out)
            .unwrap_err();
        assert!(matches!(
            err,
            DmuError::Stall(StallReason::DatConflict) | DmuError::Stall(StallReason::DatExhausted)
        ));
    }

    #[test]
    fn stalled_operation_leaves_state_consistent() {
        let mut config = small_config();
        config.successor_la_entries = 2;
        let mut dmu = Dmu::new(config);
        // Task 0 and 1 use both SLA entries for their (empty) successor lists.
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[]);
        // Creating a third task needs a new successor list and must stall.
        let err = dmu.create_task(desc(2)).unwrap_err();
        assert_eq!(err, DmuError::Stall(StallReason::SuccessorLaFull));
        // The failed create left nothing behind: finishing the ready tasks
        // drains the DMU completely.
        for d in drain_ready(&mut dmu) {
            dmu.finish_task(d).unwrap();
        }
        assert!(dmu.is_drained());
    }

    #[test]
    fn unknown_task_is_reported() {
        let mut dmu = Dmu::new(small_config());
        let err = dmu
            .add_dependence(desc(7), block(0), 64, DepDirection::In)
            .unwrap_err();
        assert_eq!(err, DmuError::UnknownTask(desc(7)));
        assert!(matches!(
            dmu.finish_task(desc(7)),
            Err(DmuError::UnknownTask(_))
        ));
        assert!(matches!(
            dmu.submit_task(desc(7)),
            Err(DmuError::UnknownTask(_))
        ));
    }

    #[test]
    fn duplicate_descriptor_rejected_while_in_flight() {
        let mut dmu = Dmu::new(small_config());
        dmu.create_task(desc(0)).unwrap();
        assert!(dmu.create_task(desc(0)).is_err());
    }

    #[test]
    fn access_counts_reflect_list_lengths() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        // Many readers: the finish of the producer must walk a long
        // successor list, so its access count grows with the reader count.
        for i in 1..=10 {
            spawn(&mut dmu, desc(i), &[(block(0), DepDirection::In)]);
        }
        dmu.get_ready_task();
        let few_succ = {
            let mut other = Dmu::new(small_config());
            spawn(&mut other, desc(0), &[(block(0), DepDirection::Out)]);
            spawn(&mut other, desc(1), &[(block(0), DepDirection::In)]);
            other.get_ready_task();
            other.finish_task(desc(0)).unwrap().accesses.total()
        };
        let many_succ = dmu.finish_task(desc(0)).unwrap().accesses.total();
        assert!(
            many_succ > few_succ,
            "finishing a task with 10 successors ({many_succ} accesses) should cost more than with 1 ({few_succ})"
        );
    }

    #[test]
    fn cost_scales_with_access_latency() {
        let mut dmu = Dmu::new(small_config());
        let result = dmu.create_task(desc(0)).unwrap();
        assert_eq!(
            result.cost(Cycle::new(4)),
            Cycle::new(result.accesses.total() * 4)
        );
    }

    #[test]
    fn stats_count_operations() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        dmu.get_ready_task();
        dmu.finish_task(desc(0)).unwrap();
        let stats = dmu.stats();
        assert_eq!(stats.creates, 2);
        assert_eq!(stats.add_dependences, 2);
        assert_eq!(stats.submits, 2);
        assert_eq!(stats.finishes, 1);
        assert_eq!(stats.get_readies, 1);
        assert!(stats.total_accesses > 0);
        assert_eq!(stats.peak_tasks, 2);
        assert_eq!(stats.peak_deps, 1);
    }

    #[test]
    fn peak_occupancy_is_reported() {
        let mut dmu = Dmu::new(small_config());
        spawn(&mut dmu, desc(0), &[(block(0), DepDirection::Out)]);
        spawn(&mut dmu, desc(1), &[(block(0), DepDirection::In)]);
        let peak = dmu.peak_occupancy();
        assert_eq!(peak.tasks, 2);
        assert_eq!(peak.deps, 1);
        assert!(peak.successor_la >= 2);
        assert!(peak.tat >= 2);
    }

    #[test]
    fn long_chain_through_small_dmu() {
        // A 100-task chain through a tiny DMU: tasks are created lazily as
        // space frees up, mimicking the blocking creation loop of the master
        // thread.
        let mut config = small_config();
        config.tat_entries = 8;
        config.tat_ways = 8;
        config.dat_entries = 8;
        config.dat_ways = 8;
        let mut dmu = Dmu::new(config);
        let total = 100u64;
        let mut created = 0u64;
        let mut finished = 0u64;
        let mut running: Option<DescriptorAddr> = None;
        while finished < total {
            // Create as many tasks as possible until a stall.
            while created < total {
                match dmu.create_task(desc(created)) {
                    Ok(_) => {
                        dmu.add_dependence(desc(created), block(0), 4096, DepDirection::InOut)
                            .unwrap();
                        dmu.submit_task(desc(created)).unwrap();
                        created += 1;
                    }
                    Err(DmuError::Stall(_)) => break,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            // Execute one ready task.
            if running.is_none() {
                running = dmu.get_ready_task().value.map(|t| t.descriptor);
            }
            let d = running.take().expect("chain always has one ready task");
            dmu.finish_task(d).unwrap();
            finished += 1;
        }
        assert!(dmu.is_drained());
        assert_eq!(dmu.stats().finishes, total);
        assert!(dmu.stats().stalls > 0, "the tiny DMU must have stalled");
    }
}
