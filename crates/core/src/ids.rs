//! Identifier newtypes used by the DMU and the runtime ↔ DMU interface.
//!
//! The runtime system identifies tasks by the (64-bit) address of their task
//! descriptor and dependences by the address of the data they touch. Inside
//! the DMU both are renamed to small internal IDs via the alias tables
//! (Section III-B1), which lets the Task/Dependence Tables be direct-mapped
//! SRAMs and shrinks the list arrays by ~5.8× (11-bit IDs instead of 64-bit
//! addresses). These newtypes keep the two ID spaces, and the two address
//! spaces, statically distinct.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Internal DMU identifier of an in-flight task: an index into the Task
/// Table. With the paper's configuration (2048 entries) it fits in 11 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task ID from a raw table index.
    pub const fn new(raw: u32) -> Self {
        TaskId(raw)
    }

    /// The raw table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Internal DMU identifier of an in-flight dependence: an index into the
/// Dependence Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DepId(u32);

impl DepId {
    /// Creates a dependence ID from a raw table index.
    pub const fn new(raw: u32) -> Self {
        DepId(raw)
    }

    /// The raw table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Address of a task descriptor in the runtime system's address space. This
/// is what the runtime passes to `create_task` / `finish_task` and what
/// `get_ready_task` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DescriptorAddr(pub u64);

impl DescriptorAddr {
    /// The raw 64-bit address.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DescriptorAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "desc:{:#x}", self.0)
    }
}

impl From<u64> for DescriptorAddr {
    fn from(raw: u64) -> Self {
        DescriptorAddr(raw)
    }
}

/// Base address of a data dependence (the storage region named in a
/// `depend(in/out/inout: ...)` clause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DepAddr(pub u64);

impl DepAddr {
    /// The raw 64-bit address.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DepAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dep:{:#x}", self.0)
    }
}

impl From<u64> for DepAddr {
    fn from(raw: u64) -> Self {
        DepAddr(raw)
    }
}

/// Direction of a dependence as annotated by the programmer.
///
/// OpenMP 4.0 distinguishes `in`, `out` and `inout`; for dependence-tracking
/// purposes `inout` behaves as an `in` followed by an `out` on the same
/// address, which is exactly how the DMU (and our software baseline) treat
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepDirection {
    /// The task reads the data (RAW edges from the last writer).
    In,
    /// The task writes the data (WAR edges from readers, WAW from the last
    /// writer).
    Out,
    /// The task both reads and writes the data.
    InOut,
}

impl DepDirection {
    /// True if the task reads the dependence.
    pub fn reads(self) -> bool {
        matches!(self, DepDirection::In | DepDirection::InOut)
    }

    /// True if the task writes the dependence.
    pub fn writes(self) -> bool {
        matches!(self, DepDirection::Out | DepDirection::InOut)
    }
}

impl fmt::Display for DepDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepDirection::In => "in",
            DepDirection::Out => "out",
            DepDirection::InOut => "inout",
        };
        f.write_str(s)
    }
}

// Snapshot support: IDs and addresses persist as their raw integers,
// directions as a one-byte tag.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for TaskId {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(TaskId(u32::load(r)?))
    }
}

impl Persist for DepId {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DepId(u32::load(r)?))
    }
}

impl Persist for DescriptorAddr {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DescriptorAddr(u64::load(r)?))
    }
}

impl Persist for DepAddr {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DepAddr(u64::load(r)?))
    }
}

impl Persist for DepDirection {
    fn save(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            DepDirection::In => 0,
            DepDirection::Out => 1,
            DepDirection::InOut => 2,
        };
        tag.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(DepDirection::In),
            1 => Ok(DepDirection::Out),
            2 => Ok(DepDirection::InOut),
            other => Err(SnapshotError::Corrupt {
                context: format!("dependence-direction tag {other} (expected 0..=2)"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_and_dep_ids_are_distinct_types_with_indices() {
        let t = TaskId::new(5);
        let d = DepId::new(5);
        assert_eq!(t.index(), 5);
        assert_eq!(d.index(), 5);
        assert_eq!(t.raw(), 5);
        assert_eq!(t.to_string(), "T5");
        assert_eq!(d.to_string(), "D5");
    }

    #[test]
    fn addresses_display_in_hex() {
        let desc = DescriptorAddr(0x8AB0_4600);
        let dep = DepAddr(0x0BCE_0860);
        assert!(desc.to_string().contains("0x8ab04600"));
        assert!(dep.to_string().contains("0xbce0860"));
    }

    #[test]
    fn address_conversions_from_u64() {
        let desc: DescriptorAddr = 42u64.into();
        let dep: DepAddr = 43u64.into();
        assert_eq!(desc.raw(), 42);
        assert_eq!(dep.raw(), 43);
    }

    #[test]
    fn direction_read_write_predicates() {
        assert!(DepDirection::In.reads());
        assert!(!DepDirection::In.writes());
        assert!(!DepDirection::Out.reads());
        assert!(DepDirection::Out.writes());
        assert!(DepDirection::InOut.reads());
        assert!(DepDirection::InOut.writes());
    }

    #[test]
    fn direction_display() {
        assert_eq!(DepDirection::In.to_string(), "in");
        assert_eq!(DepDirection::Out.to_string(), "out");
        assert_eq!(DepDirection::InOut.to_string(), "inout");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(TaskId::new(3) < TaskId::new(7));
        assert!(DepId::new(0) < DepId::new(1));
    }
}
