//! The TDM ISA extension.
//!
//! Section III-A defines four new instructions through which the runtime
//! system talks to the DMU: `create_task`, `add_dependence`, `finish_task`
//! and `get_ready_task`. This module represents them as a data type so that
//! backends, traces and tests can treat runtime → DMU traffic uniformly, and
//! provides a dispatcher that executes an instruction against a [`Dmu`].
//!
//! The [`TdmInstruction::SubmitTask`] variant is the explicit commit point
//! discussed in [`crate::dmu`]: the paper folds it into the creation
//! sequence, this model makes it visible.

use serde::{Deserialize, Serialize};

use crate::dmu::{Dmu, DmuError, DmuResult, ReadyTask};
use crate::ids::{DepAddr, DepDirection, DescriptorAddr, TaskId};

/// One TDM ISA instruction, as issued by the runtime system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TdmInstruction {
    /// `create_task(task_desc)`.
    CreateTask {
        /// Address of the new task's descriptor.
        descriptor: DescriptorAddr,
    },
    /// `add_dependence(task_desc, dep_addr, size, direction)`.
    AddDependence {
        /// Address of the task's descriptor.
        descriptor: DescriptorAddr,
        /// Base address of the dependence.
        address: DepAddr,
        /// Size of the dependence in bytes.
        size: u64,
        /// Direction annotated by the programmer.
        direction: DepDirection,
    },
    /// Commit point after the last `add_dependence` of a task.
    SubmitTask {
        /// Address of the task's descriptor.
        descriptor: DescriptorAddr,
    },
    /// `finish_task(task_desc)`.
    FinishTask {
        /// Address of the finished task's descriptor.
        descriptor: DescriptorAddr,
    },
    /// `get_ready_task()`.
    GetReadyTask,
}

impl TdmInstruction {
    /// A short mnemonic, for traces and debugging.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TdmInstruction::CreateTask { .. } => "create_task",
            TdmInstruction::AddDependence { .. } => "add_dependence",
            TdmInstruction::SubmitTask { .. } => "submit_task",
            TdmInstruction::FinishTask { .. } => "finish_task",
            TdmInstruction::GetReadyTask => "get_ready_task",
        }
    }
}

impl std::fmt::Display for TdmInstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdmInstruction::CreateTask { descriptor } => write!(f, "create_task({descriptor})"),
            TdmInstruction::AddDependence {
                descriptor,
                address,
                size,
                direction,
            } => write!(
                f,
                "add_dependence({descriptor}, {address}, {size}, {direction})"
            ),
            TdmInstruction::SubmitTask { descriptor } => write!(f, "submit_task({descriptor})"),
            TdmInstruction::FinishTask { descriptor } => write!(f, "finish_task({descriptor})"),
            TdmInstruction::GetReadyTask => write!(f, "get_ready_task()"),
        }
    }
}

/// The result of executing one [`TdmInstruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum TdmResponse {
    /// `create_task` completed; the DMU allocated this internal ID.
    Created(TaskId),
    /// `add_dependence` completed.
    DependenceAdded,
    /// `submit_task` completed; `true` if the task went straight to the
    /// Ready Queue.
    Submitted(bool),
    /// `finish_task` completed; these tasks became ready.
    Finished(Vec<TaskId>),
    /// `get_ready_task` completed; `None` means the Ready Queue was empty.
    Ready(Option<ReadyTask>),
}

/// Executes `instruction` against `dmu`, returning the response and the
/// structure accesses performed.
///
/// # Errors
///
/// Propagates [`DmuError`] from the underlying operation (stalls and
/// protocol violations). `get_ready_task` never fails.
pub fn execute(
    dmu: &mut Dmu,
    instruction: TdmInstruction,
) -> Result<DmuResult<TdmResponse>, DmuError> {
    match instruction {
        TdmInstruction::CreateTask { descriptor } => {
            let r = dmu.create_task(descriptor)?;
            Ok(DmuResult {
                value: TdmResponse::Created(r.value),
                accesses: r.accesses,
            })
        }
        TdmInstruction::AddDependence {
            descriptor,
            address,
            size,
            direction,
        } => {
            let r = dmu.add_dependence(descriptor, address, size, direction)?;
            Ok(DmuResult {
                value: TdmResponse::DependenceAdded,
                accesses: r.accesses,
            })
        }
        TdmInstruction::SubmitTask { descriptor } => {
            let r = dmu.submit_task(descriptor)?;
            Ok(DmuResult {
                value: TdmResponse::Submitted(r.value),
                accesses: r.accesses,
            })
        }
        TdmInstruction::FinishTask { descriptor } => {
            let r = dmu.finish_task(descriptor)?;
            Ok(DmuResult {
                value: TdmResponse::Finished(r.value),
                accesses: r.accesses,
            })
        }
        TdmInstruction::GetReadyTask => {
            let r = dmu.get_ready_task();
            Ok(DmuResult {
                value: TdmResponse::Ready(r.value),
                accesses: r.accesses,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DmuConfig;

    #[test]
    fn instruction_stream_builds_and_drains_a_graph() {
        let mut dmu = Dmu::new(DmuConfig::default());
        let producer = DescriptorAddr(0x1000);
        let consumer = DescriptorAddr(0x2000);
        let data = DepAddr(0xA000);

        let program = vec![
            TdmInstruction::CreateTask {
                descriptor: producer,
            },
            TdmInstruction::AddDependence {
                descriptor: producer,
                address: data,
                size: 4096,
                direction: DepDirection::Out,
            },
            TdmInstruction::SubmitTask {
                descriptor: producer,
            },
            TdmInstruction::CreateTask {
                descriptor: consumer,
            },
            TdmInstruction::AddDependence {
                descriptor: consumer,
                address: data,
                size: 4096,
                direction: DepDirection::In,
            },
            TdmInstruction::SubmitTask {
                descriptor: consumer,
            },
        ];
        for instr in program {
            execute(&mut dmu, instr).unwrap();
        }

        let r = execute(&mut dmu, TdmInstruction::GetReadyTask).unwrap();
        match r.value {
            TdmResponse::Ready(Some(t)) => assert_eq!(t.descriptor, producer),
            other => panic!("unexpected response {other:?}"),
        }
        execute(
            &mut dmu,
            TdmInstruction::FinishTask {
                descriptor: producer,
            },
        )
        .unwrap();
        let r = execute(&mut dmu, TdmInstruction::GetReadyTask).unwrap();
        match r.value {
            TdmResponse::Ready(Some(t)) => assert_eq!(t.descriptor, consumer),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn mnemonics_and_display() {
        let i = TdmInstruction::AddDependence {
            descriptor: DescriptorAddr(0x10),
            address: DepAddr(0x20),
            size: 64,
            direction: DepDirection::In,
        };
        assert_eq!(i.mnemonic(), "add_dependence");
        assert!(i.to_string().contains("add_dependence"));
        assert_eq!(TdmInstruction::GetReadyTask.mnemonic(), "get_ready_task");
        assert_eq!(
            TdmInstruction::CreateTask {
                descriptor: DescriptorAddr(1)
            }
            .mnemonic(),
            "create_task"
        );
        assert_eq!(
            TdmInstruction::SubmitTask {
                descriptor: DescriptorAddr(1)
            }
            .mnemonic(),
            "submit_task"
        );
        assert_eq!(
            TdmInstruction::FinishTask {
                descriptor: DescriptorAddr(1)
            }
            .mnemonic(),
            "finish_task"
        );
    }

    #[test]
    fn errors_are_propagated() {
        let mut dmu = Dmu::new(DmuConfig::default());
        let err = execute(
            &mut dmu,
            TdmInstruction::FinishTask {
                descriptor: DescriptorAddr(0xDEAD),
            },
        )
        .unwrap_err();
        assert!(matches!(err, DmuError::UnknownTask(_)));
    }
}
