//! # tdm-core — the Dependence Management Unit (DMU)
//!
//! This crate implements the hardware contribution of *Architectural Support
//! for Task Dependence Management with Flexible Software Scheduling*
//! (HPCA 2018): the **DMU**, a centralized unit that tracks in-flight tasks
//! and the dependences between them on behalf of a task-based data-flow
//! runtime, while leaving scheduling decisions to software.
//!
//! The DMU is composed of (Figure 3 of the paper):
//!
//! * the **Task Alias Table** and **Dependence Alias Table** ([`alias`]),
//!   set-associative directories that rename 64-bit descriptor / dependence
//!   addresses into small internal IDs, with the dynamic index-bit selection
//!   of Section III-B1;
//! * the **Task Table** and **Dependence Table** ([`tables`]), direct-mapped
//!   SRAMs holding per-task and per-dependence bookkeeping;
//! * three **list arrays** ([`list_array`]) storing successor, dependence and
//!   reader lists in an inode-like chained layout (Figure 5);
//! * the **Ready Queue** ([`ready_queue`]), a FIFO of tasks whose
//!   dependences are all satisfied.
//!
//! The operational model of Section III-C — `create_task`, `add_dependence`
//! (Algorithm 1), `finish_task` (Algorithm 2) and `get_ready_task` — lives in
//! [`dmu`], with the ISA-level view in [`isa`]. Every operation reports the
//! SRAM accesses it performed ([`access`]) so the timing simulation can
//! charge DMU latency faithfully, and [`area`] reproduces the storage
//! arithmetic behind Table III.
//!
//! # Example
//!
//! ```
//! use tdm_core::config::DmuConfig;
//! use tdm_core::dmu::Dmu;
//! use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};
//!
//! let mut dmu = Dmu::new(DmuConfig::default());
//! let producer = DescriptorAddr(0x1000);
//! let consumer = DescriptorAddr(0x2000);
//!
//! dmu.create_task(producer)?;
//! dmu.add_dependence(producer, DepAddr(0xA000), 4096, DepDirection::Out)?;
//! dmu.submit_task(producer)?;
//!
//! dmu.create_task(consumer)?;
//! dmu.add_dependence(consumer, DepAddr(0xA000), 4096, DepDirection::In)?;
//! dmu.submit_task(consumer)?;
//!
//! assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, producer);
//! dmu.finish_task(producer)?;
//! assert_eq!(dmu.get_ready_task().value.unwrap().descriptor, consumer);
//! # Ok::<(), tdm_core::dmu::DmuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod alias;
pub mod area;
pub mod config;
pub mod dmu;
pub mod ids;
pub mod isa;
pub mod list_array;
pub mod ready_queue;
pub mod tables;

pub use access::{AccessCounter, DmuStructure};
pub use alias::{AliasError, AliasTable};
pub use area::DmuStorageReport;
pub use config::{DmuConfig, IndexPolicy};
pub use dmu::{Dmu, DmuError, DmuResult, DmuStats, ReadyTask, StallReason};
pub use ids::{DepAddr, DepDirection, DepId, DescriptorAddr, TaskId};
pub use isa::{TdmInstruction, TdmResponse};
