//! Inode-style list arrays (Figure 5 of the paper).
//!
//! The DMU stores three kinds of per-task / per-dependence lists (successors,
//! dependences and readers) in SRAM *list arrays*. Each list-array entry holds
//! a fixed number of elements (8 in the selected design) plus a `Next` field
//! pointing at the entry where the list continues — a layout the paper likens
//! to UNIX filesystem inodes. A list occupies one or more entries; when it
//! outgrows its tail entry a free entry is chained on.
//!
//! [`ListArray`] models one such structure: it tracks which entries are free,
//! enforces the capacity limit (an allocation failure is what makes a TDM
//! instruction block, Section III-D), and reports how many entries an
//! operation touched so the DMU can charge the right number of SRAM accesses.

use serde::{Deserialize, Serialize};

/// Handle to a list stored in a [`ListArray`]: the index of its head entry.
///
/// Handles are only meaningful for the list array that produced them and
/// become dangling after [`ListArray::free_list`]; the DMU stores them in the
/// Task and Dependence Tables exactly like the hardware stores head pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ListHandle(usize);

impl ListHandle {
    /// Raw head-entry index (used by the area model and debug output).
    pub fn index(self) -> usize {
        self.0
    }

    /// Crate-internal constructor used by the struct-of-arrays tables to
    /// fill unoccupied column slots with a placeholder; such placeholders
    /// are never handed out and never dereferenced.
    pub(crate) const fn from_raw(index: usize) -> Self {
        ListHandle(index)
    }
}

/// Error returned when the list array has no free entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListArrayFull;

impl std::fmt::Display for ListArrayFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "list array has no free entries")
    }
}

impl std::error::Error for ListArrayFull {}

/// Sentinel in the `next` column marking the end of a chain (the hardware
/// encodes this by pointing the entry at itself).
const NO_NEXT: u32 = u32::MAX;

/// Result of an operation that walked a list: how many list-array entries
/// were read or written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Walk {
    /// Entries touched by the operation.
    pub entries_touched: u64,
}

/// A fixed-capacity SRAM array holding multiple variable-length lists.
///
/// Storage is struct-of-arrays: instead of one heap-allocated node per entry,
/// the array keeps parallel per-entry columns (`lens`, `next`, cached
/// `tail`/`chain_entries`, `allocated`) plus one flat element arena in which
/// entry `i` owns the fixed-width run starting at `i * elems_per_entry`.
/// Chain walks and element scans therefore stream through contiguous memory
/// instead of chasing per-entry `Vec` allocations; the modeled [`Walk`]
/// counts are byte-for-byte what the old node layout reported (enforced by
/// `tail_of_naive` plus the lockstep tests against `naive::NaiveListArray`).
///
/// # Example
///
/// ```
/// use tdm_core::list_array::ListArray;
///
/// let mut la = ListArray::new(4, 2); // 4 entries, 2 elements each
/// let list = la.alloc_list().unwrap();
/// la.push(list, 10).unwrap();
/// la.push(list, 11).unwrap();
/// la.push(list, 12).unwrap(); // spills into a second entry
/// assert_eq!(la.collect(list), vec![10, 11, 12]);
/// assert_eq!(la.entries_in_use(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ListArray {
    /// Flat element arena; entry `i` owns `arena[i*epe .. i*epe + lens[i]]`.
    /// Slots past an entry's length are stale (the hardware marks invalid
    /// slots with all-ones; we just ignore them).
    arena: Vec<u32>,
    /// Number of valid elements in each entry.
    lens: Vec<u32>,
    /// Continuation entry per entry, or [`NO_NEXT`] if the list ends there.
    next: Vec<u32>,
    /// Cached index of the chain's tail entry. Only meaningful on a list's
    /// *head* entry; lets `push` append in O(1) instead of re-walking the
    /// chain. This is a simulator-side shortcut: the modeled hardware still
    /// walks the chain, which is why walk *counts* are derived from
    /// `chain_entries` below and stay exactly what a linear walk reports.
    tail: Vec<u32>,
    /// Cached number of entries in each chain (head included). Only
    /// meaningful on a head entry.
    chain_entries: Vec<u64>,
    /// Whether each entry is currently part of some list.
    allocated: Vec<bool>,
    free: Vec<usize>,
    elems_per_entry: usize,
    /// High-water mark of allocated entries, for occupancy reporting.
    peak_in_use: usize,
}

impl ListArray {
    /// Creates a list array with `num_entries` entries of `elems_per_entry`
    /// elements each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(num_entries: usize, elems_per_entry: usize) -> Self {
        assert!(num_entries > 0, "list array needs at least one entry");
        assert!(
            elems_per_entry > 0,
            "list array entries need at least one element slot"
        );
        assert!(
            num_entries < NO_NEXT as usize,
            "list array too large for u32 entry indices"
        );
        ListArray {
            arena: vec![0; num_entries * elems_per_entry],
            lens: vec![0; num_entries],
            next: vec![NO_NEXT; num_entries],
            tail: vec![0; num_entries],
            chain_entries: vec![0; num_entries],
            allocated: vec![false; num_entries],
            // Allocate low indices first; order is irrelevant to correctness.
            free: (0..num_entries).rev().collect(),
            elems_per_entry,
            peak_in_use: 0,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.lens.len()
    }

    /// Elements per entry.
    pub fn elems_per_entry(&self) -> usize {
        self.elems_per_entry
    }

    /// Entries currently allocated to some list.
    pub fn entries_in_use(&self) -> usize {
        self.lens.len() - self.free.len()
    }

    /// Entries currently free.
    pub fn free_entries(&self) -> usize {
        self.free.len()
    }

    /// Highest number of entries that were simultaneously in use.
    pub fn peak_entries_in_use(&self) -> usize {
        self.peak_in_use
    }

    fn take_free_entry(&mut self) -> Result<usize, ListArrayFull> {
        let idx = self.free.pop().ok_or(ListArrayFull)?;
        debug_assert!(
            !self.allocated[idx],
            "free list contained an allocated entry"
        );
        self.lens[idx] = 0;
        self.next[idx] = NO_NEXT;
        self.allocated[idx] = true;
        self.tail[idx] = idx as u32;
        self.chain_entries[idx] = 1;
        self.peak_in_use = self.peak_in_use.max(self.entries_in_use());
        Ok(idx)
    }

    /// Allocates a new, empty list.
    ///
    /// # Errors
    ///
    /// Returns [`ListArrayFull`] if no entry is free; the caller (the DMU)
    /// turns this into an instruction stall.
    pub fn alloc_list(&mut self) -> Result<ListHandle, ListArrayFull> {
        self.take_free_entry().map(ListHandle)
    }

    fn assert_allocated(&self, handle: ListHandle) {
        debug_assert!(
            self.allocated[handle.0],
            "list handle {handle:?} does not refer to an allocated list"
        );
    }

    /// Tail entry and chain length of a list, from the head entry's cache:
    /// `(tail_index, entries_a_linear_walk_would_touch)` in O(1).
    ///
    /// The modeled hardware has no such cache — it walks the chain — so the
    /// second component is exactly what [`Self::tail_of_naive`] reports; a
    /// `debug_assert` enforces that equivalence on every call in debug
    /// builds (including the whole conformance matrix).
    fn tail_of(&self, handle: ListHandle) -> (usize, u64) {
        self.assert_allocated(handle);
        let cached = (self.tail[handle.0] as usize, self.chain_entries[handle.0]);
        debug_assert_eq!(
            cached,
            self.tail_of_naive(handle),
            "cached tail/chain-length out of sync with a linear walk for {handle:?}"
        );
        cached
    }

    /// Reference implementation of [`Self::tail_of`]: the linear walk the
    /// hardware performs. Used by debug assertions and the equivalence tests;
    /// compiled (and optimized away) in release builds too, so it cannot rot.
    fn tail_of_naive(&self, handle: ListHandle) -> (usize, u64) {
        let mut idx = handle.0;
        let mut walked = 1;
        while self.next[idx] != NO_NEXT {
            idx = self.next[idx] as usize;
            walked += 1;
        }
        (idx, walked)
    }

    /// True if appending one more element to the list would require chaining
    /// a new entry. Used by the DMU to check, before mutating anything,
    /// whether an operation could stall.
    pub fn push_needs_new_entry(&self, handle: ListHandle) -> bool {
        let (tail, _) = self.tail_of(handle);
        self.lens[tail] as usize >= self.elems_per_entry
    }

    /// Exact number of fresh entries that `pushes` consecutive appends to
    /// this list would chain. Unlike calling [`Self::push_needs_new_entry`]
    /// once per append against pre-push state, this accounts for earlier
    /// appends filling the tail — which matters when one DMU operation pushes
    /// several elements into the *same* list (e.g. a writer that also sits in
    /// the reader list it is flushing).
    pub fn new_entries_for_pushes(&self, handle: ListHandle, pushes: usize) -> usize {
        let (tail, _) = self.tail_of(handle);
        let free_in_tail = self.elems_per_entry - self.lens[tail] as usize;
        pushes
            .saturating_sub(free_in_tail)
            .div_ceil(self.elems_per_entry)
    }

    /// Appends `value` to the list.
    ///
    /// Returns how many entries were touched (for access accounting). The
    /// append itself is O(1) thanks to the cached tail pointer, but the
    /// returned [`Walk`] still counts every entry a hardware linear walk
    /// would touch — that count feeds cycle accounting and must not shrink.
    ///
    /// # Errors
    ///
    /// Returns [`ListArrayFull`] if the tail entry is full and no free entry
    /// is available for chaining. The list is left unmodified in that case.
    pub fn push(&mut self, handle: ListHandle, value: u32) -> Result<Walk, ListArrayFull> {
        let (tail, walked) = self.tail_of(handle);
        let len = self.lens[tail] as usize;
        if len < self.elems_per_entry {
            self.arena[tail * self.elems_per_entry + len] = value;
            self.lens[tail] += 1;
            return Ok(Walk {
                entries_touched: walked,
            });
        }
        let new_idx = self.take_free_entry()?;
        self.arena[new_idx * self.elems_per_entry] = value;
        self.lens[new_idx] = 1;
        self.next[tail] = new_idx as u32;
        self.tail[handle.0] = new_idx as u32;
        self.chain_entries[handle.0] = walked + 1;
        Ok(Walk {
            entries_touched: walked + 1,
        })
    }

    /// Returns the elements of the list in insertion order together with the
    /// number of entries walked.
    pub fn iter_with_walk(&self, handle: ListHandle) -> (Vec<u32>, Walk) {
        let values = self.iter(handle).collect();
        (
            values,
            Walk {
                entries_touched: self.entries_spanned(handle),
            },
        )
    }

    /// Iterates over the elements of the list in insertion order without
    /// allocating. The list must not be mutated while the iterator lives
    /// (the borrow checker enforces this), which is what the DMU's hot
    /// operations (`add_dependence`, `finish_task`) rely on to avoid the
    /// per-operation `collect()` allocations they used to make.
    pub fn iter(&self, handle: ListHandle) -> ListIter<'_> {
        self.assert_allocated(handle);
        ListIter {
            array: self,
            entry: Some(handle.0),
            slot: 0,
        }
    }

    /// Returns the elements of the list in insertion order.
    pub fn collect(&self, handle: ListHandle) -> Vec<u32> {
        self.iter(handle).collect()
    }

    /// Number of elements in the list.
    pub fn len(&self, handle: ListHandle) -> usize {
        self.iter(handle).count()
    }

    /// True if the list holds no elements.
    pub fn is_empty(&self, handle: ListHandle) -> bool {
        self.iter(handle).next().is_none()
    }

    /// Number of entries the list currently spans. O(1) from the cached
    /// chain length; equals what a full traversal would count.
    pub fn entries_spanned(&self, handle: ListHandle) -> u64 {
        self.tail_of(handle).1
    }

    /// Removes the first occurrence of `value` from the list, if present.
    ///
    /// Returns whether the value was found and how many entries were touched.
    /// Entries are not un-chained when they become empty (matching a simple
    /// hardware implementation); the space is reclaimed when the whole list
    /// is freed.
    pub fn remove(&mut self, handle: ListHandle, value: u32) -> (bool, Walk) {
        self.assert_allocated(handle);
        let mut idx = handle.0;
        let mut walked = 0;
        loop {
            walked += 1;
            let base = idx * self.elems_per_entry;
            let len = self.lens[idx] as usize;
            if let Some(pos) = self.arena[base..base + len]
                .iter()
                .position(|&v| v == value)
            {
                // Shift the remaining elements left within the entry's arena
                // run; later slots become stale, exactly like invalidating a
                // hardware slot and compacting.
                self.arena
                    .copy_within(base + pos + 1..base + len, base + pos);
                self.lens[idx] -= 1;
                return (
                    true,
                    Walk {
                        entries_touched: walked,
                    },
                );
            }
            if self.next[idx] == NO_NEXT {
                return (
                    false,
                    Walk {
                        entries_touched: walked,
                    },
                );
            }
            idx = self.next[idx] as usize;
        }
    }

    /// Removes every element from the list but keeps the head entry
    /// allocated (the paper's `add_dependence` flushes the reader list when a
    /// writer arrives). Continuation entries are returned to the free pool.
    pub fn flush(&mut self, handle: ListHandle) -> Walk {
        self.assert_allocated(handle);
        let mut walked = 1;
        let head = handle.0;
        let mut idx = self.next[head];
        self.lens[head] = 0;
        self.next[head] = NO_NEXT;
        self.tail[head] = head as u32;
        self.chain_entries[head] = 1;
        while idx != NO_NEXT {
            walked += 1;
            let cur = idx as usize;
            idx = self.next[cur];
            self.release_entry(cur);
        }
        Walk {
            entries_touched: walked,
        }
    }

    fn release_entry(&mut self, idx: usize) {
        debug_assert!(self.allocated[idx], "double free of list-array entry {idx}");
        self.allocated[idx] = false;
        self.lens[idx] = 0;
        self.next[idx] = NO_NEXT;
        self.free.push(idx);
    }

    /// Frees the whole list, returning every entry to the free pool.
    ///
    /// Returns how many entries were released.
    pub fn free_list(&mut self, handle: ListHandle) -> Walk {
        self.assert_allocated(handle);
        let mut idx = handle.0 as u32;
        let mut walked = 0;
        while idx != NO_NEXT {
            walked += 1;
            let cur = idx as usize;
            idx = self.next[cur];
            self.release_entry(cur);
        }
        Walk {
            entries_touched: walked,
        }
    }
}

/// Borrowing iterator over a list's elements in insertion order (see
/// [`ListArray::iter`]).
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    array: &'a ListArray,
    /// Entry currently being read, or `None` when the chain is exhausted.
    entry: Option<usize>,
    /// Next element slot within the current entry.
    slot: usize,
}

impl Iterator for ListIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            let idx = self.entry?;
            if self.slot < self.array.lens[idx] as usize {
                let value = self.array.arena[idx * self.array.elems_per_entry + self.slot];
                self.slot += 1;
                return Some(value);
            }
            // Entry exhausted (possibly emptied by `remove`): follow the
            // chain exactly like the hardware traversal does.
            let next = self.array.next[idx];
            self.entry = (next != NO_NEXT).then_some(next as usize);
            self.slot = 0;
        }
    }
}

// Snapshot support. All columns are persisted verbatim, including the free
// list *in order* (entries are popped from its back) and the stale arena
// slots past each entry's length — a resumed run must allocate the same
// entries in the same order a straight-through run would.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for ListHandle {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ListHandle(usize::load(r)?))
    }
}

impl Persist for ListArray {
    fn save(&self, out: &mut Vec<u8>) {
        self.arena.save(out);
        self.lens.save(out);
        self.next.save(out);
        self.tail.save(out);
        self.chain_entries.save(out);
        self.allocated.save(out);
        self.free.save(out);
        self.elems_per_entry.save(out);
        self.peak_in_use.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let array = ListArray {
            arena: Vec::load(r)?,
            lens: Vec::load(r)?,
            next: Vec::load(r)?,
            tail: Vec::load(r)?,
            chain_entries: Vec::load(r)?,
            allocated: Vec::load(r)?,
            free: Vec::load(r)?,
            elems_per_entry: usize::load(r)?,
            peak_in_use: usize::load(r)?,
        };
        let entries = array.lens.len();
        if array.elems_per_entry == 0
            || array.arena.len() != entries * array.elems_per_entry
            || array.next.len() != entries
            || array.tail.len() != entries
            || array.chain_entries.len() != entries
            || array.allocated.len() != entries
            || array.free.len() > entries
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "list array geometry is inconsistent ({entries} entries, {} arena \
                     slots, {} elems/entry, {} free)",
                    array.arena.len(),
                    array.elems_per_entry,
                    array.free.len()
                ),
            });
        }
        Ok(array)
    }
}

/// Linear-walk reference model of [`ListArray`], kept under `#[cfg(test)]`.
///
/// It mirrors every operation with the walks the hardware performs and no
/// cached tail state; the conformance tests drive it in lockstep with the
/// real implementation and require bit-identical contents *and* [`Walk`]
/// counts, proving the cached-tail optimisation changed actual work only,
/// never modeled work.
#[cfg(test)]
pub mod naive {
    use super::{ListArrayFull, ListHandle, Walk};

    #[derive(Debug, Clone, Default)]
    struct NaiveEntry {
        elems: Vec<u32>,
        next: Option<usize>,
        allocated: bool,
    }

    /// The reference list array: identical semantics, all-linear walks.
    #[derive(Debug, Clone)]
    pub struct NaiveListArray {
        entries: Vec<NaiveEntry>,
        free: Vec<usize>,
        elems_per_entry: usize,
    }

    impl NaiveListArray {
        /// Mirrors [`super::ListArray::new`].
        pub fn new(num_entries: usize, elems_per_entry: usize) -> Self {
            NaiveListArray {
                entries: vec![NaiveEntry::default(); num_entries],
                free: (0..num_entries).rev().collect(),
                elems_per_entry,
            }
        }

        fn take_free_entry(&mut self) -> Result<usize, ListArrayFull> {
            let idx = self.free.pop().ok_or(ListArrayFull)?;
            let entry = &mut self.entries[idx];
            entry.elems.clear();
            entry.next = None;
            entry.allocated = true;
            Ok(idx)
        }

        /// Mirrors [`super::ListArray::alloc_list`].
        pub fn alloc_list(&mut self) -> Result<ListHandle, ListArrayFull> {
            self.take_free_entry().map(ListHandle)
        }

        fn tail_of(&self, handle: ListHandle) -> (usize, u64) {
            let mut idx = handle.0;
            let mut walked = 1;
            while let Some(next) = self.entries[idx].next {
                idx = next;
                walked += 1;
            }
            (idx, walked)
        }

        /// Mirrors [`super::ListArray::push`] with an explicit linear walk.
        pub fn push(&mut self, handle: ListHandle, value: u32) -> Result<Walk, ListArrayFull> {
            let (tail, walked) = self.tail_of(handle);
            if self.entries[tail].elems.len() < self.elems_per_entry {
                self.entries[tail].elems.push(value);
                return Ok(Walk {
                    entries_touched: walked,
                });
            }
            let new_idx = self.take_free_entry()?;
            self.entries[new_idx].elems.push(value);
            self.entries[tail].next = Some(new_idx);
            Ok(Walk {
                entries_touched: walked + 1,
            })
        }

        /// Mirrors [`super::ListArray::remove`].
        pub fn remove(&mut self, handle: ListHandle, value: u32) -> (bool, Walk) {
            let mut idx = handle.0;
            let mut walked = 0;
            loop {
                walked += 1;
                if let Some(pos) = self.entries[idx].elems.iter().position(|&v| v == value) {
                    self.entries[idx].elems.remove(pos);
                    return (
                        true,
                        Walk {
                            entries_touched: walked,
                        },
                    );
                }
                match self.entries[idx].next {
                    Some(next) => idx = next,
                    None => {
                        return (
                            false,
                            Walk {
                                entries_touched: walked,
                            },
                        )
                    }
                }
            }
        }

        /// Mirrors [`super::ListArray::flush`].
        pub fn flush(&mut self, handle: ListHandle) -> Walk {
            let mut walked = 1;
            let head = handle.0;
            let mut idx = self.entries[head].next;
            self.entries[head].elems.clear();
            self.entries[head].next = None;
            while let Some(cur) = idx {
                walked += 1;
                idx = self.entries[cur].next;
                self.release_entry(cur);
            }
            Walk {
                entries_touched: walked,
            }
        }

        fn release_entry(&mut self, idx: usize) {
            let entry = &mut self.entries[idx];
            entry.allocated = false;
            entry.elems.clear();
            entry.next = None;
            self.free.push(idx);
        }

        /// Mirrors [`super::ListArray::free_list`].
        pub fn free_list(&mut self, handle: ListHandle) -> Walk {
            let mut idx = Some(handle.0);
            let mut walked = 0;
            while let Some(cur) = idx {
                walked += 1;
                idx = self.entries[cur].next;
                self.release_entry(cur);
            }
            Walk {
                entries_touched: walked,
            }
        }

        /// Mirrors [`super::ListArray::free_entries`].
        pub fn free_entries(&self) -> usize {
            self.free.len()
        }

        /// Mirrors [`super::ListArray::new_entries_for_pushes`].
        pub fn new_entries_for_pushes(&self, handle: ListHandle, pushes: usize) -> usize {
            let (tail, _) = self.tail_of(handle);
            let free_in_tail = self.elems_per_entry - self.entries[tail].elems.len();
            pushes
                .saturating_sub(free_in_tail)
                .div_ceil(self.elems_per_entry)
        }

        /// Mirrors [`super::ListArray::is_empty`] via a full walk.
        pub fn is_empty(&self, handle: ListHandle) -> bool {
            self.collect(handle).is_empty()
        }

        /// Mirrors [`super::ListArray::collect`].
        pub fn collect(&self, handle: ListHandle) -> Vec<u32> {
            let mut values = Vec::new();
            let mut idx = handle.0;
            loop {
                values.extend_from_slice(&self.entries[idx].elems);
                match self.entries[idx].next {
                    Some(next) => idx = next,
                    None => break,
                }
            }
            values
        }

        /// Mirrors [`super::ListArray::entries_spanned`].
        pub fn entries_spanned(&self, handle: ListHandle) -> u64 {
            self.tail_of(handle).1
        }

        /// Mirrors [`super::ListArray::push_needs_new_entry`].
        pub fn push_needs_new_entry(&self, handle: ListHandle) -> bool {
            let (tail, _) = self.tail_of(handle);
            self.entries[tail].elems.len() >= self.elems_per_entry
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_collect_preserve_order() {
        let mut la = ListArray::new(8, 4);
        let l = la.alloc_list().unwrap();
        for v in 0..10 {
            la.push(l, v).unwrap();
        }
        assert_eq!(la.collect(l), (0..10).collect::<Vec<_>>());
        assert_eq!(la.len(l), 10);
        assert!(!la.is_empty(l));
    }

    #[test]
    fn new_list_is_empty_and_spans_one_entry() {
        let mut la = ListArray::new(4, 8);
        let l = la.alloc_list().unwrap();
        assert!(la.is_empty(l));
        assert_eq!(la.entries_spanned(l), 1);
        assert_eq!(la.entries_in_use(), 1);
    }

    #[test]
    fn lists_spill_into_chained_entries() {
        let mut la = ListArray::new(4, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..6 {
            la.push(l, v).unwrap();
        }
        assert_eq!(la.entries_spanned(l), 3);
        assert_eq!(la.entries_in_use(), 3);
        assert_eq!(la.collect(l), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn push_walk_counts_grow_with_list_length() {
        let mut la = ListArray::new(8, 2);
        let l = la.alloc_list().unwrap();
        let w1 = la.push(l, 0).unwrap();
        assert_eq!(w1.entries_touched, 1);
        la.push(l, 1).unwrap();
        // Third push spills into a new entry: walks the head then writes a new entry.
        let w3 = la.push(l, 2).unwrap();
        assert_eq!(w3.entries_touched, 2);
        // Fifth push walks two entries then allocates the third.
        la.push(l, 3).unwrap();
        let w5 = la.push(l, 4).unwrap();
        assert_eq!(w5.entries_touched, 3);
    }

    #[test]
    fn alloc_fails_when_full() {
        let mut la = ListArray::new(2, 2);
        let _a = la.alloc_list().unwrap();
        let _b = la.alloc_list().unwrap();
        assert_eq!(la.alloc_list(), Err(ListArrayFull));
        assert_eq!(la.free_entries(), 0);
    }

    #[test]
    fn push_fails_without_free_entry_and_leaves_list_intact() {
        let mut la = ListArray::new(2, 2);
        let a = la.alloc_list().unwrap();
        let b = la.alloc_list().unwrap();
        la.push(a, 1).unwrap();
        la.push(a, 2).unwrap();
        // `a` is full and there is no free entry to chain.
        assert_eq!(la.push(a, 3), Err(ListArrayFull));
        assert_eq!(la.collect(a), vec![1, 2]);
        // `b` still has room in its own entry, so pushing there works.
        la.push(b, 9).unwrap();
        assert_eq!(la.collect(b), vec![9]);
    }

    #[test]
    fn push_needs_new_entry_predicts_spill() {
        let mut la = ListArray::new(4, 2);
        let l = la.alloc_list().unwrap();
        assert!(!la.push_needs_new_entry(l));
        la.push(l, 1).unwrap();
        assert!(!la.push_needs_new_entry(l));
        la.push(l, 2).unwrap();
        assert!(la.push_needs_new_entry(l));
        la.push(l, 3).unwrap();
        assert!(!la.push_needs_new_entry(l));
    }

    #[test]
    fn remove_first_occurrence_only() {
        let mut la = ListArray::new(4, 2);
        let l = la.alloc_list().unwrap();
        for v in [5, 6, 5, 7] {
            la.push(l, v).unwrap();
        }
        let (found, _) = la.remove(l, 5);
        assert!(found);
        assert_eq!(la.collect(l), vec![6, 5, 7]);
        let (found, _) = la.remove(l, 42);
        assert!(!found);
    }

    #[test]
    fn flush_keeps_head_and_releases_tail_entries() {
        let mut la = ListArray::new(4, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..6 {
            la.push(l, v).unwrap();
        }
        assert_eq!(la.entries_in_use(), 3);
        la.flush(l);
        assert!(la.is_empty(l));
        assert_eq!(la.entries_in_use(), 1);
        // The list is still usable after a flush.
        la.push(l, 99).unwrap();
        assert_eq!(la.collect(l), vec![99]);
    }

    #[test]
    fn free_list_releases_all_entries() {
        let mut la = ListArray::new(4, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..6 {
            la.push(l, v).unwrap();
        }
        let walk = la.free_list(l);
        assert_eq!(walk.entries_touched, 3);
        assert_eq!(la.entries_in_use(), 0);
        assert_eq!(la.free_entries(), 4);
    }

    #[test]
    fn freed_entries_are_reusable() {
        let mut la = ListArray::new(2, 1);
        let a = la.alloc_list().unwrap();
        la.push(a, 1).unwrap();
        la.push(a, 2).unwrap(); // uses both entries
        assert_eq!(la.alloc_list(), Err(ListArrayFull));
        la.free_list(a);
        let b = la.alloc_list().unwrap();
        la.push(b, 3).unwrap();
        assert_eq!(la.collect(b), vec![3]);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut la = ListArray::new(4, 1);
        let a = la.alloc_list().unwrap();
        la.push(a, 1).unwrap(); // fills the head entry
        la.push(a, 2).unwrap(); // chains a second entry
        la.push(a, 3).unwrap(); // chains a third entry
        la.free_list(a);
        assert_eq!(la.entries_in_use(), 0);
        assert_eq!(la.peak_entries_in_use(), 3);
    }

    /// Figure 5 layout under interleaving: two lists grown alternately chain
    /// through interleaved storage entries, yet each keeps its own contents
    /// and per-list walk counts.
    #[test]
    fn interleaved_lists_chain_without_cross_talk() {
        let mut la = ListArray::new(16, 2);
        let a = la.alloc_list().unwrap();
        let b = la.alloc_list().unwrap();
        for v in 0..12u32 {
            if v % 2 == 0 {
                la.push(a, v).unwrap();
            } else {
                la.push(b, v).unwrap();
            }
        }
        assert_eq!(la.collect(a), vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(la.collect(b), vec![1, 3, 5, 7, 9, 11]);
        // 6 elements at 2 per entry → 3 entries each.
        assert_eq!(la.entries_spanned(a), 3);
        assert_eq!(la.entries_spanned(b), 3);
        assert_eq!(la.entries_in_use(), 6);
    }

    /// Overflow recovery (Section III-D): a push blocked by a full array
    /// succeeds once another list releases an entry — the stall-and-retry
    /// protocol the DMU applies to TDM instructions.
    #[test]
    fn blocked_push_succeeds_after_another_list_frees_entries() {
        let mut la = ListArray::new(3, 1);
        let a = la.alloc_list().unwrap();
        let b = la.alloc_list().unwrap();
        la.push(a, 1).unwrap();
        la.push(a, 2).unwrap(); // chains the third and last entry
        la.push(b, 7).unwrap(); // fits in b's head entry
        assert_eq!(la.push(b, 8), Err(ListArrayFull));
        la.free_list(a);
        la.push(b, 8).expect("freed entries must unblock the push");
        assert_eq!(la.collect(b), vec![7, 8]);
    }

    /// Flush walks the whole chain (head + continuations) and reports it, so
    /// the DMU charges one SRAM access per entry released.
    #[test]
    fn flush_walk_counts_every_chained_entry() {
        let mut la = ListArray::new(8, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..7 {
            la.push(l, v).unwrap(); // 7 elements at 2/entry → 4 entries
        }
        let walk = la.flush(l);
        assert_eq!(walk.entries_touched, 4);
        assert_eq!(la.entries_in_use(), 1);
        assert_eq!(la.free_entries(), 7);
    }

    /// Removing elements can leave an empty entry in the middle of a chain;
    /// traversal must skip through it without losing the tail.
    #[test]
    fn traversal_crosses_emptied_middle_entries() {
        let mut la = ListArray::new(8, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..6 {
            la.push(l, v).unwrap(); // entries: [0,1] [2,3] [4,5]
        }
        la.remove(l, 2);
        la.remove(l, 3); // middle entry now empty but still chained
        assert_eq!(la.collect(l), vec![0, 1, 4, 5]);
        assert_eq!(la.entries_spanned(l), 3);
        // Pushes still go to the tail (the emptied middle entry is not
        // reused until the list is flushed or freed).
        la.push(l, 9).unwrap();
        assert_eq!(la.collect(l), vec![0, 1, 4, 5, 9]);
        assert_eq!(la.entries_spanned(l), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = ListArray::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elems_per_entry_panics() {
        let _ = ListArray::new(8, 0);
    }

    /// Lockstep conformance against the linear-walk reference: a long
    /// deterministic random sequence of alloc/push/remove/flush/free over
    /// interleaved lists must produce bit-identical contents AND bit-identical
    /// [`Walk`] counts on the cached-tail implementation and the naive one.
    #[test]
    fn walk_counts_match_naive_reference_under_random_ops() {
        use super::naive::NaiveListArray;
        use tdm_sim::rng::SplitMix64;

        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
            let mut fast = ListArray::new(64, 2);
            let mut naive = NaiveListArray::new(64, 2);
            let mut handles: Vec<ListHandle> = Vec::new();
            for step in 0..2_000u32 {
                let ctx = format!("seed {seed} step {step}");
                match rng.next_below(10) {
                    // Allocation (both must agree on success and handle).
                    0 | 1 => {
                        let a = fast.alloc_list();
                        let b = naive.alloc_list();
                        assert_eq!(a, b, "{ctx}: alloc");
                        if let Ok(h) = a {
                            handles.push(h);
                        }
                    }
                    // Push dominates the mix: it is the DMU's hot operation.
                    2..=6 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        let a = fast.push(h, step);
                        let b = naive.push(h, step);
                        assert_eq!(a, b, "{ctx}: push walk");
                    }
                    7 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        let victim = rng.next_below(u64::from(step) + 1) as u32;
                        assert_eq!(
                            fast.remove(h, victim),
                            naive.remove(h, victim),
                            "{ctx}: remove walk"
                        );
                    }
                    8 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        assert_eq!(fast.flush(h), naive.flush(h), "{ctx}: flush walk");
                    }
                    9 if !handles.is_empty() => {
                        let i = rng.next_below(handles.len() as u64) as usize;
                        let h = handles.swap_remove(i);
                        assert_eq!(fast.free_list(h), naive.free_list(h), "{ctx}: free walk");
                    }
                    _ => {}
                }
                // Read-side agreement on every live list, every step.
                for &h in &handles {
                    assert_eq!(fast.collect(h), naive.collect(h), "{ctx}: contents");
                    assert_eq!(
                        fast.entries_spanned(h),
                        naive.entries_spanned(h),
                        "{ctx}: span"
                    );
                    assert_eq!(
                        fast.push_needs_new_entry(h),
                        naive.push_needs_new_entry(h),
                        "{ctx}: spill prediction"
                    );
                }
            }
        }
    }

    /// Reuse-heavy lockstep: a small array is driven so that overflow chains
    /// are constantly torn down (flush/free) and the released entries are
    /// reallocated and re-pushed *immediately*, in the same step. This is the
    /// chain-teardown-then-reuse edge where a stale cached tail or chain
    /// length would survive into the recycled entry; the naive reference and
    /// the per-call `tail_of` debug assertion both catch it.
    #[test]
    fn walk_counts_match_naive_reference_under_reuse_heavy_churn() {
        use super::naive::NaiveListArray;
        use tdm_sim::rng::SplitMix64;

        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xF1EE7 ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut fast = ListArray::new(12, 2);
            let mut naive = NaiveListArray::new(12, 2);
            let mut handles: Vec<ListHandle> = Vec::new();
            for step in 0..3_000u32 {
                let ctx = format!("seed {seed} step {step}");
                match rng.next_below(8) {
                    // Grow aggressively so lists overflow into chains.
                    0..=2 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        for i in 0..3 {
                            let a = fast.push(h, step.wrapping_add(i));
                            let b = naive.push(h, step.wrapping_add(i));
                            assert_eq!(a, b, "{ctx}: push walk");
                        }
                    }
                    // Tear a chain down and *immediately* recycle its entries
                    // into a fresh list grown in the same step.
                    3 | 4 if !handles.is_empty() => {
                        let i = rng.next_below(handles.len() as u64) as usize;
                        let h = handles.swap_remove(i);
                        assert_eq!(fast.free_list(h), naive.free_list(h), "{ctx}: free walk");
                        let a = fast.alloc_list();
                        let b = naive.alloc_list();
                        assert_eq!(a, b, "{ctx}: realloc after free");
                        if let Ok(nh) = a {
                            handles.push(nh);
                            let a = fast.push(nh, step);
                            let b = naive.push(nh, step);
                            assert_eq!(a, b, "{ctx}: push into recycled entry");
                        }
                    }
                    // Flush (keeps the head, releases continuations) and
                    // regrow the same list through the recycled entries.
                    5 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        assert_eq!(fast.flush(h), naive.flush(h), "{ctx}: flush walk");
                        for i in 0..4 {
                            let a = fast.push(h, step.wrapping_add(i));
                            let b = naive.push(h, step.wrapping_add(i));
                            assert_eq!(a, b, "{ctx}: regrow after flush");
                        }
                    }
                    6 if !handles.is_empty() => {
                        let h = handles[rng.next_below(handles.len() as u64) as usize];
                        let victim = rng.next_below(u64::from(step) + 1) as u32;
                        assert_eq!(
                            fast.remove(h, victim),
                            naive.remove(h, victim),
                            "{ctx}: remove walk"
                        );
                    }
                    _ => {
                        let a = fast.alloc_list();
                        let b = naive.alloc_list();
                        assert_eq!(a, b, "{ctx}: alloc");
                        if let Ok(h) = a {
                            handles.push(h);
                        }
                    }
                }
                for &h in &handles {
                    assert_eq!(fast.collect(h), naive.collect(h), "{ctx}: contents");
                    assert_eq!(
                        fast.entries_spanned(h),
                        naive.entries_spanned(h),
                        "{ctx}: span"
                    );
                    assert_eq!(
                        fast.push_needs_new_entry(h),
                        naive.push_needs_new_entry(h),
                        "{ctx}: spill prediction"
                    );
                }
            }
        }
    }

    /// The cached tail must survive the chain-mutating operations in
    /// combination: grow, flush, regrow, remove-in-middle, regrow again.
    #[test]
    fn cached_tail_survives_flush_and_regrowth() {
        let mut la = ListArray::new(16, 2);
        let l = la.alloc_list().unwrap();
        for v in 0..9 {
            la.push(l, v).unwrap(); // 5 entries
        }
        assert_eq!(la.entries_spanned(l), 5);
        la.flush(l);
        assert_eq!(la.entries_spanned(l), 1);
        for v in 0..5 {
            la.push(l, v).unwrap(); // 3 entries
        }
        assert_eq!(la.entries_spanned(l), 3);
        la.remove(l, 2);
        la.remove(l, 3); // middle entry emptied, still chained
        assert_eq!(la.entries_spanned(l), 3);
        let walk = la.push(l, 9).unwrap();
        // Tail entry holds one element (4), so the push lands there after a
        // modeled 3-entry walk.
        assert_eq!(walk.entries_touched, 3);
        assert_eq!(la.collect(l), vec![0, 1, 4, 9]);
    }
}
