//! The DMU's Ready Queue.
//!
//! Tasks whose predecessor count reaches zero are pushed into a hardware FIFO
//! (Figure 3). The runtime drains it with `get_ready_task`, moving ready
//! tasks into its own software pool where the scheduling policy is applied —
//! the separation of concerns that distinguishes TDM from Carbon and Task
//! Superscalar.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::ids::TaskId;

/// Error returned when the Ready Queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyQueueFull;

impl std::fmt::Display for ReadyQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ready queue is full")
    }
}

impl std::error::Error for ReadyQueueFull {}

/// A bounded FIFO of ready task IDs.
///
/// # Example
///
/// ```
/// use tdm_core::ids::TaskId;
/// use tdm_core::ready_queue::ReadyQueue;
///
/// let mut q = ReadyQueue::new(4);
/// q.push(TaskId::new(1)).unwrap();
/// q.push(TaskId::new(2)).unwrap();
/// assert_eq!(q.pop(), Some(TaskId::new(1)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadyQueue {
    queue: VecDeque<TaskId>,
    capacity: usize,
    peak: usize,
}

impl ReadyQueue {
    /// Creates a ready queue holding at most `capacity` task IDs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ready queue needs a non-zero capacity");
        ReadyQueue {
            queue: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            peak: 0,
        }
    }

    /// Maximum number of task IDs the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of task IDs currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Enqueues a ready task.
    ///
    /// # Errors
    ///
    /// Returns [`ReadyQueueFull`] if the queue is at capacity.
    pub fn push(&mut self, task: TaskId) -> Result<(), ReadyQueueFull> {
        if self.queue.len() >= self.capacity {
            return Err(ReadyQueueFull);
        }
        self.queue.push_back(task);
        self.peak = self.peak.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest ready task, if any.
    pub fn pop(&mut self) -> Option<TaskId> {
        self.queue.pop_front()
    }

    /// Peeks at the oldest ready task without dequeuing it.
    pub fn front(&self) -> Option<TaskId> {
        self.queue.front().copied()
    }
}

// Snapshot support: the FIFO contents in order, plus capacity and peak.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for ReadyQueue {
    fn save(&self, out: &mut Vec<u8>) {
        self.queue.save(out);
        self.capacity.save(out);
        self.peak.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let queue: VecDeque<TaskId> = VecDeque::load(r)?;
        let capacity = usize::load(r)?;
        let peak = usize::load(r)?;
        if capacity == 0 || queue.len() > capacity {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "ready queue holds {} tasks but has capacity {capacity}",
                    queue.len()
                ),
            });
        }
        Ok(ReadyQueue {
            queue,
            capacity,
            peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = ReadyQueue::new(8);
        for i in 0..5 {
            q.push(TaskId::new(i)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|t| t.raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_fails_when_full() {
        let mut q = ReadyQueue::new(2);
        q.push(TaskId::new(0)).unwrap();
        q.push(TaskId::new(1)).unwrap();
        assert_eq!(q.push(TaskId::new(2)), Err(ReadyQueueFull));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let mut q = ReadyQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.front(), None);
    }

    #[test]
    fn front_does_not_consume() {
        let mut q = ReadyQueue::new(2);
        q.push(TaskId::new(9)).unwrap();
        assert_eq!(q.front(), Some(TaskId::new(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peak_tracks_maximum_occupancy() {
        let mut q = ReadyQueue::new(4);
        q.push(TaskId::new(0)).unwrap();
        q.push(TaskId::new(1)).unwrap();
        q.pop();
        q.pop();
        assert_eq!(q.peak(), 2);
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_panics() {
        let _ = ReadyQueue::new(0);
    }
}
