//! Task Table and Dependence Table (Figure 4 of the paper).
//!
//! Both tables are direct-access SRAMs indexed by the internal IDs produced
//! by the alias tables. The Task Table stores, per in-flight task, the task
//! descriptor address, the predecessor and successor counts and the head
//! pointers of its successor and dependence lists. The Dependence Table
//! stores, per in-flight dependence, the ID of its last writer and the head
//! pointer of its reader list.
//!
//! Storage is struct-of-arrays: each logical entry field lives in its own
//! parallel column, so the DMU's hot paths (predecessor decrements in
//! `finish_task`, last-writer updates in `add_dependence`) touch one dense
//! column instead of dragging whole entry structs through the cache. The
//! [`TaskEntry`] / [`DepEntry`] structs remain as by-value row types for
//! insertion, removal and inspection.

use serde::{Deserialize, Serialize};

use crate::ids::{DepAddr, DepId, DescriptorAddr, TaskId};
use crate::list_array::ListHandle;

/// One Task Table entry: the bookkeeping of a single in-flight task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEntry {
    /// Address of the runtime's task descriptor (returned by
    /// `get_ready_task`).
    pub descriptor: DescriptorAddr,
    /// Number of unsatisfied predecessors. The task becomes ready when this
    /// reaches zero after its creation completed.
    pub num_predecessors: u32,
    /// Number of successors registered so far (returned to the runtime so
    /// priority schedulers can use it).
    pub num_successors: u32,
    /// Head of this task's successor list in the Successor List Array.
    pub successor_list: ListHandle,
    /// Head of this task's dependence list in the Dependence List Array.
    pub dependence_list: ListHandle,
    /// True while the runtime is still adding dependences (between
    /// `create_task` and the implicit submission at the first instruction of
    /// another task or at execution). Tasks are not inserted in the Ready
    /// Queue while under construction even if their predecessor count is
    /// zero.
    pub under_construction: bool,
}

/// A direct-mapped table of in-flight tasks, indexed by [`TaskId`].
///
/// Entry fields are stored as parallel columns; the hot accessors
/// ([`TaskTable::dec_predecessors`] and friends) read and write exactly one
/// column. Every accessor panics on a dead or out-of-range ID — the alias
/// table guarantees the DMU only holds live IDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskTable {
    descriptor: Vec<DescriptorAddr>,
    num_predecessors: Vec<u32>,
    num_successors: Vec<u32>,
    successor_list: Vec<ListHandle>,
    dependence_list: Vec<ListHandle>,
    under_construction: Vec<bool>,
    occupied: Vec<bool>,
    live: usize,
    peak: usize,
}

impl TaskTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "task table needs at least one entry");
        TaskTable {
            descriptor: vec![DescriptorAddr(0); capacity],
            num_predecessors: vec![0; capacity],
            num_successors: vec![0; capacity],
            successor_list: vec![ListHandle::from_raw(0); capacity],
            dependence_list: vec![ListHandle::from_raw(0); capacity],
            under_construction: vec![false; capacity],
            occupied: vec![false; capacity],
            live: 0,
            peak: 0,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.occupied.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest number of simultaneously live entries.
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn check_live(&self, id: TaskId) {
        assert!(
            self.occupied.get(id.index()).copied().unwrap_or(false),
            "task table entry {id} is not live"
        );
    }

    /// Installs `entry` at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already occupied — the alias table
    /// guarantees freshly allocated IDs are free.
    pub fn insert(&mut self, id: TaskId, entry: TaskEntry) {
        let i = id.index();
        assert!(
            !self.occupied[i],
            "task table entry {id} is already occupied"
        );
        self.descriptor[i] = entry.descriptor;
        self.num_predecessors[i] = entry.num_predecessors;
        self.num_successors[i] = entry.num_successors;
        self.successor_list[i] = entry.successor_list;
        self.dependence_list[i] = entry.dependence_list;
        self.under_construction[i] = entry.under_construction;
        self.occupied[i] = true;
        self.live += 1;
        self.peak = self.peak.max(self.live);
    }

    /// Returns the entry at `id` (recomposed from the columns), if live.
    pub fn get(&self, id: TaskId) -> Option<TaskEntry> {
        let i = id.index();
        if !self.occupied.get(i).copied().unwrap_or(false) {
            return None;
        }
        Some(TaskEntry {
            descriptor: self.descriptor[i],
            num_predecessors: self.num_predecessors[i],
            num_successors: self.num_successors[i],
            successor_list: self.successor_list[i],
            dependence_list: self.dependence_list[i],
            under_construction: self.under_construction[i],
        })
    }

    /// Descriptor address of a live task.
    pub fn descriptor(&self, id: TaskId) -> DescriptorAddr {
        self.check_live(id);
        self.descriptor[id.index()]
    }

    /// Successor-list head of a live task.
    pub fn successor_list(&self, id: TaskId) -> ListHandle {
        self.check_live(id);
        self.successor_list[id.index()]
    }

    /// Dependence-list head of a live task.
    pub fn dependence_list(&self, id: TaskId) -> ListHandle {
        self.check_live(id);
        self.dependence_list[id.index()]
    }

    /// Unsatisfied-predecessor count of a live task.
    pub fn num_predecessors(&self, id: TaskId) -> u32 {
        self.check_live(id);
        self.num_predecessors[id.index()]
    }

    /// Successor count of a live task.
    pub fn num_successors(&self, id: TaskId) -> u32 {
        self.check_live(id);
        self.num_successors[id.index()]
    }

    /// Whether a live task is still under construction.
    pub fn under_construction(&self, id: TaskId) -> bool {
        self.check_live(id);
        self.under_construction[id.index()]
    }

    /// Increments the successor count of a live task.
    pub fn inc_successors(&mut self, id: TaskId) {
        self.check_live(id);
        self.num_successors[id.index()] += 1;
    }

    /// Increments the predecessor count of a live task.
    pub fn inc_predecessors(&mut self, id: TaskId) {
        self.check_live(id);
        self.num_predecessors[id.index()] += 1;
    }

    /// Decrements the predecessor count of a live task and returns the new
    /// count.
    pub fn dec_predecessors(&mut self, id: TaskId) -> u32 {
        self.check_live(id);
        let slot = &mut self.num_predecessors[id.index()];
        *slot -= 1;
        *slot
    }

    /// Marks a live task as submitted (no longer under construction).
    pub fn submit(&mut self, id: TaskId) {
        self.check_live(id);
        self.under_construction[id.index()] = false;
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: TaskId) -> Option<TaskEntry> {
        let entry = self.get(id)?;
        self.occupied[id.index()] = false;
        self.live -= 1;
        Some(entry)
    }

    /// Iterates over the live `(id, entry)` pairs, recomposing rows.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, TaskEntry)> + '_ {
        self.occupied.iter().enumerate().filter_map(|(i, &occ)| {
            let id = TaskId::new(i as u32);
            occ.then(|| (id, self.get(id).expect("occupied entry is live")))
        })
    }
}

/// One Dependence Table entry: the bookkeeping of a single in-flight
/// dependence (a data address that at least one in-flight task names).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEntry {
    /// Base address of the dependence.
    pub addr: DepAddr,
    /// Size in bytes, as provided by the runtime in `add_dependence` (used
    /// for the dynamic index-bit selection and by locality modelling).
    pub size: u64,
    /// Task that last declared an output on this address, if still in flight.
    pub last_writer: Option<TaskId>,
    /// Head of the reader list in the Reader List Array.
    pub reader_list: ListHandle,
}

/// A direct-mapped table of in-flight dependences, indexed by [`DepId`].
///
/// Same struct-of-arrays layout as [`TaskTable`]: each [`DepEntry`] field is
/// a parallel column with panicking single-column accessors for the hot
/// paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependenceTable {
    addr: Vec<DepAddr>,
    size: Vec<u64>,
    last_writer: Vec<Option<TaskId>>,
    reader_list: Vec<ListHandle>,
    occupied: Vec<bool>,
    live: usize,
    peak: usize,
}

impl DependenceTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dependence table needs at least one entry");
        DependenceTable {
            addr: vec![DepAddr(0); capacity],
            size: vec![0; capacity],
            last_writer: vec![None; capacity],
            reader_list: vec![ListHandle::from_raw(0); capacity],
            occupied: vec![false; capacity],
            live: 0,
            peak: 0,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.occupied.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest number of simultaneously live entries.
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn check_live(&self, id: DepId) {
        assert!(
            self.occupied.get(id.index()).copied().unwrap_or(false),
            "dependence table entry {id} is not live"
        );
    }

    /// Installs `entry` at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already occupied.
    pub fn insert(&mut self, id: DepId, entry: DepEntry) {
        let i = id.index();
        assert!(
            !self.occupied[i],
            "dependence table entry {id} is already occupied"
        );
        self.addr[i] = entry.addr;
        self.size[i] = entry.size;
        self.last_writer[i] = entry.last_writer;
        self.reader_list[i] = entry.reader_list;
        self.occupied[i] = true;
        self.live += 1;
        self.peak = self.peak.max(self.live);
    }

    /// Returns the entry at `id` (recomposed from the columns), if live.
    pub fn get(&self, id: DepId) -> Option<DepEntry> {
        let i = id.index();
        if !self.occupied.get(i).copied().unwrap_or(false) {
            return None;
        }
        Some(DepEntry {
            addr: self.addr[i],
            size: self.size[i],
            last_writer: self.last_writer[i],
            reader_list: self.reader_list[i],
        })
    }

    /// True if the entry at `id` is live.
    pub fn contains(&self, id: DepId) -> bool {
        self.occupied.get(id.index()).copied().unwrap_or(false)
    }

    /// Base address of a live dependence.
    pub fn addr(&self, id: DepId) -> DepAddr {
        self.check_live(id);
        self.addr[id.index()]
    }

    /// Size in bytes of a live dependence.
    pub fn size(&self, id: DepId) -> u64 {
        self.check_live(id);
        self.size[id.index()]
    }

    /// Last writer of a live dependence, if still in flight.
    pub fn last_writer(&self, id: DepId) -> Option<TaskId> {
        self.check_live(id);
        self.last_writer[id.index()]
    }

    /// Updates the last writer of a live dependence.
    pub fn set_last_writer(&mut self, id: DepId, writer: Option<TaskId>) {
        self.check_live(id);
        self.last_writer[id.index()] = writer;
    }

    /// Reader-list head of a live dependence.
    pub fn reader_list(&self, id: DepId) -> ListHandle {
        self.check_live(id);
        self.reader_list[id.index()]
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: DepId) -> Option<DepEntry> {
        let entry = self.get(id)?;
        self.occupied[id.index()] = false;
        self.live -= 1;
        Some(entry)
    }

    /// Iterates over the live `(id, entry)` pairs, recomposing rows.
    pub fn iter(&self) -> impl Iterator<Item = (DepId, DepEntry)> + '_ {
        self.occupied.iter().enumerate().filter_map(|(i, &occ)| {
            let id = DepId::new(i as u32);
            occ.then(|| (id, self.get(id).expect("occupied entry is live")))
        })
    }
}

// Snapshot support: every column is persisted verbatim, dead slots
// included — the column contents of unoccupied rows are never observed,
// but persisting them verbatim keeps the load path a straight copy.
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for TaskTable {
    fn save(&self, out: &mut Vec<u8>) {
        self.descriptor.save(out);
        self.num_predecessors.save(out);
        self.num_successors.save(out);
        self.successor_list.save(out);
        self.dependence_list.save(out);
        self.under_construction.save(out);
        self.occupied.save(out);
        self.live.save(out);
        self.peak.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let table = TaskTable {
            descriptor: Vec::load(r)?,
            num_predecessors: Vec::load(r)?,
            num_successors: Vec::load(r)?,
            successor_list: Vec::load(r)?,
            dependence_list: Vec::load(r)?,
            under_construction: Vec::load(r)?,
            occupied: Vec::load(r)?,
            live: usize::load(r)?,
            peak: usize::load(r)?,
        };
        let capacity = table.occupied.len();
        let live = table.occupied.iter().filter(|&&o| o).count();
        if capacity == 0
            || table.descriptor.len() != capacity
            || table.num_predecessors.len() != capacity
            || table.num_successors.len() != capacity
            || table.successor_list.len() != capacity
            || table.dependence_list.len() != capacity
            || table.under_construction.len() != capacity
            || live != table.live
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "task table is inconsistent ({capacity} entries, {} occupied vs \
                     recorded {})",
                    live, table.live
                ),
            });
        }
        Ok(table)
    }
}

impl Persist for DependenceTable {
    fn save(&self, out: &mut Vec<u8>) {
        self.addr.save(out);
        self.size.save(out);
        self.last_writer.save(out);
        self.reader_list.save(out);
        self.occupied.save(out);
        self.live.save(out);
        self.peak.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let table = DependenceTable {
            addr: Vec::load(r)?,
            size: Vec::load(r)?,
            last_writer: Vec::load(r)?,
            reader_list: Vec::load(r)?,
            occupied: Vec::load(r)?,
            live: usize::load(r)?,
            peak: usize::load(r)?,
        };
        let capacity = table.occupied.len();
        let live = table.occupied.iter().filter(|&&o| o).count();
        if capacity == 0
            || table.addr.len() != capacity
            || table.size.len() != capacity
            || table.last_writer.len() != capacity
            || table.reader_list.len() != capacity
            || live != table.live
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "dependence table is inconsistent ({capacity} entries, {} occupied \
                     vs recorded {})",
                    live, table.live
                ),
            });
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> ListHandle {
        // A placeholder handle for table-only tests; tables never dereference
        // handles themselves.
        let mut la = crate::list_array::ListArray::new(1, 1);
        la.alloc_list().unwrap()
    }

    fn task_entry(addr: u64) -> TaskEntry {
        TaskEntry {
            descriptor: DescriptorAddr(addr),
            num_predecessors: 0,
            num_successors: 0,
            successor_list: handle(),
            dependence_list: handle(),
            under_construction: true,
        }
    }

    #[test]
    fn task_table_insert_get_remove() {
        let mut t = TaskTable::new(4);
        let id = TaskId::new(2);
        t.insert(id, task_entry(0x1000));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap().descriptor, DescriptorAddr(0x1000));
        for _ in 0..3 {
            t.inc_predecessors(id);
        }
        assert_eq!(t.get(id).unwrap().num_predecessors, 3);
        assert_eq!(t.num_predecessors(id), 3);
        let removed = t.remove(id).unwrap();
        assert_eq!(removed.num_predecessors, 3);
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn task_table_column_accessors_roundtrip() {
        let mut t = TaskTable::new(4);
        let id = TaskId::new(1);
        t.insert(id, task_entry(0x2000));
        assert_eq!(t.descriptor(id), DescriptorAddr(0x2000));
        assert!(t.under_construction(id));
        t.submit(id);
        assert!(!t.under_construction(id));
        t.inc_successors(id);
        t.inc_successors(id);
        assert_eq!(t.num_successors(id), 2);
        t.inc_predecessors(id);
        assert_eq!(t.dec_predecessors(id), 0);
        assert_eq!(t.successor_list(id), t.get(id).unwrap().successor_list);
        assert_eq!(t.dependence_list(id), t.get(id).unwrap().dependence_list);
    }

    #[test]
    fn task_table_peak_tracks_high_water_mark() {
        let mut t = TaskTable::new(4);
        t.insert(TaskId::new(0), task_entry(1));
        t.insert(TaskId::new(1), task_entry(2));
        t.remove(TaskId::new(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn task_table_double_insert_panics() {
        let mut t = TaskTable::new(4);
        t.insert(TaskId::new(0), task_entry(1));
        t.insert(TaskId::new(0), task_entry(2));
    }

    #[test]
    #[should_panic(expected = "is not live")]
    fn task_table_dead_accessor_panics() {
        let t = TaskTable::new(4);
        let _ = t.descriptor(TaskId::new(0));
    }

    #[test]
    fn task_table_iter_yields_live_entries() {
        let mut t = TaskTable::new(8);
        t.insert(TaskId::new(1), task_entry(10));
        t.insert(TaskId::new(5), task_entry(50));
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![1, 5]);
    }

    #[test]
    fn dependence_table_insert_get_remove() {
        let mut t = DependenceTable::new(4);
        let id = DepId::new(3);
        t.insert(
            id,
            DepEntry {
                addr: DepAddr(0xBEEF),
                size: 4096,
                last_writer: None,
                reader_list: handle(),
            },
        );
        assert_eq!(t.get(id).unwrap().addr, DepAddr(0xBEEF));
        assert_eq!(t.addr(id), DepAddr(0xBEEF));
        assert_eq!(t.size(id), 4096);
        assert!(t.contains(id));
        t.set_last_writer(id, Some(TaskId::new(7)));
        assert_eq!(t.get(id).unwrap().last_writer, Some(TaskId::new(7)));
        assert_eq!(t.last_writer(id), Some(TaskId::new(7)));
        assert!(t.remove(id).is_some());
        assert!(t.remove(id).is_none());
        assert!(!t.contains(id));
    }

    #[test]
    fn dependence_table_len_and_peak() {
        let mut t = DependenceTable::new(4);
        assert!(t.is_empty());
        for i in 0..3u32 {
            t.insert(
                DepId::new(i),
                DepEntry {
                    addr: DepAddr(u64::from(i)),
                    size: 64,
                    last_writer: None,
                    reader_list: handle(),
                },
            );
        }
        assert_eq!(t.len(), 3);
        t.remove(DepId::new(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.peak(), 3);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_task_table_panics() {
        let _ = TaskTable::new(0);
    }
}
