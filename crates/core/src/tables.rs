//! Task Table and Dependence Table (Figure 4 of the paper).
//!
//! Both tables are direct-access SRAMs indexed by the internal IDs produced
//! by the alias tables. The Task Table stores, per in-flight task, the task
//! descriptor address, the predecessor and successor counts and the head
//! pointers of its successor and dependence lists. The Dependence Table
//! stores, per in-flight dependence, the ID of its last writer and the head
//! pointer of its reader list.

use serde::{Deserialize, Serialize};

use crate::ids::{DepAddr, DepId, DescriptorAddr, TaskId};
use crate::list_array::ListHandle;

/// One Task Table entry: the bookkeeping of a single in-flight task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEntry {
    /// Address of the runtime's task descriptor (returned by
    /// `get_ready_task`).
    pub descriptor: DescriptorAddr,
    /// Number of unsatisfied predecessors. The task becomes ready when this
    /// reaches zero after its creation completed.
    pub num_predecessors: u32,
    /// Number of successors registered so far (returned to the runtime so
    /// priority schedulers can use it).
    pub num_successors: u32,
    /// Head of this task's successor list in the Successor List Array.
    pub successor_list: ListHandle,
    /// Head of this task's dependence list in the Dependence List Array.
    pub dependence_list: ListHandle,
    /// True while the runtime is still adding dependences (between
    /// `create_task` and the implicit submission at the first instruction of
    /// another task or at execution). Tasks are not inserted in the Ready
    /// Queue while under construction even if their predecessor count is
    /// zero.
    pub under_construction: bool,
}

/// A direct-mapped table of in-flight tasks, indexed by [`TaskId`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskTable {
    entries: Vec<Option<TaskEntry>>,
    live: usize,
    peak: usize,
}

impl TaskTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "task table needs at least one entry");
        TaskTable {
            entries: vec![None; capacity],
            live: 0,
            peak: 0,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest number of simultaneously live entries.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Installs `entry` at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already occupied — the alias table
    /// guarantees freshly allocated IDs are free.
    pub fn insert(&mut self, id: TaskId, entry: TaskEntry) {
        let slot = &mut self.entries[id.index()];
        assert!(slot.is_none(), "task table entry {id} is already occupied");
        *slot = Some(entry);
        self.live += 1;
        self.peak = self.peak.max(self.live);
    }

    /// Returns the entry at `id`, if live.
    pub fn get(&self, id: TaskId) -> Option<&TaskEntry> {
        self.entries.get(id.index()).and_then(|e| e.as_ref())
    }

    /// Returns the entry at `id` mutably, if live.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut TaskEntry> {
        self.entries.get_mut(id.index()).and_then(|e| e.as_mut())
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: TaskId) -> Option<TaskEntry> {
        let removed = self.entries.get_mut(id.index()).and_then(|e| e.take());
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Iterates over the live `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|entry| (TaskId::new(i as u32), entry)))
    }
}

/// One Dependence Table entry: the bookkeeping of a single in-flight
/// dependence (a data address that at least one in-flight task names).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEntry {
    /// Base address of the dependence.
    pub addr: DepAddr,
    /// Size in bytes, as provided by the runtime in `add_dependence` (used
    /// for the dynamic index-bit selection and by locality modelling).
    pub size: u64,
    /// Task that last declared an output on this address, if still in flight.
    pub last_writer: Option<TaskId>,
    /// Head of the reader list in the Reader List Array.
    pub reader_list: ListHandle,
}

/// A direct-mapped table of in-flight dependences, indexed by [`DepId`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependenceTable {
    entries: Vec<Option<DepEntry>>,
    live: usize,
    peak: usize,
}

impl DependenceTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dependence table needs at least one entry");
        DependenceTable {
            entries: vec![None; capacity],
            live: 0,
            peak: 0,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest number of simultaneously live entries.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Installs `entry` at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already occupied.
    pub fn insert(&mut self, id: DepId, entry: DepEntry) {
        let slot = &mut self.entries[id.index()];
        assert!(
            slot.is_none(),
            "dependence table entry {id} is already occupied"
        );
        *slot = Some(entry);
        self.live += 1;
        self.peak = self.peak.max(self.live);
    }

    /// Returns the entry at `id`, if live.
    pub fn get(&self, id: DepId) -> Option<&DepEntry> {
        self.entries.get(id.index()).and_then(|e| e.as_ref())
    }

    /// Returns the entry at `id` mutably, if live.
    pub fn get_mut(&mut self, id: DepId) -> Option<&mut DepEntry> {
        self.entries.get_mut(id.index()).and_then(|e| e.as_mut())
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: DepId) -> Option<DepEntry> {
        let removed = self.entries.get_mut(id.index()).and_then(|e| e.take());
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Iterates over the live `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DepId, &DepEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|entry| (DepId::new(i as u32), entry)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> ListHandle {
        // A placeholder handle for table-only tests; tables never dereference
        // handles themselves.
        let mut la = crate::list_array::ListArray::new(1, 1);
        la.alloc_list().unwrap()
    }

    fn task_entry(addr: u64) -> TaskEntry {
        TaskEntry {
            descriptor: DescriptorAddr(addr),
            num_predecessors: 0,
            num_successors: 0,
            successor_list: handle(),
            dependence_list: handle(),
            under_construction: true,
        }
    }

    #[test]
    fn task_table_insert_get_remove() {
        let mut t = TaskTable::new(4);
        let id = TaskId::new(2);
        t.insert(id, task_entry(0x1000));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap().descriptor, DescriptorAddr(0x1000));
        t.get_mut(id).unwrap().num_predecessors = 3;
        assert_eq!(t.get(id).unwrap().num_predecessors, 3);
        let removed = t.remove(id).unwrap();
        assert_eq!(removed.num_predecessors, 3);
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn task_table_peak_tracks_high_water_mark() {
        let mut t = TaskTable::new(4);
        t.insert(TaskId::new(0), task_entry(1));
        t.insert(TaskId::new(1), task_entry(2));
        t.remove(TaskId::new(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn task_table_double_insert_panics() {
        let mut t = TaskTable::new(4);
        t.insert(TaskId::new(0), task_entry(1));
        t.insert(TaskId::new(0), task_entry(2));
    }

    #[test]
    fn task_table_iter_yields_live_entries() {
        let mut t = TaskTable::new(8);
        t.insert(TaskId::new(1), task_entry(10));
        t.insert(TaskId::new(5), task_entry(50));
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![1, 5]);
    }

    #[test]
    fn dependence_table_insert_get_remove() {
        let mut t = DependenceTable::new(4);
        let id = DepId::new(3);
        t.insert(
            id,
            DepEntry {
                addr: DepAddr(0xBEEF),
                size: 4096,
                last_writer: None,
                reader_list: handle(),
            },
        );
        assert_eq!(t.get(id).unwrap().addr, DepAddr(0xBEEF));
        t.get_mut(id).unwrap().last_writer = Some(TaskId::new(7));
        assert_eq!(t.get(id).unwrap().last_writer, Some(TaskId::new(7)));
        assert!(t.remove(id).is_some());
        assert!(t.remove(id).is_none());
    }

    #[test]
    fn dependence_table_len_and_peak() {
        let mut t = DependenceTable::new(4);
        assert!(t.is_empty());
        for i in 0..3u32 {
            t.insert(
                DepId::new(i),
                DepEntry {
                    addr: DepAddr(u64::from(i)),
                    size: 64,
                    last_writer: None,
                    reader_list: handle(),
                },
            );
        }
        assert_eq!(t.len(), 3);
        t.remove(DepId::new(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.peak(), 3);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_task_table_panics() {
        let _ = TaskTable::new(0);
    }
}
