//! McPAT-style chip power model.
//!
//! The paper evaluates power with McPAT at 22 nm and 0.6 V with clock gating.
//! At the granularity this reproduction works at, the relevant effects are:
//! a busy core burns more power than an idle (clock-gated) core, the shared
//! uncore (L2, NoC, memory controllers) burns power for the whole execution,
//! and the DMU adds a negligible amount (< 0.01 % of chip power). Those are
//! exactly the knobs of [`ChipPowerModel`].

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Frequency;
use tdm_sim::stats::{Phase, SimStats};

/// Per-component power figures for the simulated 32-core chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipPowerModel {
    /// Power of a core actively executing instructions (task bodies or
    /// runtime-system code), in watts.
    pub core_active_w: f64,
    /// Power of an idle, clock-gated core, in watts.
    pub core_idle_w: f64,
    /// Power of the shared uncore (L2, NoC, memory controllers), in watts.
    pub uncore_w: f64,
}

impl Default for ChipPowerModel {
    /// Values representative of a low-voltage 22 nm out-of-order core
    /// (≈1.2 W active, ≈0.45 W clock-gated) plus a 4 MB L2 and NoC.
    fn default() -> Self {
        ChipPowerModel {
            core_active_w: 1.2,
            core_idle_w: 0.45,
            uncore_w: 4.0,
        }
    }
}

impl ChipPowerModel {
    /// Energy in joules consumed by the cores and uncore for the execution
    /// described by `stats`, at clock frequency `frequency`.
    ///
    /// DEPS, SCHED and EXEC cycles count as active; IDLE cycles as gated.
    pub fn energy_joules(&self, stats: &SimStats, frequency: Frequency) -> f64 {
        let mut core_energy = 0.0;
        for core in &stats.cores {
            let active = core.get(Phase::Deps) + core.get(Phase::Sched) + core.get(Phase::Exec);
            let idle = core.get(Phase::Idle);
            core_energy += frequency.secs_from_cycles(active) * self.core_active_w
                + frequency.secs_from_cycles(idle) * self.core_idle_w;
        }
        let uncore_energy = frequency.secs_from_cycles(stats.makespan) * self.uncore_w;
        core_energy + uncore_energy
    }

    /// Average chip power in watts over the execution described by `stats`.
    pub fn average_power_w(&self, stats: &SimStats, frequency: Frequency) -> f64 {
        let time = frequency.secs_from_cycles(stats.makespan);
        if time == 0.0 {
            0.0
        } else {
            self.energy_joules(stats, frequency) / time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_sim::clock::Cycle;

    fn stats_with(active: u64, idle: u64, cores: usize) -> SimStats {
        let mut stats = SimStats::new(cores, 0);
        for core in &mut stats.cores {
            core.add(Phase::Exec, Cycle::new(active));
            core.add(Phase::Idle, Cycle::new(idle));
        }
        stats.makespan = Cycle::new(active + idle);
        stats
    }

    #[test]
    fn busy_chip_burns_more_than_idle_chip() {
        let model = ChipPowerModel::default();
        let freq = Frequency::ghz(2.0);
        let busy = stats_with(2_000_000_000, 0, 4);
        let idle = stats_with(0, 2_000_000_000, 4);
        assert!(model.energy_joules(&busy, freq) > model.energy_joules(&idle, freq));
    }

    #[test]
    fn energy_scales_with_time() {
        let model = ChipPowerModel::default();
        let freq = Frequency::ghz(2.0);
        let short = stats_with(1_000_000, 0, 2);
        let long = stats_with(2_000_000, 0, 2);
        let ratio = model.energy_joules(&long, freq) / model.energy_joules(&short, freq);
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn average_power_is_bounded_by_all_active() {
        let model = ChipPowerModel::default();
        let freq = Frequency::ghz(2.0);
        let stats = stats_with(1_000_000, 1_000_000, 32);
        let p = model.average_power_w(&stats, freq);
        let max = 32.0 * model.core_active_w + model.uncore_w;
        let min = 32.0 * model.core_idle_w + model.uncore_w;
        assert!(p > min && p < max, "power {p} outside [{min}, {max}]");
    }

    #[test]
    fn one_second_fully_active_chip_energy() {
        // 32 cores fully active for 1 s at 2 GHz: 32*1.2 + 4 = 42.4 J.
        let model = ChipPowerModel::default();
        let freq = Frequency::ghz(2.0);
        let stats = stats_with(2_000_000_000, 0, 32);
        let e = model.energy_joules(&stats, freq);
        assert!((e - 42.4).abs() < 0.1, "got {e}");
    }

    #[test]
    fn empty_run_has_zero_power() {
        let model = ChipPowerModel::default();
        let stats = SimStats::new(2, 0);
        assert_eq!(model.average_power_w(&stats, Frequency::ghz(2.0)), 0.0);
    }
}
