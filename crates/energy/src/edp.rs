//! Energy, Energy-Delay Product and DMU power accounting.
//!
//! Figures 12 and 13 of the paper report EDP normalized to the software
//! runtime with a FIFO scheduler, including the power added by the hardware
//! structures of TDM, Carbon and Task Superscalar. [`evaluate`] combines the
//! chip power model with the DMU access counts of a run to produce the same
//! metrics.

use serde::Serialize;
use tdm_core::area::DmuStorageReport;
use tdm_core::config::DmuConfig;
use tdm_runtime::exec::RunReport;
use tdm_sim::clock::Frequency;

use crate::chip::ChipPowerModel;
use crate::sram::{access_energy_pj, leakage_mw, SramKind};

/// Energy metrics of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyReport {
    /// Execution time in seconds.
    pub time_s: f64,
    /// Chip (cores + uncore) energy in joules.
    pub chip_energy_j: f64,
    /// Energy added by the hardware task/dependence structures in joules
    /// (zero for the pure software runtime).
    pub accelerator_energy_j: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
}

impl EnergyReport {
    /// Total energy (chip + accelerator).
    pub fn total_energy_j(&self) -> f64 {
        self.chip_energy_j + self.accelerator_energy_j
    }

    /// Fraction of total energy contributed by the accelerator structures.
    pub fn accelerator_fraction(&self) -> f64 {
        let total = self.total_energy_j();
        if total == 0.0 {
            0.0
        } else {
            self.accelerator_energy_j / total
        }
    }

    /// This run's EDP normalized to `baseline` (values below 1.0 are
    /// improvements).
    pub fn normalized_edp(&self, baseline: &EnergyReport) -> f64 {
        self.edp / baseline.edp
    }
}

/// Energy consumed by the DMU for a run: one average-sized SRAM access per
/// recorded structure access plus leakage over the whole execution.
fn dmu_energy_joules(report: &RunReport, dmu: &DmuConfig, frequency: Frequency) -> f64 {
    let Some(hw) = &report.hardware else {
        return 0.0;
    };
    let storage = DmuStorageReport::for_config(dmu);
    let total_kb = storage.total_kilobytes();
    let avg_structure_kb = total_kb / storage.structures.len() as f64;
    let dynamic_pj = hw.stats.total_accesses as f64
        * access_energy_pj(avg_structure_kb, SramKind::SetAssociative);
    let time_s = frequency.secs_from_cycles(report.stats.makespan);
    let leakage_j = leakage_mw(total_kb) * 1e-3 * time_s;
    dynamic_pj * 1e-12 + leakage_j
}

/// Evaluates the energy metrics of a run. `dmu` describes the hardware
/// tracker geometry for backends that have one (TDM, Task Superscalar) and is
/// ignored for software-only runs.
pub fn evaluate(
    report: &RunReport,
    chip_model: &ChipPowerModel,
    dmu: &DmuConfig,
    frequency: Frequency,
) -> EnergyReport {
    let time_s = frequency.secs_from_cycles(report.stats.makespan);
    let chip_energy_j = chip_model.energy_joules(&report.stats, frequency);
    let accelerator_energy_j = dmu_energy_joules(report, dmu, frequency);
    let total = chip_energy_j + accelerator_energy_j;
    EnergyReport {
        time_s,
        chip_energy_j,
        accelerator_energy_j,
        edp: total * time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_runtime::exec::{simulate, Backend, ExecConfig};
    use tdm_runtime::scheduler::SchedulerKind;
    use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};
    use tdm_sim::clock::Cycle;

    fn workload() -> Workload {
        let tasks = (0..200u64)
            .map(|i| {
                TaskSpec::new(
                    "t",
                    Cycle::new(120_000),
                    vec![
                        DependenceSpec::input(0x1000_0000 + (i % 16) * 0x10000, 0x10000),
                        DependenceSpec::inout(0x2000_0000 + (i % 32) * 0x10000, 0x10000),
                    ],
                )
            })
            .collect();
        Workload::new("energy-test", tasks)
    }

    #[test]
    fn dmu_power_is_negligible() {
        let w = workload();
        let config = ExecConfig::default();
        let run = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
        let report = evaluate(
            &run,
            &ChipPowerModel::default(),
            &DmuConfig::default(),
            Frequency::ghz(2.0),
        );
        assert!(report.accelerator_energy_j > 0.0);
        assert!(
            report.accelerator_fraction() < 1e-3,
            "DMU should contribute far less than 0.1% of energy, got {:.6}",
            report.accelerator_fraction()
        );
    }

    #[test]
    fn software_run_has_no_accelerator_energy() {
        let w = workload();
        let config = ExecConfig::default();
        let run = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &config);
        let report = evaluate(
            &run,
            &ChipPowerModel::default(),
            &DmuConfig::default(),
            Frequency::ghz(2.0),
        );
        assert_eq!(report.accelerator_energy_j, 0.0);
        assert!(report.chip_energy_j > 0.0);
        assert!(report.edp > 0.0);
    }

    #[test]
    fn faster_run_with_same_power_has_lower_edp() {
        let w = workload();
        let config = ExecConfig::default();
        let sw = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &config);
        let tdm = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
        let model = ChipPowerModel::default();
        let freq = Frequency::ghz(2.0);
        let sw_e = evaluate(&sw, &model, &DmuConfig::default(), freq);
        let tdm_e = evaluate(&tdm, &model, &DmuConfig::default(), freq);
        if tdm.makespan() < sw.makespan() {
            assert!(tdm_e.normalized_edp(&sw_e) < 1.0);
        }
    }

    #[test]
    fn edp_is_energy_times_time() {
        let r = EnergyReport {
            time_s: 2.0,
            chip_energy_j: 10.0,
            accelerator_energy_j: 0.5,
            edp: 21.0,
        };
        assert!((r.total_energy_j() - 10.5).abs() < 1e-12);
        assert!((r.accelerator_fraction() - 0.5 / 10.5).abs() < 1e-12);
    }
}
