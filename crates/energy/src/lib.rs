//! # tdm-energy — area, power and EDP models
//!
//! The paper evaluates power with McPAT and models the DMU structures with
//! CACTI 6.0 at 22 nm (Section IV-A), reporting DMU area in Table III and
//! energy-delay product (EDP) in Figures 12 and 13. This crate provides the
//! equivalent analytical models:
//!
//! * [`sram`] — CACTI-style area, access energy and leakage of SRAM macros,
//!   calibrated against the per-structure areas of Table III;
//! * [`chip`] — a McPAT-style chip power model (active/idle cores plus
//!   uncore);
//! * [`edp`] — energy and EDP evaluation of a simulated run, including the
//!   (negligible) DMU contribution.
//!
//! # Example
//!
//! ```
//! use tdm_energy::sram::{area_mm2, SramKind};
//!
//! // The 18.75 KB DAT occupies roughly 0.031 mm² at 22 nm (Table III).
//! let area = area_mm2(18.75, SramKind::SetAssociative);
//! assert!((area - 0.031).abs() < 0.005);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chip;
pub mod edp;
pub mod sram;

pub use chip::ChipPowerModel;
pub use edp::{evaluate, EnergyReport};
