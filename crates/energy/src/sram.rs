//! CACTI-style SRAM area and energy estimates.
//!
//! The paper models the DMU structures with CACTI 6.0 at 22 nm to obtain the
//! per-structure areas of Table III (0.17 mm² total) and reports that the DMU
//! contributes less than 0.01 % of chip power. We reproduce that with a
//! simple linear model fitted to Table III: small SRAMs have a fixed layout
//! overhead (larger for set-associative arrays, which need comparators and
//! way multiplexers) plus an area term proportional to capacity.

use serde::{Deserialize, Serialize};

/// The kind of SRAM macro, which determines the fixed layout overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SramKind {
    /// Direct-mapped array (Task Table, Dependence Table, list arrays).
    DirectMapped,
    /// Set-associative array with tag comparison (TAT, DAT).
    SetAssociative,
    /// FIFO queue (Ready Queue).
    Fifo,
}

/// Fixed area overhead per macro, in mm² at 22 nm.
fn base_area_mm2(kind: SramKind) -> f64 {
    match kind {
        SramKind::DirectMapped => 0.010,
        SramKind::SetAssociative => 0.018,
        SramKind::Fifo => 0.010,
    }
}

/// Area per kilobyte of capacity, in mm²/KB at 22 nm.
const AREA_PER_KB_MM2: f64 = 0.00068;

/// Estimated area of an SRAM macro of `kilobytes` capacity.
pub fn area_mm2(kilobytes: f64, kind: SramKind) -> f64 {
    assert!(kilobytes >= 0.0, "capacity cannot be negative");
    base_area_mm2(kind) + kilobytes * AREA_PER_KB_MM2
}

/// Estimated dynamic energy of one access to an SRAM macro of `kilobytes`
/// capacity, in picojoules (22 nm, 0.6 V).
pub fn access_energy_pj(kilobytes: f64, kind: SramKind) -> f64 {
    assert!(kilobytes >= 0.0, "capacity cannot be negative");
    let base = match kind {
        SramKind::DirectMapped => 0.8,
        SramKind::SetAssociative => 1.6, // tag comparison across ways
        SramKind::Fifo => 0.6,
    };
    base + 0.05 * kilobytes
}

/// Estimated leakage power of an SRAM macro of `kilobytes` capacity, in
/// milliwatts (22 nm, 0.6 V, with clock gating).
pub fn leakage_mw(kilobytes: f64) -> f64 {
    assert!(kilobytes >= 0.0, "capacity cannot be negative");
    0.01 + 0.012 * kilobytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::area::DmuStorageReport;
    use tdm_core::config::DmuConfig;

    /// Recomputes the per-structure areas of Table III and checks both the
    /// individual values and the 0.17 mm² total.
    #[test]
    fn table_iii_areas_are_reproduced() {
        let report = DmuStorageReport::for_config(&DmuConfig::default());
        let kind_of = |name: &str| match name {
            "TAT" | "DAT" => SramKind::SetAssociative,
            "ReadyQ" => SramKind::Fifo,
            _ => SramKind::DirectMapped,
        };
        let expected = [
            ("Task Table", 0.026),
            ("Dep Table", 0.013),
            ("TAT", 0.031),
            ("DAT", 0.031),
            ("SLA", 0.019),
            ("DLA", 0.019),
            ("RLA", 0.019),
            ("ReadyQ", 0.012),
        ];
        let mut total = 0.0;
        for (name, paper_mm2) in expected {
            let kb = report.kilobytes_of(name).unwrap();
            let got = area_mm2(kb, kind_of(name));
            total += got;
            assert!(
                (got - paper_mm2).abs() / paper_mm2 < 0.25,
                "{name}: expected ≈{paper_mm2} mm², computed {got:.4} mm²"
            );
        }
        assert!(
            (total - 0.17).abs() / 0.17 < 0.15,
            "total DMU area expected ≈0.17 mm², computed {total:.3} mm²"
        );
    }

    #[test]
    fn area_grows_with_capacity_and_associativity() {
        assert!(area_mm2(32.0, SramKind::DirectMapped) > area_mm2(16.0, SramKind::DirectMapped));
        assert!(area_mm2(16.0, SramKind::SetAssociative) > area_mm2(16.0, SramKind::DirectMapped));
    }

    #[test]
    fn access_energy_and_leakage_are_positive_and_monotonic() {
        assert!(access_energy_pj(0.0, SramKind::Fifo) > 0.0);
        assert!(
            access_energy_pj(64.0, SramKind::DirectMapped)
                > access_energy_pj(8.0, SramKind::DirectMapped)
        );
        assert!(leakage_mw(64.0) > leakage_mw(8.0));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_capacity_panics() {
        let _ = area_mm2(-1.0, SramKind::Fifo);
    }
}
