//! A hand-rolled Rust lexer, just deep enough for lint scoping.
//!
//! The analyzer needs to see identifiers, punctuation and brace structure
//! while *not* seeing the contents of strings, char literals and comments
//! (a `HashMap` mentioned in a doc comment is not a finding). This lexer
//! produces exactly that: a stream of code [`Token`]s with line/column
//! positions, plus the line comments as a side channel (the allow-comment
//! syntax lives in comments, so they are data for the analyzer even though
//! they are trivia for the lints).
//!
//! It is intentionally not a full Rust lexer — no float-suffix edge cases,
//! no `c"…"` strings — but it must never mis-bracket real code in this
//! workspace: brace matching feeds test-region and impl-block detection,
//! so raw strings, nested block comments and lifetimes-vs-char-literals
//! are handled precisely.

/// What a code token is. Comments never appear here (see [`Comment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `as`, …).
    Ident,
    /// Punctuation, either one char (`{`, `<`) or a fused pair the lints
    /// must not split (`::`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `..`).
    Punct,
    /// Integer or float literal (value is irrelevant to every lint).
    Number,
    /// String, raw string, byte string or char literal.
    Literal,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One code token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text, verbatim (for [`TokenKind::Literal`] only the
    /// opening character is kept — no lint looks inside literals).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

impl Token {
    /// True if this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True if this is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// One `//` or `/* */` comment, kept for allow-comment parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Rust keywords, used to tell `buf[i]` (indexing) from `let [a, b] = …`
/// (pattern) and friends.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

/// True if `word` is a Rust keyword.
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Two-character punctuation fused into single tokens so downstream
/// pattern matching never confuses `==` with `=` or `::` with a struct
/// field's `:`.
const FUSED: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "&&",
    "||",
];

/// Lexes `source` into tokens and comments. Total: every input produces a
/// result (unterminated literals are closed at end of file).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    // Advances over chars[i..i+n], tracking line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also catches `///` and `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!(1);
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: tok_line,
            });
            continue;
        }

        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 0;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: tok_line,
            });
            continue;
        }

        // Raw / byte literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if (c == 'r' || c == 'b') && is_string_start(&chars, i) {
            let mut j = i + 1;
            if c == 'b' && (chars.get(j) == Some(&'r')) {
                j += 1;
            }
            let raw = c == 'r' || chars.get(i + 1) == Some(&'r');
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // j is now at the opening quote (`"` or, for b'…', `'`).
            let quote = chars.get(j).copied().unwrap_or('"');
            bump!(j - i + 1);
            if raw {
                // Scan for `"` followed by `hashes` `#`s; no escapes.
                while i < chars.len() {
                    if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                        bump!(1 + hashes);
                        break;
                    }
                    bump!(1);
                }
            } else {
                consume_quoted(&chars, &mut i, &mut line, &mut col, quote);
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::from(c),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        // Plain string.
        if c == '"' {
            bump!(1);
            consume_quoted(&chars, &mut i, &mut line, &mut col, '"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: "\"".to_string(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if (n.is_alphanumeric() || n == '_') && after == Some('\'') => true,
                Some(n) if !n.is_alphanumeric() && n != '_' => true, // e.g. '(' … ')'
                _ => false,
            };
            if is_char {
                bump!(1);
                consume_quoted(&chars, &mut i, &mut line, &mut col, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "'".to_string(),
                    line: tok_line,
                    col: tok_col,
                });
            } else {
                // Lifetime or label: consume ident chars.
                let start = i;
                bump!(1);
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!(1);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tok_line,
                    col: tok_col,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!(1);
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        // Number: digits, hex/octal/binary, suffixes; `.` only when it
        // starts a fractional part (so `0..n` stays two tokens).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() {
                let d = chars[i];
                let fraction_dot = d == '.'
                    && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    && chars.get(i.wrapping_sub(1)) != Some(&'.');
                if d.is_alphanumeric() || d == '_' || fraction_dot {
                    bump!(1);
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        // Fused punctuation pairs first (`..=` lexes as `..` then `=`,
        // which is fine — no lint distinguishes them).
        let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if pair.len() == 2 && (FUSED.contains(&pair.as_str()) || pair == "..") {
            bump!(2);
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: pair,
                line: tok_line,
                col: tok_col,
            });
            continue;
        }

        // Single-char punctuation.
        bump!(1);
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: tok_line,
            col: tok_col,
        });
    }

    out
}

/// True if position `i` (at `r` or `b`) starts a string/byte-string
/// literal rather than an identifier like `result`.
fn is_string_start(chars: &[char], i: usize) -> bool {
    // Not a literal prefix if the previous char continues an identifier.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    if chars[i] == 'b' && chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    matches!(chars.get(j), Some('"')) || (chars[i] == 'b' && chars.get(i + 1) == Some(&'\''))
}

/// Consumes a quoted literal body (after the opening quote), honouring
/// backslash escapes, up to and including the closing `quote`.
fn consume_quoted(chars: &[char], i: &mut usize, line: &mut usize, col: &mut usize, quote: char) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
        if c == '\\' {
            // Skip the escaped char.
            if *i < chars.len() {
                if chars[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        } else if c == quote {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let b = b"HashMap bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn fused_punctuation_stays_fused() {
        let toks = lex("a == b; c != d; p::q; x -> y; m => n; 0..9");
        let puncts: Vec<String> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        for expected in ["==", "!=", "::", "->", "=>", ".."] {
            assert!(puncts.contains(&expected.to_string()), "{expected}");
        }
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = lex("for i in 0..count {}").tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "0"));
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.is_ident("count")));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = lex(r#"let s = "a\"b"; after()"#).tokens;
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn unterminated_literals_do_not_loop_forever() {
        let _ = lex("let s = \"never closed");
        let _ = lex("let r = r#\"never closed");
        let _ = lex("/* never closed");
    }
}
