//! `tdm-lint` — workspace-aware static analysis for the TDM reproduction.
//!
//! Every guarantee the simulator sells (bit-identical replay across
//! backends, schedulers, thread counts, and snapshot/resume) rests on
//! source-level invariants: deterministic hashing, no wall-clock reads in
//! modeled code, total decoders, loss-free codec casts, and save/load
//! symmetry. This crate enforces them at `cargo` time with a hand-rolled
//! lexer and a lightweight item indexer — no external parser dependencies,
//! matching the workspace's shims-only policy.
//!
//! Layers:
//!
//! * [`lexer`] — Rust token stream with comments as a side channel.
//! * [`scope`] — per-file structural index: test regions, `Persist` impls,
//!   `tdm-lint: allow` comments.
//! * [`lints`] — the lint registry ([`lints::LINTS`]) and checks.
//! * [`runner`] — workspace walk and report formatting.
//!
//! The binary front-end is `tdm-lint check` (exits non-zero on findings)
//! and `tdm-lint list` (prints the registry). See ARCHITECTURE.md's
//! "Static analysis" section for the lint table and allow syntax.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod runner;
pub mod scope;

pub use lints::{classify, Finding, LINTS};
pub use runner::{check_workspace, Report};

/// Checks a single source file as if it lived at `rel_path` in the
/// workspace. This is the entry point the fixture corpus drives.
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let class = lints::classify(rel_path);
    let idx = scope::FileIndex::build(source);
    lints::check_file(&class, &idx)
}
