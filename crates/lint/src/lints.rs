//! The lint registry and per-file checks.
//!
//! Every lint is named by a short id (`D1`, `T1`, …) and documented in the
//! [`LINTS`] registry; `ARCHITECTURE.md`'s "Static analysis" section is the
//! human-readable mirror of that table. Each check is a pure function over
//! a [`FileIndex`] plus the file's classification — no I/O, so the fixture
//! corpus under `tests/fixtures/` drives them directly.
//!
//! Findings are *raw* until [`resolve_allows`] applies the
//! `// tdm-lint: allow(<id>): <rationale>` suppressions and emits the A1
//! hygiene findings for unused or malformed allows.

use crate::lexer::{is_keyword, Token, TokenKind};
use crate::scope::FileIndex;

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Short id used in findings and allow comments.
    pub id: &'static str,
    /// Kebab-case name.
    pub name: &'static str,
    /// What the lint enforces.
    pub summary: &'static str,
    /// One-line fix hint appended to findings.
    pub hint: &'static str,
}

/// Every lint `tdm-lint` knows, in report order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "D1",
        name: "default-hasher-map",
        summary: "`HashMap`/`HashSet` with the default SipHash hasher in deterministic \
                  (non-bench, non-test) code",
        hint: "use `tdm_sim::fast_map::FastMap` or name a hasher type parameter",
    },
    LintInfo {
        id: "D2",
        name: "wall-clock-in-model",
        summary: "`Instant`/`SystemTime`/`std::env` reads inside modeled code (wall-clock \
                  and environment belong to the bench harness only)",
        hint: "thread the value in from the harness instead of reading it in the model",
    },
    LintInfo {
        id: "T1",
        name: "panicking-decoder",
        summary: "`unwrap`/`expect`/`panic!`-family/slice indexing in the total-decoder \
                  modules (snapshot + trace codecs must never panic on bad input)",
        hint: "return a typed `SnapshotError`/`TraceError` (use `get`/`try_into`/`ok_or`)",
    },
    LintInfo {
        id: "C1",
        name: "lossy-cast-in-codec",
        summary: "potentially narrowing `as` cast (to u8/u16/u32/i8/i16/i32/usize/isize/char) \
                  in codec modules or `Persist` impls",
        hint: "use `try_from`/`try_into` with a typed error, or `u32::from`-style widening",
    },
    LintInfo {
        id: "C2",
        name: "save-load-drift",
        summary: "`Persist::save` and `Persist::load` disagree on field idents or order \
                  (plain field-per-statement impls only)",
        hint: "make `load` read exactly the fields `save` writes, in the same order",
    },
    LintInfo {
        id: "U1",
        name: "missing-forbid-unsafe",
        summary: "workspace crate root without `#![forbid(unsafe_code)]`",
        hint: "add `#![forbid(unsafe_code)]` under the crate docs (or a file-level allow \
               with the reason the crate needs unsafe)",
    },
    LintInfo {
        id: "A1",
        name: "allow-hygiene",
        summary: "`tdm-lint: allow` comment that is malformed, names an unknown lint, \
                  lacks a rationale, or suppresses nothing",
        hint: "every allow needs `allow(<ids>): <why>` and must guard a real finding; \
               delete stale ones",
    },
];

/// Looks up a lint id in [`LINTS`].
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.id == id)
}

/// The modules whose decoders must be total (T1) and cast-clean (C1).
pub const DECODER_MODULES: &[&str] = &[
    "crates/sim/src/snapshot.rs",
    "crates/runtime/src/trace.rs",
    "crates/runtime/src/fault.rs",
];

/// Coarse classification of a file, derived from its workspace-relative
/// path. Decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library source of a modeled crate (core, sim, runtime, workloads,
    /// energy) or the root facade — the deterministic simulation itself.
    Modeled,
    /// The analyzer's own source (held to the determinism bar too).
    Tooling,
    /// Bench harness code: wall-clock and host randomness are its job.
    Bench,
    /// Offline dependency shims.
    Shim,
    /// Integration tests.
    Test,
    /// Examples.
    Example,
}

/// A classified file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Which family of code this is.
    pub role: Role,
    /// True for a package's `src/lib.rs` (U1 applies).
    pub is_lib_root: bool,
}

/// Classifies `rel_path` (workspace-relative, `/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    let p = rel_path;
    let role = if p.starts_with("tests/") || p.contains("/tests/") {
        Role::Test
    } else if p.contains("/benches/") {
        Role::Bench
    } else if p.starts_with("examples/") || p.contains("/examples/") {
        Role::Example
    } else if p.starts_with("crates/shims/") {
        Role::Shim
    } else if p.starts_with("crates/bench/") {
        Role::Bench
    } else if p.starts_with("crates/lint/") {
        Role::Tooling
    } else {
        Role::Modeled
    };
    FileClass {
        rel_path: p.to_string(),
        role,
        is_lib_root: p.ends_with("src/lib.rs"),
    }
}

/// One finding, before or after allow resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Lint id (`D1`, …).
    pub id: &'static str,
    /// One-line description of this occurrence.
    pub message: String,
}

impl Finding {
    fn at(class: &FileClass, tok: &Token, id: &'static str, message: String) -> Finding {
        Finding {
            file: class.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            id,
            message,
        }
    }
}

/// Runs every per-file lint on an indexed file and resolves allows.
/// This is the single entry point used by both the workspace runner and
/// the fixture harness.
pub fn check_file(class: &FileClass, idx: &FileIndex) -> Vec<Finding> {
    let mut raw = Vec::new();
    d1_default_hasher(class, idx, &mut raw);
    d2_wall_clock(class, idx, &mut raw);
    t1_panicking_decoder(class, idx, &mut raw);
    c1_lossy_cast(class, idx, &mut raw);
    c2_save_load_drift(class, idx, &mut raw);
    u1_forbid_unsafe(class, idx, &mut raw);
    resolve_allows(class, idx, raw)
}

// ---------------------------------------------------------------------------
// D1 — default-hasher maps
// ---------------------------------------------------------------------------

/// Number of top-level generic parameters after `tokens[idx]` (which must
/// be followed by `<`). `None` when the ident is not followed by generics.
fn generic_param_count(tokens: &[Token], idx: usize) -> Option<usize> {
    if !tokens.get(idx + 1).is_some_and(|t| t.is_punct("<")) {
        return None;
    }
    let mut depth = 1usize;
    let mut params = 1usize;
    // Bail after a generous window: a real argument list in this workspace
    // is far shorter, and a pathological stream must not loop.
    for t in tokens.iter().skip(idx + 2).take(256) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(params);
                }
            }
            "," if depth == 1 => params += 1,
            ";" | "{" => return None,
            _ => {}
        }
    }
    None
}

fn d1_default_hasher(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    if !matches!(class.role, Role::Modeled | Role::Tooling) {
        return;
    }
    for (i, t) in idx.tokens.iter().enumerate() {
        if idx.in_test(i) {
            continue;
        }
        let required = match t.text.as_str() {
            "HashMap" => 3,
            "HashSet" => 2,
            _ => continue,
        };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hasher_named = generic_param_count(&idx.tokens, i).is_some_and(|n| n >= required);
        if !hasher_named {
            out.push(Finding::at(
                class,
                t,
                "D1",
                format!(
                    "`{}` with the default SipHash hasher in deterministic code",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// D2 — wall-clock / environment reads in modeled code
// ---------------------------------------------------------------------------

const ENV_READS: &[&str] = &[
    "var",
    "vars",
    "var_os",
    "vars_os",
    "args",
    "args_os",
    "temp_dir",
    "current_dir",
];

fn d2_wall_clock(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    if class.role != Role::Modeled {
        return;
    }
    for (i, t) in idx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || idx.in_test(i) {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                out.push(Finding::at(
                    class,
                    t,
                    "D2",
                    format!("`{}` (host wall clock) referenced in modeled code", t.text),
                ));
            }
            "env" => {
                let is_read = idx.tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && idx
                        .tokens
                        .get(i + 2)
                        .is_some_and(|n| ENV_READS.contains(&n.text.as_str()));
                if is_read {
                    out.push(Finding::at(
                        class,
                        t,
                        "D2",
                        format!(
                            "`env::{}` (host environment) read in modeled code",
                            idx.tokens[i + 2].text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// T1 — panicking constructs in the total-decoder modules
// ---------------------------------------------------------------------------

fn t1_panicking_decoder(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    if !DECODER_MODULES.contains(&class.rel_path.as_str()) {
        return;
    }
    for (i, t) in idx.tokens.iter().enumerate() {
        if idx.in_test(i) {
            continue;
        }
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Ident, "unwrap" | "expect") => {
                out.push(Finding::at(
                    class,
                    t,
                    "T1",
                    format!("`.{}()` in a total-decoder module", t.text),
                ));
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if idx.tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                out.push(Finding::at(
                    class,
                    t,
                    "T1",
                    format!("`{}!` in a total-decoder module", t.text),
                ));
            }
            (TokenKind::Punct, "[") => {
                // Indexing: `[` directly after an expression tail (a
                // non-keyword ident, `]` or `)`). Array types, attributes,
                // patterns and `vec![` all have different predecessors.
                let indexing = i > 0
                    && match &idx.tokens[i - 1] {
                        p if p.is_punct("]") || p.is_punct(")") => true,
                        p if p.kind == TokenKind::Ident => !is_keyword(&p.text),
                        _ => false,
                    };
                if indexing {
                    out.push(Finding::at(
                        class,
                        t,
                        "T1",
                        "slice/array indexing (panics when out of bounds) in a total-decoder \
                         module"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// C1 — potentially narrowing `as` casts in codec code
// ---------------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize", "char",
];

fn c1_lossy_cast(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    let whole_file = DECODER_MODULES.contains(&class.rel_path.as_str());
    if !whole_file && class.role != Role::Modeled {
        return;
    }
    for (i, t) in idx.tokens.iter().enumerate() {
        if !t.is_ident("as") || idx.in_test(i) {
            continue;
        }
        let Some(target) = idx.tokens.get(i + 1) else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        let in_scope = whole_file || idx.persist_impls.iter().any(|p| p.span.contains(i));
        if in_scope {
            out.push(Finding::at(
                class,
                t,
                "C1",
                format!(
                    "`as {}` cast can silently narrow/wrap in codec code",
                    target.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// C2 — save/load field symmetry in plain Persist impls
// ---------------------------------------------------------------------------

/// If `range` is exactly a run of `self.<field>.save(<arg>);` statements,
/// returns the ordered field names; otherwise `None` (the impl is not a
/// plain field codec — match-based enums, loops, derived state — and C2
/// cannot judge it statically).
fn plain_save_fields(tokens: &[Token], range: crate::scope::TokenRange) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let stmt = tokens.get(i..i + 8)?;
        let ok = stmt[0].is_ident("self")
            && stmt[1].is_punct(".")
            && stmt[2].kind == TokenKind::Ident
            && stmt[3].is_punct(".")
            && stmt[4].is_ident("save")
            && stmt[5].is_punct("(")
            && stmt[6].kind == TokenKind::Ident
            && stmt[7].is_punct(")");
        if !ok || !tokens.get(i + 8).is_some_and(|t| t.is_punct(";")) {
            return None;
        }
        fields.push(stmt[2].text.clone());
        i += 9;
    }
    if fields.is_empty() {
        None
    } else {
        Some(fields)
    }
}

/// Extracts, in order, the field idents `fn load` decodes: struct-literal
/// fields and `let`/assignment targets whose initializer calls `load`.
fn load_fields(tokens: &[Token], range: crate::scope::TokenRange) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = range.start;
    while i < range.end {
        // `let [mut] <ident> … = <init with load>;`
        if tokens[i].is_ident("let") {
            let mut k = i + 1;
            if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let end = stmt_end(tokens, i, range.end);
            let Some(binding) = tokens.get(k).filter(|t| t.kind == TokenKind::Ident) else {
                // Pattern destructuring — nothing C2 can attribute.
                i = end;
                continue;
            };
            // `let table = Foo { a: u8::load(r)?, … };` decodes the literal
            // fields, not a field named after the binding — recurse into
            // the struct literal when there is one.
            if let Some(open) = struct_literal_open(tokens, k + 1, end) {
                let close = crate::scope::matching_close(tokens, open);
                let inner = load_fields(
                    tokens,
                    crate::scope::TokenRange {
                        start: open + 1,
                        end: close.saturating_sub(1).min(end),
                    },
                );
                if !inner.is_empty() {
                    fields.extend(inner);
                    i = end;
                    continue;
                }
            }
            if segment_calls_load(&tokens[i..end]) {
                fields.push(binding.text.clone());
            }
            i = end;
            continue;
        }
        // `<recv>.<field> = <init with load>;`
        if tokens[i].kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("="))
        {
            let name = tokens[i + 2].text.clone();
            let end = stmt_end(tokens, i, range.end);
            if segment_calls_load(&tokens[i..end]) {
                fields.push(name);
            }
            i = end;
            continue;
        }
        // `<field>: <init with load>` inside a struct literal.
        if tokens[i].kind == TokenKind::Ident
            && !is_keyword(&tokens[i].text)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
        {
            let name = tokens[i].text.clone();
            let end = initializer_end(tokens, i + 2, range.end);
            if segment_calls_load(&tokens[i..end]) {
                fields.push(name);
            }
            i = end;
            continue;
        }
        i += 1;
    }
    fields
}

/// First `{` in `tokens[i..end]` opening a struct literal: one directly
/// after a non-keyword ident or a generics `>` (so blocks and closures
/// don't match).
fn struct_literal_open(tokens: &[Token], i: usize, end: usize) -> Option<usize> {
    (i.max(1)..end).find(|&j| {
        tokens[j].is_punct("{")
            && match &tokens[j - 1] {
                p if p.is_punct(">") => true,
                p if p.kind == TokenKind::Ident => !is_keyword(&p.text),
                _ => false,
            }
    })
}

/// Index one past the `;` ending the statement starting at `i` (bracket
/// aware), clamped to `limit`.
fn stmt_end(tokens: &[Token], i: usize, limit: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < limit {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    limit
}

/// Index of the `,` or closing `}` that ends a struct-literal initializer
/// starting at `i` (bracket aware), clamped to `limit`.
fn initializer_end(tokens: &[Token], i: usize, limit: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < limit {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            "," if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    limit
}

fn segment_calls_load(segment: &[Token]) -> bool {
    segment.iter().any(|t| t.is_ident("load"))
}

fn c2_save_load_drift(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    if class.role != Role::Modeled {
        return;
    }
    for imp in &idx.persist_impls {
        if idx.in_test(imp.span.start) {
            continue;
        }
        let (Some(save_body), Some(load_body)) = (imp.save_body, imp.load_body) else {
            continue;
        };
        let Some(saved) = plain_save_fields(&idx.tokens, save_body) else {
            continue;
        };
        let loaded = load_fields(&idx.tokens, load_body);
        if saved != loaded {
            let tok = &idx.tokens[imp.span.start];
            out.push(Finding::at(
                class,
                tok,
                "C2",
                format!(
                    "`impl Persist for {}`: save writes [{}] but load reads [{}]",
                    imp.type_name,
                    saved.join(", "),
                    loaded.join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// U1 — crate roots must forbid unsafe code
// ---------------------------------------------------------------------------

fn u1_forbid_unsafe(class: &FileClass, idx: &FileIndex, out: &mut Vec<Finding>) {
    if !class.is_lib_root || idx.forbids_unsafe() {
        return;
    }
    out.push(Finding {
        file: class.rel_path.clone(),
        line: 1,
        col: 1,
        id: "U1",
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
    });
}

// ---------------------------------------------------------------------------
// Allow resolution + A1 hygiene
// ---------------------------------------------------------------------------

/// Applies the file's allow comments to `raw` findings: suppressed findings
/// are dropped, and malformed or unused allows become A1 findings.
///
/// An allow guards the next line carrying code. `U1` is special-cased as
/// file-scoped (the finding is the *absence* of an attribute, so there is
/// no natural line for it to precede).
pub fn resolve_allows(class: &FileClass, idx: &FileIndex, raw: Vec<Finding>) -> Vec<Finding> {
    let mut kept: Vec<Finding> = Vec::new();
    let mut suppressed = vec![false; raw.len()];
    let mut out = Vec::new();

    let mut used = vec![false; idx.allows.len()];
    for (a, allow) in idx.allows.iter().enumerate() {
        // Hygiene first: malformed allows never suppress anything.
        if allow.ids.is_empty() {
            out.push(a1(
                class,
                allow.line,
                "malformed `tdm-lint: allow(...)` comment",
            ));
            used[a] = true; // already reported; not also "unused"
            continue;
        }
        if let Some(unknown) = allow.ids.iter().find(|id| lint_info(id).is_none()) {
            out.push(a1(
                class,
                allow.line,
                &format!("allow names unknown lint `{unknown}`"),
            ));
            used[a] = true;
            continue;
        }
        if allow.rationale.is_empty() {
            out.push(a1(
                class,
                allow.line,
                "allow without a rationale (write `allow(<ids>): <why>`)",
            ));
            used[a] = true;
            continue;
        }
        for (f, finding) in raw.iter().enumerate() {
            let matches_id = allow.ids.iter().any(|id| id == finding.id);
            let matches_site = if finding.id == "U1" {
                true
            } else {
                allow.guarded_line == Some(finding.line)
            };
            if matches_id && matches_site {
                suppressed[f] = true;
                used[a] = true;
            }
        }
        if !used[a] {
            out.push(a1(
                class,
                allow.line,
                &format!(
                    "unused allow({}) — nothing to suppress here",
                    allow.ids.join(", ")
                ),
            ));
        }
    }

    for (f, finding) in raw.into_iter().enumerate() {
        if !suppressed[f] {
            kept.push(finding);
        }
    }
    out.extend(kept);
    out.sort_by(|x, y| (x.line, x.col, x.id).cmp(&(y.line, y.col, y.id)));
    out
}

fn a1(class: &FileClass, line: usize, message: &str) -> Finding {
    Finding {
        file: class.rel_path.clone(),
        line,
        col: 1,
        id: "A1",
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let class = classify(path);
        let idx = FileIndex::build(src);
        check_file(&class, &idx)
    }

    fn ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.id).collect()
    }

    #[test]
    fn classification_matches_the_workspace_layout() {
        assert_eq!(classify("crates/sim/src/cache.rs").role, Role::Modeled);
        assert_eq!(classify("src/lib.rs").role, Role::Modeled);
        assert_eq!(classify("crates/bench/src/cli.rs").role, Role::Bench);
        assert_eq!(
            classify("crates/bench/benches/dmu_ops.rs").role,
            Role::Bench
        );
        assert_eq!(classify("crates/shims/serde/src/lib.rs").role, Role::Shim);
        assert_eq!(classify("crates/lint/src/lints.rs").role, Role::Tooling);
        assert_eq!(classify("tests/conformance/main.rs").role, Role::Test);
        assert_eq!(classify("crates/lint/tests/fixtures.rs").role, Role::Test);
        assert_eq!(classify("examples/quickstart.rs").role, Role::Example);
        assert!(classify("crates/sim/src/lib.rs").is_lib_root);
        assert!(!classify("crates/sim/src/cache.rs").is_lib_root);
    }

    #[test]
    fn d1_sees_hasher_parameters() {
        let src = "
            use std::collections::HashMap;
            type Fast<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
            fn f() {
                let a: HashMap<u64, Vec<u32>> = HashMap::new();
            }
        ";
        let f = check("crates/sim/src/x.rs", src);
        // `use` line, the two-parameter type, and `HashMap::new` fire; the
        // three-parameter alias target does not.
        assert_eq!(ids(&f), vec!["D1", "D1", "D1"]);
    }

    #[test]
    fn d1_is_silent_in_bench_tests_and_shims() {
        let src = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        assert!(check("crates/bench/src/x.rs", src).is_empty());
        assert!(check("tests/conformance/x.rs", src).is_empty());
        assert!(check("crates/shims/serde/src/x.rs", src).is_empty());
    }

    #[test]
    fn t1_only_fires_in_decoder_modules() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert_eq!(ids(&check("crates/sim/src/snapshot.rs", src)), vec!["T1"]);
        assert!(check("crates/sim/src/event.rs", src).is_empty());
    }

    #[test]
    fn c2_catches_reordered_fields() {
        let src = "
            impl Persist for Foo {
                fn save(&self, out: &mut Vec<u8>) {
                    self.a.save(out);
                    self.b.save(out);
                }
                fn load(r: &mut Reader<'_>) -> Result<Self, E> {
                    Ok(Foo { b: u8::load(r)?, a: u8::load(r)? })
                }
            }
        ";
        let f = check("crates/runtime/src/x.rs", src);
        assert_eq!(ids(&f), vec!["C2"]);
        assert!(f[0].message.contains("save writes [a, b]"));
    }

    #[test]
    fn c2_accepts_let_struct_literal_loads() {
        // The workspace's dominant load shape: build the value in a `let`,
        // validate, then return it.
        let src = "
            impl Persist for Table {
                fn save(&self, out: &mut Vec<u8>) {
                    self.addr.save(out);
                    self.live.save(out);
                }
                fn load(r: &mut Reader<'_>) -> Result<Self, E> {
                    let table = Table { addr: Vec::load(r)?, live: usize::load(r)? };
                    if table.addr.is_empty() { return Err(E::Corrupt); }
                    Ok(table)
                }
            }
        ";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn c2_catches_drift_inside_let_struct_literal() {
        let src = "
            impl Persist for Table {
                fn save(&self, out: &mut Vec<u8>) {
                    self.addr.save(out);
                    self.live.save(out);
                }
                fn load(r: &mut Reader<'_>) -> Result<Self, E> {
                    let mut table = Table { live: usize::load(r)?, addr: Vec::load(r)? };
                    Ok(table)
                }
            }
        ";
        assert_eq!(ids(&check("crates/core/src/x.rs", src)), vec!["C2"]);
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let src = "
// tdm-lint: allow(D1): this map is never iterated; hasher is irrelevant here.
use std::collections::HashMap;
// tdm-lint: allow(D1): stale comment guarding nothing.
fn f() {}
";
        let f = check("crates/sim/src/x.rs", src);
        assert_eq!(ids(&f), vec!["A1"]);
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn allow_without_rationale_is_a1() {
        let src = "
// tdm-lint: allow(D1)
use std::collections::HashMap;
";
        let f = check("crates/sim/src/x.rs", src);
        // The rationale-less allow is A1 and does NOT suppress, so D1 also
        // survives.
        assert_eq!(ids(&f), vec!["A1", "D1"]);
    }

    #[test]
    fn u1_fires_on_lib_roots_only() {
        assert_eq!(
            ids(&check("crates/sim/src/lib.rs", "fn f() {}")),
            vec!["U1"]
        );
        assert!(check("crates/sim/src/lib.rs", "#![forbid(unsafe_code)]").is_empty());
        assert!(check("crates/sim/src/cache.rs", "fn f() {}").is_empty());
    }
}
