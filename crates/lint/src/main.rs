//! CLI front-end: `tdm-lint check [--root PATH] [--summary FILE]` and
//! `tdm-lint list`.
//!
//! `check` exits 0 when the workspace is clean, 1 when findings exist, and
//! 2 on usage or I/O errors — so CI can distinguish "lint failed" from
//! "lint broke".

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tdm_lint::runner::{check_workspace, render_registry, render_report};

const USAGE: &str = "\
usage: tdm-lint <command>

commands:
  check [--root PATH] [--summary FILE]   scan the workspace; exit 1 on findings
  list                                   print the lint registry

`--root` defaults to the nearest enclosing directory with a `[workspace]`
Cargo.toml (falling back to the current directory). `--summary` also writes
the report to FILE (CI uploads it as an artifact on failure).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("list") => {
            print!("{}", render_registry());
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("tdm-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut summary: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a PATH"),
            },
            "--summary" => match it.next() {
                Some(v) => summary = Some(PathBuf::from(v)),
                None => return usage_error("--summary needs a FILE"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tdm-lint: scan of {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = render_report(&report);
    print!("{rendered}");
    if let Some(path) = summary {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("tdm-lint: writing summary {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest enclosing directory whose `Cargo.toml` declares `[workspace]`,
/// so `cargo run -p tdm-lint -- check` works from any subdirectory.
fn workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start,
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tdm-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
