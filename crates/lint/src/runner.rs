//! Workspace walking and report formatting.
//!
//! The runner owns all I/O: it discovers `.rs` files under the workspace
//! root (skipping build output, VCS metadata, and the analyzer's own
//! fixture corpus, which intentionally contains findings), feeds each file
//! through [`crate::lints::check_file`], and renders the deterministic,
//! path-sorted report that `tdm-lint check` prints and CI uploads.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lints::{check_file, classify, lint_info, Finding};
use crate::scope::FileIndex;

/// Directories never descended into, by terminal name.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Workspace-relative prefixes excluded from scanning. The fixture corpus
/// exists to *contain* findings, so scanning it would defeat `check`.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Result of a full workspace scan.
pub struct Report {
    /// All findings, sorted by (file, line, col, id).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scans every `.rs` file under `root` and returns the combined findings.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic order regardless of directory-iteration order.
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel_path_string(rel);
        let class = classify(&rel_str);
        let idx = FileIndex::build(&source);
        findings.extend(check_file(&class, &idx));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.col, a.id).cmp(&(&b.file, b.line, b.col, b.id)));
    Ok(Report {
        findings,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files as paths relative to `root`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if SKIP_PREFIXES.contains(&rel_path_string(rel).as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Normalizes a relative path to `/`-separated form (classification and
/// reports use forward slashes on every host).
fn rel_path_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Formats one finding as the two-line `file:line:col` + hint block.
pub fn format_finding(f: &Finding) -> String {
    let (name, hint) = match lint_info(f.id) {
        Some(info) => (info.name, info.hint),
        None => ("unknown-lint", "no hint available"),
    };
    format!(
        "{}:{}:{}: {} ({}): {}\n    hint: {}",
        f.file, f.line, f.col, f.id, name, f.message, hint
    )
}

/// Renders the full report: every finding block plus a one-line tally.
pub fn render_report(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format_finding(f));
        out.push('\n');
    }
    if report.findings.is_empty() {
        out.push_str(&format!(
            "tdm-lint: {} files scanned, no findings\n",
            report.files_scanned
        ));
    } else {
        out.push_str(&format!(
            "tdm-lint: {} finding(s) across {} files scanned\n",
            report.findings.len(),
            report.files_scanned
        ));
    }
    out
}

/// Renders the lint registry (the `tdm-lint list` output).
pub fn render_registry() -> String {
    let mut out = String::new();
    out.push_str("tdm-lint registry:\n");
    for l in crate::lints::LINTS {
        out.push_str(&format!("  {}  {:<24} {}\n", l.id, l.name, l.summary));
    }
    out.push_str(
        "\nSuppress a finding with `// tdm-lint: allow(<ids>): <rationale>` on the\n\
         preceding line; unused or rationale-less allows are A1 findings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_includes_position_id_and_hint() {
        let f = Finding {
            file: "crates/sim/src/x.rs".to_string(),
            line: 7,
            col: 13,
            id: "D1",
            message: "`HashMap` with the default SipHash hasher".to_string(),
        };
        let s = format_finding(&f);
        assert!(s.starts_with("crates/sim/src/x.rs:7:13: D1 (default-hasher-map):"));
        assert!(s.contains("hint: "));
    }

    #[test]
    fn registry_lists_every_lint_id() {
        let s = render_registry();
        for l in crate::lints::LINTS {
            assert!(s.contains(l.id), "registry output missing {}", l.id);
        }
    }
}
