//! Lightweight item/attribute indexing over the token stream.
//!
//! Builds, per file, the structural facts every lint needs:
//!
//! * **test regions** — brace spans introduced by a `#[test]`- or
//!   `#[cfg(test)]`-attributed item (functions, `mod tests`, …). Findings
//!   inside them are out of scope for the determinism/totality lints.
//! * **`impl Persist for T` regions** — the codec impl blocks, including
//!   the body spans of their `fn save` / `fn load`, for the cast (C1) and
//!   field-symmetry (C2) lints.
//! * **allow comments** — `// tdm-lint: allow(<IDs>): <rationale>` lines,
//!   parsed with the token index of the guarded line's first token.

use crate::lexer::{lex, Comment, Lexed, Token};

/// A half-open token range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenRange {
    /// Index of the first token in the range.
    pub start: usize,
    /// Index one past the last token.
    pub end: usize,
}

impl TokenRange {
    /// True if `idx` falls inside the range.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// One `impl Persist for T` block.
#[derive(Debug, Clone)]
pub struct PersistImpl {
    /// The implementing type's final path segment (e.g. `SimStats`).
    pub type_name: String,
    /// The whole impl block, brace to brace.
    pub span: TokenRange,
    /// Body of `fn save`, if present.
    pub save_body: Option<TokenRange>,
    /// Body of `fn load`, if present.
    pub load_body: Option<TokenRange>,
}

/// A parsed `tdm-lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint ids listed inside the parentheses, e.g. `["T1", "C1"]`.
    pub ids: Vec<String>,
    /// Rationale text after the id list (empty string when missing).
    pub rationale: String,
    /// 1-based line of the comment itself.
    pub line: usize,
    /// 1-based line the allow guards: the next line carrying a code token.
    /// `None` when the comment is the last thing in the file.
    pub guarded_line: Option<usize>,
}

/// The fully indexed form of one source file.
pub struct FileIndex {
    /// Code tokens (trivia stripped).
    pub tokens: Vec<Token>,
    /// All comments, verbatim.
    pub comments: Vec<Comment>,
    /// Token spans under a `#[test]` / `#[cfg(test)]` item.
    pub test_regions: Vec<TokenRange>,
    /// Every `impl Persist for T` block.
    pub persist_impls: Vec<PersistImpl>,
    /// Parsed allow comments, in file order.
    pub allows: Vec<Allow>,
}

impl FileIndex {
    /// Lexes and indexes `source`.
    pub fn build(source: &str) -> FileIndex {
        let Lexed { tokens, comments } = lex(source);
        let test_regions = find_test_regions(&tokens);
        let persist_impls = find_persist_impls(&tokens);
        let allows = parse_allows(&comments, &tokens);
        FileIndex {
            tokens,
            comments,
            test_regions,
            persist_impls,
            allows,
        }
    }

    /// True if token `idx` sits inside a test-only region.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(idx))
    }

    /// True if the file carries the inner attribute
    /// `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`).
    pub fn forbids_unsafe(&self) -> bool {
        let t = &self.tokens;
        (0..t.len().saturating_sub(6)).any(|i| {
            t[i].is_punct("#")
                && t[i + 1].is_punct("!")
                && t[i + 2].is_punct("[")
                && (t[i + 3].is_ident("forbid") || t[i + 3].is_ident("deny"))
                && t[i + 4].is_punct("(")
                && t[i + 5].is_ident("unsafe_code")
        })
    }
}

/// Finds the matching close for the bracket opened at `open` (`tokens[open]`
/// must be `{`, `(` or `[`). Returns the index one past the closer, or
/// `tokens.len()` if unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    tokens.len()
}

/// Scans for outer attributes containing the ident `test` and marks the
/// brace span of the item they introduce.
fn find_test_regions(tokens: &[Token]) -> Vec<TokenRange> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Outer attribute `#[...]` (inner `#![...]` has a `!` in between).
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_end = matching_close(tokens, i + 1);
            // `test` anywhere in the attribute marks a test item — except
            // under `not(...)`, so `#[cfg(not(test))]` stays live code.
            let attr = &tokens[i + 2..attr_end.saturating_sub(1)];
            let is_test_attr = attr.iter().enumerate().any(|(k, t)| {
                t.is_ident("test")
                    && !(k >= 2 && attr[k - 2].is_ident("not") && attr[k - 1].is_punct("("))
            });
            if is_test_attr {
                // Attach to the item: the next `{` before a `;` at this
                // level starts its body; a `;` first means a braceless item.
                let mut j = attr_end;
                while j < tokens.len() {
                    if tokens[j].is_punct("{") {
                        let end = matching_close(tokens, j);
                        regions.push(TokenRange { start: i, end });
                        i = end;
                        break;
                    }
                    if tokens[j].is_punct(";") {
                        regions.push(TokenRange {
                            start: i,
                            end: j + 1,
                        });
                        i = j + 1;
                        break;
                    }
                    // Skip nested brackets in the signature (generics use
                    // `<`/`>` which never nest braces; parens do).
                    if tokens[j].is_punct("(") || tokens[j].is_punct("[") {
                        j = matching_close(tokens, j);
                    } else {
                        j += 1;
                    }
                }
                if j >= tokens.len() {
                    i = tokens.len();
                }
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// Scans for `impl … Persist for T { … }` blocks and the `fn save` /
/// `fn load` bodies inside them.
fn find_persist_impls(tokens: &[Token]) -> Vec<PersistImpl> {
    let mut impls = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Collect the header up to the opening brace (or a `;`/EOF bail).
        let mut j = i + 1;
        let mut saw_persist = false;
        let mut saw_for = false;
        let mut angle = 0usize;
        let mut type_name = String::new();
        while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            if tokens[j].is_ident("Persist") {
                saw_persist = true;
            } else if saw_persist && tokens[j].is_ident("for") {
                saw_for = true;
            } else if saw_for {
                // Track the last path segment of the implementing type,
                // ignoring anything inside its generic arguments (so
                // `Option<T>` names `Option`, not `T`).
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = angle.saturating_sub(1),
                    _ => {}
                }
                if angle == 0
                    && tokens[j].kind == crate::lexer::TokenKind::Ident
                    && !crate::lexer::is_keyword(&tokens[j].text)
                {
                    type_name = tokens[j].text.clone();
                }
            }
            j += 1;
        }
        if !(saw_persist && saw_for) || j >= tokens.len() || !tokens[j].is_punct("{") {
            i += 1;
            continue;
        }
        let body_end = matching_close(tokens, j);
        let span = TokenRange {
            start: i,
            end: body_end,
        };
        let save_body = find_fn_body(tokens, span, "save");
        let load_body = find_fn_body(tokens, span, "load");
        impls.push(PersistImpl {
            type_name,
            span,
            save_body,
            load_body,
        });
        i = body_end;
    }
    impls
}

/// Finds the brace-to-brace body of `fn <name>` inside `span`.
fn find_fn_body(tokens: &[Token], span: TokenRange, name: &str) -> Option<TokenRange> {
    let mut i = span.start;
    while i + 1 < span.end {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < span.end && !tokens[j].is_punct("{") {
                if tokens[j].is_punct("(") || tokens[j].is_punct("[") {
                    j = matching_close(tokens, j);
                } else {
                    j += 1;
                }
            }
            if j < span.end {
                return Some(TokenRange {
                    start: j + 1,
                    end: matching_close(tokens, j).saturating_sub(1),
                });
            }
        }
        i += 1;
    }
    None
}

/// Parses every `tdm-lint: allow(...)` comment. The guarded line is the
/// line of the first code token strictly after the comment's line.
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in comments {
        // The directive must open the comment (after the `//`/`/*`
        // introducer) — prose *mentioning* the syntax, like this file's
        // module docs, is not an allow.
        let content = comment
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        let Some(rest) = content.strip_prefix("tdm-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            // Unknown directive after `tdm-lint:` — surface as a malformed
            // allow with no ids so A1 reports it.
            allows.push(Allow {
                ids: Vec::new(),
                rationale: String::new(),
                line: comment.line,
                guarded_line: None,
            });
            continue;
        };
        let rest = rest.trim_start();
        let (ids, rationale) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((inside, after)) => {
                let ids = inside
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                let rationale = after
                    .trim_start_matches([':', '—', '-', ' '])
                    .trim()
                    .to_string();
                (ids, rationale)
            }
            None => (Vec::new(), String::new()),
        };
        let guarded_line = tokens.iter().map(|t| t.line).find(|&l| l > comment.line);
        allows.push(Allow {
            ids,
            rationale,
            line: comment.line,
            guarded_line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "
            fn live() { body(); }
            #[cfg(test)]
            mod tests {
                fn helper() { h(); }
            }
        ";
        let idx = FileIndex::build(src);
        let helper = idx
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .unwrap();
        let live = idx.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(idx.in_test(helper));
        assert!(!idx.in_test(live));
    }

    #[test]
    fn test_attribute_on_fn_is_a_test_region() {
        let src = "
            #[test]
            fn checks_something() { assert!(true); }
            fn not_a_test() {}
        ";
        let idx = FileIndex::build(src);
        let inside = idx
            .tokens
            .iter()
            .position(|t| t.is_ident("assert"))
            .unwrap();
        let outside = idx
            .tokens
            .iter()
            .position(|t| t.is_ident("not_a_test"))
            .unwrap();
        assert!(idx.in_test(inside));
        assert!(!idx.in_test(outside));
    }

    #[test]
    fn cfg_test_attribute_with_return_type_generics() {
        let src = "
            #[cfg(test)]
            fn gen() -> Vec<(u8, u8)> { make() }
        ";
        let idx = FileIndex::build(src);
        let inside = idx.tokens.iter().position(|t| t.is_ident("make")).unwrap();
        assert!(idx.in_test(inside));
    }

    #[test]
    fn persist_impl_and_fn_bodies_are_found() {
        let src = "
            impl Persist for Foo {
                fn save(&self, out: &mut Vec<u8>) { self.a.save(out); }
                fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Foo { a: u8::load(r)? }) }
            }
            impl crate::snapshot::Persist for Bar { fn save(&self, o: &mut Vec<u8>) {} }
        ";
        let idx = FileIndex::build(src);
        assert_eq!(idx.persist_impls.len(), 2);
        assert_eq!(idx.persist_impls[0].type_name, "Foo");
        assert_eq!(idx.persist_impls[1].type_name, "Bar");
        assert!(idx.persist_impls[0].save_body.is_some());
        assert!(idx.persist_impls[0].load_body.is_some());
        assert!(idx.persist_impls[1].load_body.is_none());
    }

    #[test]
    fn generic_persist_impl_is_found() {
        let src = "impl<T: Persist> Persist for Option<T> { fn save(&self, o: &mut Vec<u8>) {} }";
        let idx = FileIndex::build(src);
        assert_eq!(idx.persist_impls.len(), 1);
        assert_eq!(idx.persist_impls[0].type_name, "Option");
    }

    #[test]
    fn non_persist_impls_are_ignored() {
        let src = "impl Display for Foo { fn fmt(&self) {} } impl Foo { fn save(&self) {} }";
        let idx = FileIndex::build(src);
        assert!(idx.persist_impls.is_empty());
    }

    #[test]
    fn allow_comments_parse_ids_rationale_and_guarded_line() {
        let src = "
// tdm-lint: allow(T1, C1): table index is masked to 8 bits.
let x = table[i];
// tdm-lint: allow(D1)
let y = 1;
";
        let idx = FileIndex::build(src);
        assert_eq!(idx.allows.len(), 2);
        assert_eq!(idx.allows[0].ids, vec!["T1", "C1"]);
        assert!(idx.allows[0].rationale.contains("masked"));
        assert_eq!(idx.allows[0].guarded_line, Some(3));
        assert_eq!(idx.allows[1].ids, vec!["D1"]);
        assert!(idx.allows[1].rationale.is_empty());
        assert_eq!(idx.allows[1].guarded_line, Some(5));
    }

    #[test]
    fn prose_mentioning_the_allow_syntax_is_not_an_allow() {
        let src = "
//! Suppress with `// tdm-lint: allow(<id>): <why>` on the line above.
// docs talk about tdm-lint: allow here too, mid-sentence.
fn f() {}
";
        assert!(FileIndex::build(src).allows.is_empty());
    }

    #[test]
    fn forbid_unsafe_is_detected() {
        assert!(FileIndex::build("#![forbid(unsafe_code)]\nfn f() {}").forbids_unsafe());
        assert!(FileIndex::build("//! doc\n#![deny(unsafe_code)]").forbids_unsafe());
        assert!(!FileIndex::build("fn f() {}").forbids_unsafe());
        // An outer `#[forbid(unsafe_code)]` on an item is not the crate root
        // attribute, but accepting it would be harmless; the current
        // matcher only skips the `!`, so keep the test honest:
        assert!(!FileIndex::build("#[allow(dead_code)] fn f() {}").forbids_unsafe());
    }
}
