//! Fixture-corpus harness: every file under `tests/fixtures/` is checked
//! as if it lived at the workspace path named by its first line
//! (`// path: <rel-path>`), and the findings must match the `//~ <IDS>`
//! markers exactly.
//!
//! Marker syntax, scanned from the raw fixture text:
//!
//! * `//~ D1` — a D1 finding is expected on this line (repeat ids for
//!   multiple findings on one line: `//~ D1 D1`).
//! * `//~v A1` — the finding is expected on the *next* line (used when
//!   appending the marker would change the line being tested, e.g. the
//!   rationale of an allow comment).
//!
//! Clean fixtures simply carry no markers. The corpus is excluded from
//! `tdm-lint check`'s workspace walk, so the firing snippets don't fail CI.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use tdm_lint::check_source;

/// (line, lint id) pairs, sorted, with multiplicity.
type Expectations = Vec<(usize, String)>;

fn parse_markers(source: &str) -> Expectations {
    let mut expected = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        let (marker, target) = if let Some(at) = line.find("//~v") {
            (&line[at + 4..], lineno + 1)
        } else if let Some(at) = line.find("//~") {
            (&line[at + 3..], lineno)
        } else {
            continue;
        };
        for id in marker.split_whitespace() {
            expected.push((target, id.to_string()));
        }
    }
    expected.sort();
    expected
}

fn pretend_path(source: &str, file: &str) -> String {
    let first = source.lines().next().unwrap_or_default();
    let path = first
        .split_once("path:")
        .map(|(_, rest)| rest)
        .unwrap_or_else(|| panic!("{file}: first line must be `// path: <rel-path>`"));
    let path = path.split("//~").next().unwrap_or(path).trim();
    assert!(!path.is_empty(), "{file}: empty pretend path");
    path.to_string()
}

#[test]
fn every_fixture_matches_its_markers() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("fixture corpus directory")
        .map(|e| e.expect("fixture dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fixture corpus is empty");

    let mut failures = Vec::new();
    let mut fired: BTreeMap<String, usize> = BTreeMap::new();
    for path in &entries {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture file name")
            .to_string();
        let source = fs::read_to_string(path).expect("fixture read");
        let expected = parse_markers(&source);
        let mut actual: Expectations = check_source(&pretend_path(&source, &file), &source)
            .into_iter()
            .map(|f| (f.line, f.id.to_string()))
            .collect();
        actual.sort();
        for (_, id) in &actual {
            *fired.entry(id.clone()).or_default() += 1;
        }
        if actual != expected {
            failures.push(format!("{file}: expected {expected:?}, got {actual:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture mismatches:\n{}",
        failures.join("\n")
    );

    // The corpus must demonstrably fire every lint in the registry.
    for lint in tdm_lint::LINTS {
        assert!(
            fired.get(lint.id).copied().unwrap_or(0) > 0,
            "no fixture fires {} — add a firing snippet",
            lint.id
        );
    }
}

#[test]
fn firing_and_clean_snippets_exist_per_lint() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("fixture corpus directory")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    for prefix in ["d1", "d2", "t1", "c1", "c2", "u1", "a1"] {
        let fires = names
            .iter()
            .any(|n| n.starts_with(prefix) && (n.contains("fires") || n.contains("hygiene")));
        let clean = names
            .iter()
            .any(|n| n.starts_with(prefix) && n.contains("clean"));
        assert!(fires, "no firing fixture for {prefix}");
        assert!(clean, "no clean fixture for {prefix}");
    }
}
