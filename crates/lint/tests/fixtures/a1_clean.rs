// path: crates/sim/src/a1_clean.rs
// A well-formed allow that suppresses a real finding: no A1, no D1.

// tdm-lint: allow(D1): diagnostic-only map, drained into a sorted Vec before any iteration.
use std::collections::HashMap;

fn diagnostics() -> Vec<(u64, u64)> {
    // One allow suppresses every finding on the line it guards.
    // tdm-lint: allow(D1): same diagnostic-only map as above.
    let counts: HashMap<u64, u64> = HashMap::new();
    let mut pairs: Vec<(u64, u64)> = counts.into_iter().collect();
    pairs.sort_unstable();
    pairs
}
