// path: crates/sim/src/a1_hygiene.rs
// Allow hygiene: unused, rationale-less, and unknown-id allows all fire.

//~v A1
// tdm-lint: allow(D1): stale — the map this once guarded was deleted.
fn nothing_to_suppress() {}

//~v A1
// tdm-lint: allow(D1)
use std::collections::HashMap; //~ D1

//~v A1
// tdm-lint: allow(Z9): no such lint id exists.
fn unknown_id() {}
