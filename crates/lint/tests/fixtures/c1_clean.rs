// path: crates/runtime/src/trace.rs
// Non-firing C1 shapes: widening casts, checked conversions, and one
// masked cast behind an allow.

fn encode_cursor(cursor: u32, len: usize) -> Result<(u64, u32), Error> {
    // Widening to u64 cannot lose bits.
    let wide = cursor as u64;
    // The total alternative the lint asks for.
    let checked = u32::try_from(len).map_err(|_| Error::TooLong)?;
    Ok((wide, checked))
}

fn tag_of(word: u64) -> u8 {
    // tdm-lint: allow(C1): the value is masked to 8 bits on the previous line.
    (word & 0xFF) as u8
}

enum Error {
    TooLong,
}
