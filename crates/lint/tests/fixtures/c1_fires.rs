// path: crates/runtime/src/trace.rs
// Narrowing / sign-changing `as` casts in codec code.

fn encode_cursor(cursor: u64, delta: i64) -> (u32, usize, i8) {
    let lo = cursor as u32; //~ C1
    let idx = cursor as usize; //~ C1
    let small = delta as i8; //~ C1
    (lo, idx, small)
}
