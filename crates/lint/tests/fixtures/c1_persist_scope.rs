// path: crates/sim/src/c1_persist_scope.rs
// Outside decoder modules, C1 applies only inside `Persist` impls: the
// same cast fires in the codec and stays silent in ordinary model code.

pub struct Gauge {
    level: u64,
}

impl Gauge {
    /// Ordinary model code: out of C1 scope (clippy still watches it).
    pub fn level_class(&self) -> u32 {
        (self.level / 1000) as u32
    }
}

impl Persist for Gauge {
    fn save(&self, out: &mut Vec<u8>) {
        (self.level as u32).save(out); //~ C1
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let level = u64::from(u32::load(r)?);
        Ok(Gauge { level })
    }
}
