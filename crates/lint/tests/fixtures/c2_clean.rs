// path: crates/sim/src/c2_clean.rs
// Non-firing C2 shapes: a symmetric plain impl (both load styles) and a
// match-based enum impl the lint cannot judge (skipped, not flagged).

impl Persist for CoreState {
    fn save(&self, out: &mut Vec<u8>) {
        self.cycle.save(out);
        self.phase.save(out);
        self.backlog.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let state = CoreState {
            cycle: u64::load(r)?,
            phase: u8::load(r)?,
            backlog: u64::load(r)?,
        };
        if state.backlog > 1_000_000 {
            return Err(SnapshotError::Corrupt {
                context: "implausible backlog".to_string(),
            });
        }
        Ok(state)
    }
}

impl Persist for Mode {
    fn save(&self, out: &mut Vec<u8>) {
        match self {
            Mode::Eager => out.push(0),
            Mode::Streaming => out.push(1),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(Mode::Eager),
            1 => Ok(Mode::Streaming),
            other => Err(SnapshotError::Corrupt {
                context: format!("mode tag {other}"),
            }),
        }
    }
}
