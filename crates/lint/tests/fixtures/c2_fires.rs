// path: crates/sim/src/c2_fires.rs
// save/load field drift: same fields, different order.

impl Persist for CoreState { //~ C2
    fn save(&self, out: &mut Vec<u8>) {
        self.cycle.save(out);
        self.phase.save(out);
        self.backlog.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(CoreState {
            cycle: u64::load(r)?,
            backlog: u64::load(r)?,
            phase: u8::load(r)?,
        })
    }
}
