// path: crates/sim/src/d1_clean.rs
// Non-firing D1 shapes: named hashers, test-only maps, and a used allow.

use crate::fast_map::FastMap;

type Holders = HashMap<u64, Vec<u32>, BuildHasherDefault<FastHasher>>;
type SeenSet = HashSet<u64, BuildHasherDefault<FastHasher>>;

fn build_index() {
    let by_addr: FastMap<u64, Vec<u32>> = FastMap::default();
    let _ = by_addr;
}

// tdm-lint: allow(D1): this map feeds a sorted report, iteration order never escapes.
fn report() -> HashMap<u64, u64> {
    // The allow above guards the signature line only; the body is clean.
    Default::default()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_helpers_may_use_std_maps() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty());
    }
}
