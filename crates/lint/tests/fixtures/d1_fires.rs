// path: crates/sim/src/d1_fires.rs
// Default-hasher maps in modeled code: every use site fires.

use std::collections::HashMap; //~ D1
use std::collections::HashSet; //~ D1

fn build_index() {
    let by_addr: HashMap<u64, Vec<u32>> = HashMap::new(); //~ D1 D1
    let mut seen: HashSet<u64> = HashSet::default(); //~ D1 D1
    let _ = (by_addr, seen);
}
