// path: crates/sim/src/d2_clean.rs
// Non-firing D2 shapes: time threaded in from the harness, env reads only
// in test code, and idents that merely resemble the banned ones.

pub fn advance(now_cycles: u64, step: u64) -> u64 {
    now_cycles + step
}

// `env` not followed by a read accessor is not an environment read.
mod env {
    pub fn seed() -> u64 {
        42
    }
}

pub fn seeded() -> u64 {
    env::seed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_side_code_may_read_the_clock() {
        let _t = Instant::now();
        let _v = std::env::var("TDM_TEST_KNOB");
    }
}
