// path: crates/sim/src/d2_fires.rs
// Wall-clock and environment reads in modeled code.

fn stamp() -> u64 {
    let t0 = Instant::now(); //~ D2
    let wall = SystemTime::now(); //~ D2
    let tuning = std::env::var("TDM_TUNING").ok(); //~ D2
    let _ = (t0, wall, tuning);
    0
}
