// path: crates/sim/src/snapshot.rs
// Total shapes in a decoder module: checked access, typed errors, and
// syntactic `[` uses that are not indexing.

#[derive(Debug)]
struct Frame {
    kind: u8,
}

fn decode(bytes: &[u8]) -> Result<Frame, Error> {
    // `get` + `ok_or` instead of indexing; `unwrap_or` is total.
    let kind = bytes.first().copied().ok_or(Error::Truncated)?;
    let _padding = bytes.get(1).copied().unwrap_or(0);
    // Array types and literals are not indexing.
    let _magic: [u8; 4] = [0x54, 0x44, 0x4D, 0x53];
    let _buf = vec![0u8; 16];
    Ok(Frame { kind })
}

enum Error {
    Truncated,
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_inside_decoder_modules_may_index_and_unwrap() {
        let bytes = [1u8, 2, 3];
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes.first().copied().unwrap(), 1);
    }
}
