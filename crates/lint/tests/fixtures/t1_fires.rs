// path: crates/sim/src/snapshot.rs
// Panicking constructs inside a total-decoder module.

fn decode(bytes: &[u8], table: &[u32]) -> u32 {
    let first = bytes.first().unwrap(); //~ T1
    let second = bytes.get(1).expect("at least two bytes"); //~ T1
    if *first > 7 {
        panic!("bad tag"); //~ T1
    }
    let direct = bytes[2]; //~ T1
    let looked_up = table[*second as usize]; //~ T1 C1
    u32::from(direct) + looked_up
}

fn unfinished() -> u8 {
    unreachable!("decoder state machine") //~ T1
}
