// path: crates/sim/src/lib.rs
//! A crate root carrying the required attribute.

#![forbid(unsafe_code)]

pub mod cache;
pub mod clock;
