// path: crates/sim/src/lib.rs //~ U1
//! A crate root without `#![forbid(unsafe_code)]`.

pub mod cache;
pub mod clock;
