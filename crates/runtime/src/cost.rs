//! Cycle cost model of runtime-system operations.
//!
//! The paper's characterization (Section II-B, Figure 2) attributes the
//! execution time of every thread to dependence management (DEPS),
//! scheduling (SCHED), task execution (EXEC) and idle time (IDLE). The
//! execution driver charges DEPS and SCHED cycles using this cost model;
//! EXEC comes from the task durations and IDLE emerges from the simulation.
//!
//! Costs are split between a fixed part and parts that scale with the work
//! actually performed (dependences declared, reader lists walked, successors
//! woken), mirroring how a software runtime such as Nanos++ behaves: creating
//! a task allocates and initializes a descriptor, registering a dependence
//! performs a hash-map lookup plus list manipulation under a lock, and the
//! cost grows with the number of edges discovered. The default constants are
//! calibrated so that the per-task creation cost lands in the few-microsecond
//! range measured for software runtimes on out-of-order cores, producing the
//! DEPS fractions of Figure 2.

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

/// Cycle costs of the runtime-system operations modelled by the simulator.
///
/// All values are in cycles of the 2 GHz simulated chip (2000 cycles = 1 µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // --- Software runtime system (baseline, also used by Carbon) ---
    /// Allocating and initializing a task descriptor in software.
    pub sw_task_alloc: Cycle,
    /// Registering one declared dependence in the software dependence
    /// tracker (hash-map lookup/insert, locking).
    pub sw_dep_register: Cycle,
    /// Cost per dependence edge discovered or reader-list element walked
    /// while registering dependences.
    pub sw_edge_work: Cycle,
    /// Fixed part of notifying a task finished in software.
    pub sw_finish_base: Cycle,
    /// Cost per successor woken during a software finish.
    pub sw_finish_per_successor: Cycle,
    /// Selecting a task from the software ready pool (one scheduling
    /// decision, including synchronization on the pool).
    pub sw_sched_pick: Cycle,
    /// Inserting a ready task into the software ready pool.
    pub sw_sched_push: Cycle,

    // --- TDM (DMU for dependences, software scheduling) ---
    /// Allocating and initializing a task descriptor when the DMU tracks
    /// dependences (smaller than `sw_task_alloc`: no software dependence
    /// structures are initialized).
    pub tdm_task_alloc: Cycle,
    /// Core-side cost of issuing one TDM ISA instruction (barrier semantics,
    /// operand setup), excluding the NoC round trip and DMU processing.
    pub tdm_instr_issue: Cycle,

    // --- Hardware task queues (Carbon, Task Superscalar) ---
    /// Pushing or popping a task on a hardware task queue, including the
    /// enqueue/dequeue instruction and NoC round trip.
    pub hw_queue_op: Cycle,
    /// Task-descriptor allocation under Task Superscalar (descriptors still
    /// live in memory, but no software dependence structures exist).
    pub tss_task_alloc: Cycle,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sw_task_alloc: Cycle::new(3_000),         // 1.5 us
            sw_dep_register: Cycle::new(3_400),       // 1.7 us per declared dependence
            sw_edge_work: Cycle::new(500),            // 0.25 us per edge / reader walked
            sw_finish_base: Cycle::new(1_200),        // 0.6 us
            sw_finish_per_successor: Cycle::new(300), // 0.15 us
            sw_sched_pick: Cycle::new(400),           // 0.2 us
            sw_sched_push: Cycle::new(200),           // 0.1 us
            tdm_task_alloc: Cycle::new(1_200),        // 0.6 us
            tdm_instr_issue: Cycle::new(20),
            hw_queue_op: Cycle::new(40),
            tss_task_alloc: Cycle::new(1_200),
        }
    }
}

impl CostModel {
    /// Software cost of creating one task that declares `num_deps`
    /// dependences and performs `edge_work` units of edge discovery
    /// (successor registration / reader walks).
    pub fn sw_creation_cost(&self, num_deps: usize, edge_work: u32) -> Cycle {
        self.sw_task_alloc
            + self.sw_dep_register.scaled(num_deps as u64)
            + self.sw_edge_work.scaled(u64::from(edge_work))
    }

    /// Software cost of finishing a task that wakes `num_successors`
    /// successors.
    pub fn sw_finish_cost(&self, num_successors: u32) -> Cycle {
        self.sw_finish_base
            + self
                .sw_finish_per_successor
                .scaled(u64::from(num_successors))
    }

    /// Core-side cost of one TDM instruction excluding DMU processing:
    /// issue overhead plus the NoC round trip to the DMU.
    pub fn tdm_instr_overhead(&self, noc_round_trip: Cycle) -> Cycle {
        self.tdm_instr_issue + noc_round_trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_in_the_microsecond_range() {
        let c = CostModel::default();
        // A 3-dependence task (Cholesky sgemm-like) costs a handful of
        // microseconds to create in software at 2 GHz.
        let cost = c.sw_creation_cost(3, 3);
        let micros = cost.as_f64() / 2000.0;
        assert!(
            (4.0..12.0).contains(&micros),
            "software creation cost {micros:.2} us out of expected range"
        );
    }

    #[test]
    fn creation_cost_scales_with_dependences() {
        let c = CostModel::default();
        assert!(c.sw_creation_cost(6, 0) > c.sw_creation_cost(1, 0));
        assert!(c.sw_creation_cost(1, 10) > c.sw_creation_cost(1, 0));
        assert_eq!(c.sw_creation_cost(0, 0), c.sw_task_alloc);
    }

    #[test]
    fn finish_cost_scales_with_successors() {
        let c = CostModel::default();
        assert_eq!(c.sw_finish_cost(0), c.sw_finish_base);
        assert!(c.sw_finish_cost(8) > c.sw_finish_cost(1));
    }

    #[test]
    fn tdm_instruction_overhead_is_orders_of_magnitude_cheaper() {
        let c = CostModel::default();
        let tdm = c.tdm_instr_overhead(Cycle::new(16));
        // One TDM instruction (tens of cycles) vs one software dependence
        // registration (thousands of cycles).
        assert!(tdm.raw() * 20 < c.sw_dep_register.raw());
    }

    #[test]
    fn hardware_queue_ops_are_cheaper_than_software_scheduling() {
        let c = CostModel::default();
        assert!(c.hw_queue_op < c.sw_sched_pick);
    }
}
