//! Dependence-management engines (runtime backends).
//!
//! The execution driver is generic over *how dependences are tracked*; the
//! four systems compared in the paper differ exactly there and in where the
//! ready queue lives:
//!
//! | System            | Dependence tracking | Scheduling            |
//! |-------------------|---------------------|-----------------------|
//! | Software baseline | software            | software (pluggable)  |
//! | **TDM**           | hardware (DMU)      | software (pluggable)  |
//! | Carbon            | software            | hardware FIFO queues  |
//! | Task Superscalar  | hardware            | hardware FIFO queue   |
//!
//! This module provides the [`DependenceEngine`] trait plus the software
//! engine (used by the baseline and Carbon) and the hardware engine backed by
//! a real [`Dmu`] instance (used by TDM and Task Superscalar). Where the
//! ready queue lives is a property of [`crate::exec::Backend`], handled by
//! the driver.

use tdm_core::config::DmuConfig;
use tdm_core::dmu::{Dmu, DmuError, DmuStats, PeakOccupancy};
use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};
use tdm_sim::clock::Cycle;

use crate::cost::CostModel;
use crate::task::{TaskRef, Workload};
use crate::tdg::TaskGraph;

/// Base address used to synthesize task-descriptor addresses. Descriptors are
/// spaced one cache line apart so consecutive tasks map to consecutive TAT
/// sets.
const DESCRIPTOR_BASE: u64 = 0x7f00_0000_0000;
/// Spacing between synthesized task descriptors, in bytes.
const DESCRIPTOR_STRIDE: u64 = 64;

/// A task that just became ready, with the successor count the scheduler may
/// want.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyInfo {
    /// The ready task.
    pub task: TaskRef,
    /// Successors registered for it at the time it became ready.
    pub num_successors: u32,
}

/// Result of a (possibly partial) task-creation step on the master thread.
///
/// Tasks that became ready during the call are appended to the `ready`
/// buffer the caller passes in (the created task itself if it had no
/// unsatisfied dependences, plus any tasks drained from the hardware ready
/// queue). The buffer is caller-owned so the execution driver can reuse one
/// allocation across every event of a run instead of allocating a fresh
/// vector per engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreationOutcome {
    /// Cycles the creating core spent in this call (DEPS).
    pub cost: Cycle,
    /// Whether the creation completed. `false` means a DMU structure was
    /// full; the caller must retry after the next `finish_task`.
    pub completed: bool,
}

/// Snapshot of hardware dependence-tracker state, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareReport {
    /// Operation counts and totals.
    pub stats: DmuStats,
    /// Peak occupancy of every structure.
    pub peak: PeakOccupancy,
    /// Average number of occupied DAT sets (Figure 11 metric).
    pub dat_average_occupied_sets: f64,
    /// Cycles creation was blocked waiting for DMU resources.
    pub stall_cycles: Cycle,
    /// TDM ISA instructions issued.
    pub instructions: u64,
}

/// How dependences are tracked for a run.
///
/// Both operations *append* newly ready tasks to a caller-owned `ready`
/// buffer instead of returning a fresh vector; callers clear (or drain) the
/// buffer between calls. This keeps the simulate loop allocation-free per
/// event on its hottest path.
pub trait DependenceEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Performs (or resumes) the creation of `task` at simulated time `now`,
    /// appending tasks that became ready to `ready`.
    fn create_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome;

    /// Notifies that `task` finished at time `now` on core `core`, appending
    /// tasks that became ready to `ready`. Returns the cycles the finishing
    /// core spent (DEPS).
    fn finish_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle;

    /// Hardware statistics, if this engine models a hardware tracker.
    fn hardware_report(&self) -> Option<HardwareReport> {
        None
    }
}

// ---------------------------------------------------------------------------
// Software dependence tracking (baseline and Carbon)
// ---------------------------------------------------------------------------

/// Software dependence tracking: the runtime system matches dependences and
/// maintains the TDG in memory, paying the software costs of
/// [`CostModel::sw_creation_cost`] / [`CostModel::sw_finish_cost`].
#[derive(Debug, Clone)]
pub struct SoftwareEngine {
    name: &'static str,
    graph: TaskGraph,
    workload_deps: Vec<usize>,
    pending_predecessors: Vec<u32>,
    successor_counts: Vec<u32>,
    created: Vec<bool>,
    finished: Vec<bool>,
    cost: CostModel,
}

impl SoftwareEngine {
    /// Builds a software engine for `workload`.
    pub fn new(workload: &Workload, cost: CostModel) -> Self {
        Self::with_name("software", workload, cost)
    }

    /// Builds a software engine with a custom report name (used by Carbon,
    /// whose dependence tracking is identical to the baseline's).
    pub fn with_name(name: &'static str, workload: &Workload, cost: CostModel) -> Self {
        let graph = TaskGraph::build(workload);
        let n = workload.len();
        let pending = (0..n)
            .map(|i| graph.predecessor_count(TaskRef(i)))
            .collect();
        let succ = (0..n).map(|i| graph.successor_count(TaskRef(i))).collect();
        SoftwareEngine {
            name,
            graph,
            workload_deps: workload.tasks.iter().map(|t| t.deps.len()).collect(),
            pending_predecessors: pending,
            successor_counts: succ,
            created: vec![false; n],
            finished: vec![false; n],
            cost,
        }
    }

    /// The reference graph built for this workload (shared with tests).
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

impl DependenceEngine for SoftwareEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn create_task(
        &mut self,
        _now: Cycle,
        task: TaskRef,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome {
        let i = task.index();
        assert!(!self.created[i], "{task} created twice");
        self.created[i] = true;
        let cost = self
            .cost
            .sw_creation_cost(self.workload_deps[i], self.graph.creation_edge_work(task));
        if self.pending_predecessors[i] == 0 {
            ready.push(ReadyInfo {
                task,
                num_successors: self.successor_counts[i],
            });
        }
        CreationOutcome {
            cost,
            completed: true,
        }
    }

    fn finish_task(
        &mut self,
        _now: Cycle,
        task: TaskRef,
        _core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle {
        let i = task.index();
        assert!(self.created[i], "{task} finished before being created");
        assert!(!self.finished[i], "{task} finished twice");
        self.finished[i] = true;
        let successors = self.graph.successors(task);
        for &succ in successors {
            let s = succ.index();
            debug_assert!(self.pending_predecessors[s] > 0);
            self.pending_predecessors[s] -= 1;
            if self.pending_predecessors[s] == 0 && self.created[s] && !self.finished[s] {
                ready.push(ReadyInfo {
                    task: succ,
                    num_successors: self.successor_counts[s],
                });
            }
        }
        self.cost.sw_finish_cost(successors.len() as u32)
    }
}

// ---------------------------------------------------------------------------
// Hardware dependence tracking (TDM's DMU, also reused for Task Superscalar)
// ---------------------------------------------------------------------------

/// State of a task creation interrupted by a DMU stall, so the retry resumes
/// where it left off instead of re-issuing completed instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingCreation {
    task: TaskRef,
    created: bool,
    next_dep: usize,
}

/// Which hardware tracker flavour this engine models; the DMU mechanics are
/// shared, only the report name and descriptor-allocation cost differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwareFlavor {
    /// TDM: DMU tracks dependences, scheduling stays in software.
    Tdm,
    /// Task Superscalar: dependence tracking and scheduling both in hardware.
    TaskSuperscalar,
}

/// Hardware dependence tracking backed by a cycle-costed [`Dmu`] model.
#[derive(Debug, Clone)]
pub struct HardwareEngine {
    flavor: HardwareFlavor,
    dmu: Dmu,
    workload: WorkloadMirror,
    cost: CostModel,
    noc_round_trip: Cycle,
    /// Time at which the (sequential) DMU becomes free.
    dmu_free_at: Cycle,
    pending: Option<PendingCreation>,
    stall_cycles: Cycle,
    instructions: u64,
    successor_hint: Vec<u32>,
    /// Descriptor-slot allocator. Real task descriptors are heap objects that
    /// the runtime's allocator recycles, so the set of live descriptor
    /// addresses stays compact; modelling that keeps the TAT's set-index
    /// behaviour realistic for long runs.
    free_slots: Vec<u64>,
    next_slot: u64,
    /// Slot currently assigned to each task (by task index), if in flight.
    task_slot: Vec<Option<u64>>,
    /// Task owning each slot.
    slot_owner: Vec<usize>,
}

/// The slice of workload information the hardware engine needs (kept as owned
/// data so the engine has no lifetime parameters).
#[derive(Debug, Clone)]
struct WorkloadMirror {
    deps: Vec<Vec<(u64, u64, DepDirection)>>,
}

impl HardwareEngine {
    /// Builds a hardware engine over `workload` with the given DMU geometry.
    pub fn new(
        flavor: HardwareFlavor,
        workload: &Workload,
        dmu_config: DmuConfig,
        cost: CostModel,
        noc_round_trip: Cycle,
    ) -> Self {
        let deps = workload
            .tasks
            .iter()
            .map(|t| {
                t.deps
                    .iter()
                    .map(|d| (d.addr, d.size, d.direction))
                    .collect()
            })
            .collect();
        HardwareEngine {
            flavor,
            dmu: Dmu::new(dmu_config),
            workload: WorkloadMirror { deps },
            cost,
            noc_round_trip,
            dmu_free_at: Cycle::ZERO,
            pending: None,
            stall_cycles: Cycle::ZERO,
            instructions: 0,
            successor_hint: vec![0; workload.len()],
            free_slots: Vec::new(),
            next_slot: 0,
            task_slot: vec![None; workload.len()],
            slot_owner: Vec::new(),
        }
    }

    /// Direct access to the underlying DMU (used by tests and by the
    /// design-space-exploration harnesses).
    pub fn dmu(&self) -> &Dmu {
        &self.dmu
    }

    /// Returns the descriptor address of `task`, allocating a descriptor slot
    /// the first time it is asked for during creation.
    fn descriptor(&mut self, task: TaskRef) -> DescriptorAddr {
        let slot = match self.task_slot[task.index()] {
            Some(slot) => slot,
            None => {
                let slot = self.free_slots.pop().unwrap_or_else(|| {
                    let s = self.next_slot;
                    self.next_slot += 1;
                    s
                });
                self.task_slot[task.index()] = Some(slot);
                if self.slot_owner.len() <= slot as usize {
                    self.slot_owner.resize(slot as usize + 1, usize::MAX);
                }
                self.slot_owner[slot as usize] = task.index();
                slot
            }
        };
        DescriptorAddr(DESCRIPTOR_BASE + slot * DESCRIPTOR_STRIDE)
    }

    /// Reverse-maps a descriptor address handed back by the DMU to its task.
    fn task_of(&self, desc: DescriptorAddr) -> TaskRef {
        let slot = ((desc.raw() - DESCRIPTOR_BASE) / DESCRIPTOR_STRIDE) as usize;
        TaskRef(self.slot_owner[slot])
    }

    /// Releases the descriptor slot of a finished task.
    fn release_descriptor(&mut self, task: TaskRef) {
        if let Some(slot) = self.task_slot[task.index()].take() {
            self.free_slots.push(slot);
        }
    }

    /// Charges one TDM instruction issued at local time `at`: issue overhead,
    /// NoC round trip, waiting for the DMU to become free and the DMU
    /// processing time for `accesses` accesses. Returns the cycles consumed
    /// on the issuing core.
    fn charge_instruction(&mut self, at: Cycle, processing: Cycle) -> Cycle {
        self.instructions += 1;
        let overhead = self.cost.tdm_instr_overhead(self.noc_round_trip);
        let arrival = at + overhead;
        let start = arrival.max(self.dmu_free_at);
        self.dmu_free_at = start + processing;
        let queueing = start - arrival;
        overhead + queueing + processing
    }

    /// Charges a stalled instruction attempt (the request travelled to the
    /// DMU, which could not make progress).
    fn charge_stalled_attempt(&mut self, at: Cycle) -> Cycle {
        self.instructions += 1;
        let overhead = self.cost.tdm_instr_overhead(self.noc_round_trip);
        let probe = self.dmu.access_latency();
        let arrival = at + overhead;
        let start = arrival.max(self.dmu_free_at);
        self.dmu_free_at = start + probe;
        overhead + (start - arrival) + probe
    }

    /// Drains the DMU ready queue into `ready`, charging one `get_ready_task`
    /// instruction per attempt (including the final empty one), mirroring the
    /// runtime's polling loop.
    fn drain_ready(&mut self, mut at: Cycle, cost: &mut Cycle, ready: &mut Vec<ReadyInfo>) {
        loop {
            let result = self.dmu.get_ready_task();
            let spent = self.charge_instruction(at, result.cost(self.dmu.access_latency()));
            *cost += spent;
            at += spent;
            match result.value {
                Some(t) => {
                    let task = self.task_of(t.descriptor);
                    self.successor_hint[task.index()] = t.num_successors;
                    ready.push(ReadyInfo {
                        task,
                        num_successors: t.num_successors,
                    });
                }
                None => break,
            }
        }
    }

    fn alloc_cost(&self) -> Cycle {
        match self.flavor {
            HardwareFlavor::Tdm => self.cost.tdm_task_alloc,
            HardwareFlavor::TaskSuperscalar => self.cost.tss_task_alloc,
        }
    }
}

impl DependenceEngine for HardwareEngine {
    fn name(&self) -> &'static str {
        match self.flavor {
            HardwareFlavor::Tdm => "tdm",
            HardwareFlavor::TaskSuperscalar => "task-superscalar",
        }
    }

    fn create_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome {
        let desc = self.descriptor(task);
        let latency = self.dmu.access_latency();
        let mut cost = Cycle::ZERO;

        let mut pending = match self.pending.take() {
            Some(p) => {
                assert_eq!(p.task, task, "resumed creation of a different task");
                p
            }
            None => {
                // Descriptor allocation happens in software before the first
                // TDM instruction.
                cost += self.alloc_cost();
                PendingCreation {
                    task,
                    created: false,
                    next_dep: 0,
                }
            }
        };

        if !pending.created {
            match self.dmu.create_task(desc) {
                Ok(r) => {
                    cost += self.charge_instruction(now + cost, r.cost(latency));
                    pending.created = true;
                }
                Err(DmuError::Stall(_)) => {
                    cost += self.charge_stalled_attempt(now + cost);
                    self.stall_cycles += cost;
                    self.pending = Some(pending);
                    return CreationOutcome {
                        cost,
                        completed: false,
                    };
                }
                Err(e) => panic!("unexpected DMU error during create: {e}"),
            }
        }

        // Index the dependence slice in place each iteration (each element is
        // a small Copy tuple) — cloning the whole per-task vector here used
        // to show up on the simulate hot path.
        while pending.next_dep < self.workload.deps[task.index()].len() {
            let (addr, size, dir) = self.workload.deps[task.index()][pending.next_dep];
            match self.dmu.add_dependence(desc, DepAddr(addr), size, dir) {
                Ok(r) => {
                    cost += self.charge_instruction(now + cost, r.cost(latency));
                    pending.next_dep += 1;
                }
                Err(DmuError::Stall(_)) => {
                    cost += self.charge_stalled_attempt(now + cost);
                    self.stall_cycles += cost;
                    self.pending = Some(pending);
                    // Ready tasks may already be sitting in the queue; expose
                    // them so workers are not starved while the master waits.
                    self.drain_ready(now + cost, &mut cost, ready);
                    return CreationOutcome {
                        cost,
                        completed: false,
                    };
                }
                Err(e) => panic!("unexpected DMU error during add_dependence: {e}"),
            }
        }

        let submit = self
            .dmu
            .submit_task(desc)
            .expect("submit of a created task cannot fail");
        cost += self.charge_instruction(now + cost, submit.cost(latency));

        self.drain_ready(now + cost, &mut cost, ready);
        CreationOutcome {
            cost,
            completed: true,
        }
    }

    fn finish_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        _core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle {
        let desc = self.descriptor(task);
        let latency = self.dmu.access_latency();
        let mut cost = Cycle::ZERO;
        let result = self
            .dmu
            .finish_task(desc)
            .expect("finishing an in-flight task cannot fail");
        cost += self.charge_instruction(now, result.cost(latency));
        self.release_descriptor(task);
        self.drain_ready(now + cost, &mut cost, ready);
        cost
    }

    fn hardware_report(&self) -> Option<HardwareReport> {
        Some(HardwareReport {
            stats: self.dmu.stats(),
            peak: self.dmu.peak_occupancy(),
            dat_average_occupied_sets: self.dmu.dat_average_occupied_sets(),
            stall_cycles: self.stall_cycles,
            instructions: self.instructions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{DependenceSpec, TaskSpec};

    fn chain_workload(n: usize) -> Workload {
        Workload::new(
            "chain",
            (0..n)
                .map(|_| {
                    TaskSpec::new(
                        "step",
                        Cycle::new(1000),
                        vec![DependenceSpec::inout(0xA000, 4096)],
                    )
                })
                .collect(),
        )
    }

    fn fork_join_workload() -> Workload {
        let mut tasks = vec![TaskSpec::new(
            "root",
            Cycle::new(1000),
            vec![DependenceSpec::output(0x1000, 4096)],
        )];
        for i in 0..4 {
            tasks.push(TaskSpec::new(
                "leaf",
                Cycle::new(1000),
                vec![
                    DependenceSpec::input(0x1000, 4096),
                    DependenceSpec::output(0x2000 + i * 4096, 4096),
                ],
            ));
        }
        Workload::new("forkjoin", tasks)
    }

    fn run_engine_to_completion(engine: &mut dyn DependenceEngine, n: usize) -> Vec<TaskRef> {
        // Create everything (retrying stalls), executing ready tasks
        // immediately in FIFO order; returns the completion order. The pool
        // doubles as the engines' append-only ready buffer.
        let mut order = Vec::new();
        let mut pool: Vec<ReadyInfo> = Vec::new();
        let mut next = 0usize;
        let mut now = Cycle::ZERO;
        while order.len() < n {
            if next < n {
                let outcome = engine.create_task(now, TaskRef(next), &mut pool);
                now += outcome.cost;
                if outcome.completed {
                    next += 1;
                    continue;
                }
                // Stalled: fall through to execute something so resources free up.
            }
            if pool.is_empty() {
                panic!(
                    "no ready task but {} of {} still unfinished",
                    n - order.len(),
                    n
                );
            }
            let info = pool.remove(0);
            now += engine.finish_task(now, info.task, 0, &mut pool);
            order.push(info.task);
        }
        order
    }

    #[test]
    fn software_engine_matches_graph_for_chain() {
        let w = chain_workload(10);
        let mut e = SoftwareEngine::new(&w, CostModel::default());
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut e, w.len());
        assert!(graph.check_order(&order).is_ok());
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn hardware_engine_matches_graph_for_chain() {
        let w = chain_workload(10);
        let mut e = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut e, w.len());
        assert!(graph.check_order(&order).is_ok());
    }

    #[test]
    fn engines_agree_on_fork_join_readiness() {
        let w = fork_join_workload();
        let mut sw = SoftwareEngine::new(&w, CostModel::default());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        // Create all tasks on both engines.
        let mut sw_ready = Vec::new();
        let mut hw_ready = Vec::new();
        for i in 0..w.len() {
            sw.create_task(Cycle::ZERO, TaskRef(i), &mut sw_ready);
            hw.create_task(Cycle::ZERO, TaskRef(i), &mut hw_ready);
        }
        // Only the root is ready on both.
        assert_eq!(sw_ready.len(), 1);
        assert_eq!(hw_ready.len(), 1);
        assert_eq!(sw_ready[0].task, TaskRef(0));
        assert_eq!(hw_ready[0].task, TaskRef(0));
        // Finishing the root readies all four leaves on both.
        let mut sw_fin = Vec::new();
        let mut hw_fin = Vec::new();
        sw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut sw_fin);
        hw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut hw_fin);
        let mut sw_tasks: Vec<usize> = sw_fin.iter().map(|r| r.task.index()).collect();
        let mut hw_tasks: Vec<usize> = hw_fin.iter().map(|r| r.task.index()).collect();
        sw_tasks.sort_unstable();
        hw_tasks.sort_unstable();
        assert_eq!(sw_tasks, vec![1, 2, 3, 4]);
        assert_eq!(hw_tasks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn successor_counts_are_exposed() {
        let w = fork_join_workload();
        // The software engine reports the whole-graph successor count (it
        // knows the full TDG); the root of the fork-join has 4 successors.
        let mut sw = SoftwareEngine::new(&w, CostModel::default());
        let mut sw_ready = Vec::new();
        sw.create_task(Cycle::ZERO, TaskRef(0), &mut sw_ready);
        assert_eq!(sw_ready[0].num_successors, 4);
        // The hardware engine reports the count registered in the DMU at the
        // moment the task is handed to the runtime; for a leaf readied by the
        // root's finish, all successors (zero) are known by then.
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let mut ready = Vec::new();
        for i in 0..w.len() {
            hw.create_task(Cycle::ZERO, TaskRef(i), &mut ready);
        }
        let mut fin = Vec::new();
        hw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut fin);
        assert!(fin.iter().all(|r| r.num_successors == 0));
    }

    #[test]
    fn software_creation_cost_scales_with_dependences() {
        let w = fork_join_workload();
        let mut e = SoftwareEngine::new(&w, CostModel::default());
        let mut ready = Vec::new();
        let root_cost = e.create_task(Cycle::ZERO, TaskRef(0), &mut ready).cost;
        let leaf_cost = e.create_task(Cycle::ZERO, TaskRef(1), &mut ready).cost;
        assert!(
            leaf_cost > root_cost,
            "2-dep leaf should cost more than 1-dep root"
        );
    }

    #[test]
    fn hardware_creation_is_much_cheaper_than_software() {
        let w = chain_workload(20);
        let cost = CostModel::default();
        let mut sw = SoftwareEngine::new(&w, cost.clone());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default(),
            cost,
            Cycle::new(16),
        );
        let mut ready = Vec::new();
        let sw_cost = sw.create_task(Cycle::ZERO, TaskRef(0), &mut ready).cost;
        let hw_cost = hw.create_task(Cycle::ZERO, TaskRef(0), &mut ready).cost;
        assert!(
            hw_cost.raw() * 2 < sw_cost.raw(),
            "TDM creation ({hw_cost}) should be far cheaper than software ({sw_cost})"
        );
    }

    #[test]
    fn hardware_engine_stalls_and_recovers_with_tiny_dmu() {
        let w = chain_workload(40);
        let config = DmuConfig {
            tat_entries: 8,
            tat_ways: 8,
            dat_entries: 8,
            dat_ways: 8,
            successor_la_entries: 8,
            dependence_la_entries: 8,
            reader_la_entries: 8,
            ..DmuConfig::default()
        };
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            config,
            CostModel::default(),
            Cycle::new(16),
        );
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut hw, w.len());
        assert!(graph.check_order(&order).is_ok());
        let report = hw.hardware_report().unwrap();
        assert!(report.stats.stalls > 0, "the tiny DMU must stall");
        assert!(report.stall_cycles > Cycle::ZERO);
    }

    #[test]
    fn dmu_serialization_adds_queueing_delay() {
        let w = chain_workload(4);
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default().with_access_latency(Cycle::new(16)),
            CostModel::default(),
            Cycle::new(16),
        );
        // Two creations issued at the same instant: the second waits for the
        // DMU to finish processing the first.
        let mut ready = Vec::new();
        let c0 = hw.create_task(Cycle::ZERO, TaskRef(0), &mut ready).cost;
        let c1 = hw.create_task(Cycle::ZERO, TaskRef(1), &mut ready).cost;
        assert!(
            c1 >= c0,
            "second creation at the same time must queue behind the first"
        );
    }

    #[test]
    fn flavor_names_differ() {
        let w = chain_workload(2);
        let tdm = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &w,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let tss = HardwareEngine::new(
            HardwareFlavor::TaskSuperscalar,
            &w,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        assert_eq!(tdm.name(), "tdm");
        assert_eq!(tss.name(), "task-superscalar");
        assert_eq!(
            SoftwareEngine::new(&w, CostModel::default()).name(),
            "software"
        );
        assert_eq!(
            SoftwareEngine::with_name("carbon", &w, CostModel::default()).name(),
            "carbon"
        );
    }
}
