//! Dependence-management engines (runtime backends).
//!
//! The execution driver is generic over *how dependences are tracked*; the
//! four systems compared in the paper differ exactly there and in where the
//! ready queue lives:
//!
//! | System            | Dependence tracking | Scheduling            |
//! |-------------------|---------------------|-----------------------|
//! | Software baseline | software            | software (pluggable)  |
//! | **TDM**           | hardware (DMU)      | software (pluggable)  |
//! | Carbon            | software            | hardware FIFO queues  |
//! | Task Superscalar  | hardware            | hardware FIFO queue   |
//!
//! This module provides the [`DependenceEngine`] trait plus the software
//! engine (used by the baseline and Carbon) and the hardware engine backed by
//! a real [`Dmu`] instance (used by TDM and Task Superscalar). Where the
//! ready queue lives is a property of [`crate::exec::Backend`], handled by
//! the driver.
//!
//! Both engines track dependences **incrementally**: they learn about a task
//! (and its declared dependences) only when the driver calls
//! [`DependenceEngine::create_task`] with its [`TaskSpec`], exactly like a
//! real runtime system discovers the graph as the master thread creates
//! tasks. Per-task state is dropped again when the task finishes, so neither
//! engine needs the whole workload — the property the streaming/windowed
//! execution path ([`crate::exec::simulate_stream`]) relies on. The
//! hardware engine's memory is bounded by in-flight tasks outright (the DMU
//! has fixed capacity); the software engine additionally keeps its
//! per-address matching map, which grows with distinct addresses and with
//! readers not yet flushed by a writer — the same footprint a real
//! software runtime's dependence hash map has, so prefer a hardware
//! backend for very long read-mostly streams. One observable consequence:
//! the successor count a [`ReadyInfo`] carries is the number of successors
//! *registered so far* at the moment the task is handed to the scheduler
//! (the same semantics the DMU's `get_ready_task` has in hardware), never a
//! whole-program lookahead.

use tdm_core::config::DmuConfig;
use tdm_core::dmu::{Dmu, DmuError, DmuStats, PeakOccupancy};
use tdm_core::ids::{DepAddr, DescriptorAddr, TaskId};
use tdm_sim::clock::Cycle;
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

use crate::cost::CostModel;
use crate::fast_map::FastMap;
use crate::task::{TaskRef, TaskSpec};

/// Base address used to synthesize task-descriptor addresses. Descriptors are
/// spaced one cache line apart so consecutive tasks map to consecutive TAT
/// sets.
const DESCRIPTOR_BASE: u64 = 0x7f00_0000_0000;
/// Spacing between synthesized task descriptors, in bytes.
const DESCRIPTOR_STRIDE: u64 = 64;

/// A task that just became ready, with the successor count the scheduler may
/// want.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyInfo {
    /// The ready task.
    pub task: TaskRef,
    /// Successors registered for it at the time it became ready.
    pub num_successors: u32,
}

/// Result of a (possibly partial) task-creation step on the master thread.
///
/// Tasks that became ready during the call are appended to the `ready`
/// buffer the caller passes in (the created task itself if it had no
/// unsatisfied dependences, plus any tasks drained from the hardware ready
/// queue). The buffer is caller-owned so the execution driver can reuse one
/// allocation across every event of a run instead of allocating a fresh
/// vector per engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreationOutcome {
    /// Cycles the creating core spent in this call (DEPS).
    pub cost: Cycle,
    /// Whether the creation completed. `false` means a DMU structure was
    /// full; the caller must retry (with the same spec) after the next
    /// `finish_task`.
    pub completed: bool,
}

/// Snapshot of hardware dependence-tracker state, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareReport {
    /// Operation counts and totals.
    pub stats: DmuStats,
    /// Peak occupancy of every structure.
    pub peak: PeakOccupancy,
    /// Average number of occupied DAT sets (Figure 11 metric).
    pub dat_average_occupied_sets: f64,
    /// Cycles creation was blocked waiting for DMU resources.
    pub stall_cycles: Cycle,
    /// TDM ISA instructions issued.
    pub instructions: u64,
}

/// How dependences are tracked for a run.
///
/// The driver creates tasks strictly in program order, passing each task's
/// [`TaskSpec`] to `create_task` (and passing the *same* spec again when
/// retrying a stalled creation). Both operations *append* newly ready tasks
/// to a caller-owned `ready` buffer instead of returning a fresh vector;
/// callers clear (or drain) the buffer between calls. This keeps the
/// simulate loop allocation-free per event on its hottest path.
///
/// Engines are `Send`: the parallel design-space sweep runner
/// (`tdm_bench::sweep`) executes independent simulation points on worker
/// threads, each owning its own engine. Engines are never shared between
/// threads, so `Sync` is not required.
pub trait DependenceEngine: Send {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Performs (or resumes) the creation of `task` at simulated time `now`,
    /// appending tasks that became ready to `ready`. Tasks must be created
    /// in program order (`task.index()` is consecutive).
    fn create_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        spec: &TaskSpec,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome;

    /// Notifies that `task` finished at time `now` on core `core`, appending
    /// tasks that became ready to `ready`. Returns the cycles the finishing
    /// core spent (DEPS).
    fn finish_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle;

    /// Processes a whole same-cycle batch of finishes in event order,
    /// appending one cost and one `(start, end)` range into `ready` per
    /// finish to the caller-owned `costs` and `spans` buffers (append-only;
    /// the caller clears them between batches).
    ///
    /// The observable outcome — costs, ready tasks and their order, engine
    /// statistics — must be identical to calling
    /// [`DependenceEngine::finish_task`] once per element; batching only
    /// amortizes *actual* per-call work (dispatch, buffer churn, repeated
    /// lookups), exactly like the DMU's batched `add_dependences`. The
    /// default implementation is that per-op loop.
    fn finish_batch(
        &mut self,
        now: Cycle,
        finishes: &[(TaskRef, usize)],
        costs: &mut Vec<Cycle>,
        ready: &mut Vec<ReadyInfo>,
        spans: &mut Vec<(usize, usize)>,
    ) {
        for &(task, core) in finishes {
            let start = ready.len();
            let cost = self.finish_task(now, task, core, ready);
            costs.push(cost);
            spans.push((start, ready.len()));
        }
    }

    /// Notifies that `task`'s execution attempt *failed* at time `now` on
    /// core `core`, returning the cycles the engine itself spends reacting
    /// (the driver charges its own failure-detection cost on top).
    ///
    /// A failed execution never reached [`finish_task`], so the task's
    /// dependents were never unblocked and nothing in the dependence state
    /// needs rolling back: the task simply stays in flight (software live
    /// slab, DMU tables, descriptor slot) until a retry succeeds. This hook
    /// must therefore leave every modeled Walk/access counter untouched —
    /// it exists to *validate* that invariant (panicking on a task that is
    /// not in flight, exactly like [`finish_task`] would) and to give
    /// engines a seam for future failure-aware behaviour.
    ///
    /// [`finish_task`]: DependenceEngine::finish_task
    ///
    /// # Panics
    ///
    /// Panics if `task` is not in flight (created and unfinished).
    fn fail_task(&mut self, now: Cycle, task: TaskRef, core: usize) -> Cycle;

    /// Hardware statistics, if this engine models a hardware tracker.
    fn hardware_report(&self) -> Option<HardwareReport> {
        None
    }

    /// Serializes the engine's dependence-tracking state for a checkpoint
    /// (the `ENGINE` snapshot section).
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores the engine's state from a checkpoint. The receiver must be
    /// freshly built with the same configuration (flavor, DMU geometry, cost
    /// model) the snapshot was taken under.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError>;
}

// ---------------------------------------------------------------------------
// Software dependence tracking (baseline and Carbon)
// ---------------------------------------------------------------------------

/// Per-address matching state: the last in-flight writer and the readers
/// registered since. Finished tasks are *not* pruned from this map (the
/// software runtime walks its hash-map entries regardless), which keeps the
/// modeled creation-time edge work identical to the reference
/// [`TaskGraph`](crate::tdg::TaskGraph) construction.
#[derive(Debug, Clone, Default)]
struct AddrState {
    last_writer: Option<TaskRef>,
    readers: Vec<TaskRef>,
}

/// State of one created-but-unfinished task.
#[derive(Debug, Clone, Default)]
struct LiveTask {
    /// Unsatisfied predecessor edges (with multiplicity).
    pending_predecessors: u32,
    /// Successor edges registered so far (with multiplicity); walked and
    /// decremented when this task finishes.
    successors: Vec<TaskRef>,
}

/// Dense storage for created-but-unfinished tasks, keyed by the in-flight
/// index span.
///
/// Tasks are created in program order and looked up heavily during
/// dependence matching — once per last-writer hit and once per element of a
/// reader list. On heavy fan-out workloads (streamcluster's fork-join
/// phases) those reader-list probes dominated the software engine's host
/// time when they went through a hash map. Live tasks always occupy the
/// contiguous index range `[oldest unfinished, next created)`, so a deque of
/// slots indexed by `task_index - base` turns every probe into an array
/// access; the span is trimmed from the front as the oldest tasks finish.
///
/// The span can exceed the in-flight *count* when an old task lingers
/// unfinished while later tasks stream past it (a finished task inside the
/// span costs one empty slot until the span front catches up); every
/// Table II policy drains oldest-first in practice, keeping the two within
/// the same order of magnitude.
#[derive(Debug, Clone, Default)]
struct LiveSlab {
    /// Task index of `slots[0]`.
    base: usize,
    /// One slot per task in `base..base + slots.len()`; `None` = finished.
    slots: std::collections::VecDeque<Option<LiveTask>>,
    /// Number of occupied slots.
    occupied: usize,
}

impl LiveSlab {
    fn get_mut(&mut self, index: usize) -> Option<&mut LiveTask> {
        self.slots.get_mut(index.checked_sub(self.base)?)?.as_mut()
    }

    /// Appends the state of a newly created task. Creation happens in
    /// program order, so the new index always extends the span at the back.
    fn push(&mut self, index: usize, live: LiveTask) {
        assert_eq!(
            index,
            self.base + self.slots.len(),
            "task {index} created out of program order"
        );
        self.slots.push_back(Some(live));
        self.occupied += 1;
    }

    /// Removes and returns `index`'s state, trimming finished slots from the
    /// front of the span.
    fn remove(&mut self, index: usize) -> Option<LiveTask> {
        let slot = index.checked_sub(self.base)?;
        let live = self.slots.get_mut(slot)?.take();
        if live.is_some() {
            self.occupied -= 1;
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        live
    }

    /// Number of created-but-unfinished tasks (leak accounting in tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.occupied
    }
}

/// Software dependence tracking: the runtime system matches dependences and
/// maintains the TDG in memory, paying the software costs of
/// [`CostModel::sw_creation_cost`] / [`CostModel::sw_finish_cost`].
///
/// The graph is built incrementally with the same RAW/WAR/WAW address
/// matching as the reference [`TaskGraph`](crate::tdg::TaskGraph): a task
/// depends on the last writer of each address it touches and, when it
/// writes, on the registered readers. Edges to already-finished tasks are
/// satisfied immediately (they cost the same matching work but add no
/// pending count), and per-task state is dropped at finish, so memory scales
/// with in-flight tasks plus distinct addresses — like the hash-map-based
/// tracker of a real runtime. Per-task state lives in a dense slab keyed by
/// the in-flight index span (`LiveSlab`), so the reader-list probes of
/// fan-out workloads are array accesses rather than hash lookups.
#[derive(Debug, Clone)]
pub struct SoftwareEngine {
    name: &'static str,
    cost: CostModel,
    addr_state: FastMap<u64, AddrState>,
    live: LiveSlab,
    next_create: usize,
}

impl SoftwareEngine {
    /// Builds an empty software engine.
    pub fn new(cost: CostModel) -> Self {
        Self::with_name("software", cost)
    }

    /// Builds a software engine with a custom report name (used by Carbon,
    /// whose dependence tracking is identical to the baseline's).
    pub fn with_name(name: &'static str, cost: CostModel) -> Self {
        SoftwareEngine {
            name,
            cost,
            addr_state: FastMap::default(),
            live: LiveSlab::default(),
            next_create: 0,
        }
    }
}

impl DependenceEngine for SoftwareEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn create_task(
        &mut self,
        _now: Cycle,
        task: TaskRef,
        spec: &TaskSpec,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome {
        let i = task.index();
        assert_eq!(i, self.next_create, "{task} created out of program order");
        self.next_create += 1;

        // Match this task's dependences against the address map, mirroring
        // TaskGraph::build edge for edge. `edge_work` counts the matching
        // work performed (last-writer lookups that found an entry plus
        // reader-list elements walked), finished or not — the runtime walks
        // them either way; only *unfinished* sources contribute pending
        // edges.
        let mut edge_work = 0u32;
        let mut pending = 0u32;
        for dep in &spec.deps {
            let state = self.addr_state.entry(dep.addr).or_default();
            // RAW / WAW edge from the last writer.
            if let Some(writer) = state.last_writer {
                if writer != task {
                    edge_work += 1;
                    if let Some(w) = self.live.get_mut(writer.index()) {
                        w.successors.push(task);
                        pending += 1;
                    }
                }
            }
            if dep.direction.writes() {
                // WAR edges from every reader, then take over as writer.
                edge_work += state.readers.len() as u32;
                for &reader in &state.readers {
                    if reader != task {
                        if let Some(r) = self.live.get_mut(reader.index()) {
                            r.successors.push(task);
                            pending += 1;
                        }
                    }
                }
                state.readers.clear();
                state.last_writer = Some(task);
            } else {
                state.readers.push(task);
                edge_work += 1;
            }
        }

        self.live.push(
            i,
            LiveTask {
                pending_predecessors: pending,
                successors: Vec::new(),
            },
        );
        if pending == 0 {
            // No successor can be registered before the task exists, so a
            // task that is ready at creation always reports zero successors
            // (exactly like the DMU's submit-time readiness).
            ready.push(ReadyInfo {
                task,
                num_successors: 0,
            });
        }
        CreationOutcome {
            cost: self.cost.sw_creation_cost(spec.deps.len(), edge_work),
            completed: true,
        }
    }

    fn finish_task(
        &mut self,
        _now: Cycle,
        task: TaskRef,
        _core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle {
        let i = task.index();
        let live = self
            .live
            .remove(i)
            .unwrap_or_else(|| panic!("{task} finished before being created, or twice"));
        for &succ in &live.successors {
            let s = self
                .live
                .get_mut(succ.index())
                .expect("successors of an in-flight task are in flight");
            debug_assert!(s.pending_predecessors > 0, "predecessor underflow");
            s.pending_predecessors -= 1;
            if s.pending_predecessors == 0 {
                ready.push(ReadyInfo {
                    task: succ,
                    num_successors: s.successors.len() as u32,
                });
            }
        }
        self.cost.sw_finish_cost(live.successors.len() as u32)
    }

    fn fail_task(&mut self, _now: Cycle, task: TaskRef, _core: usize) -> Cycle {
        // Nothing to roll back: the task never finished, so no successor
        // edges were walked and no modeled costs accrued. Validate that it
        // really is in flight and leave the tracking state untouched.
        assert!(
            self.live.get_mut(task.index()).is_some(),
            "{task} failed without being in flight"
        );
        Cycle::ZERO
    }

    // Snapshot support. The address map is canonicalized to a key-sorted list
    // (map iteration order is unobservable — see `fast_map`); the live slab
    // and its window position are written verbatim.
    fn save_state(&self, out: &mut Vec<u8>) {
        let mut addrs: Vec<(&u64, &AddrState)> = self.addr_state.iter().collect();
        addrs.sort_unstable_by_key(|(addr, _)| **addr);
        (addrs.len() as u64).save(out);
        for (addr, state) in addrs {
            addr.save(out);
            state.last_writer.save(out);
            state.readers.save(out);
        }
        self.live.base.save(out);
        self.live.slots.save(out);
        self.live.occupied.save(out);
        self.next_create.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let pairs: Vec<(u64, AddrState)> = Vec::load(r)?;
        let mut addr_state = FastMap::default();
        for (addr, state) in pairs {
            if addr_state.insert(addr, state).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: format!("duplicate address {addr:#x} in software engine map"),
                });
            }
        }
        let base = usize::load(r)?;
        let slots: std::collections::VecDeque<Option<LiveTask>> =
            std::collections::VecDeque::load(r)?;
        let occupied = usize::load(r)?;
        let next_create = usize::load(r)?;
        if slots.iter().filter(|s| s.is_some()).count() != occupied
            || base + slots.len() != next_create
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "software live slab inconsistent: base {base}, {} slots, \
                     {occupied} occupied, next task {next_create}",
                    slots.len()
                ),
            });
        }
        self.addr_state = addr_state;
        self.live = LiveSlab {
            base,
            slots,
            occupied,
        };
        self.next_create = next_create;
        Ok(())
    }
}

impl Persist for AddrState {
    fn save(&self, out: &mut Vec<u8>) {
        self.last_writer.save(out);
        self.readers.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(AddrState {
            last_writer: Option::load(r)?,
            readers: Vec::load(r)?,
        })
    }
}

impl Persist for LiveTask {
    fn save(&self, out: &mut Vec<u8>) {
        self.pending_predecessors.save(out);
        self.successors.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(LiveTask {
            pending_predecessors: u32::load(r)?,
            successors: Vec::load(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Hardware dependence tracking (TDM's DMU, also reused for Task Superscalar)
// ---------------------------------------------------------------------------

/// State of a task creation interrupted by a DMU stall, so the retry resumes
/// where it left off instead of re-issuing completed instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingCreation {
    task: TaskRef,
    created: bool,
    next_dep: usize,
}

/// Which hardware tracker flavour this engine models; the DMU mechanics are
/// shared, only the report name and descriptor-allocation cost differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwareFlavor {
    /// TDM: DMU tracks dependences, scheduling stays in software.
    Tdm,
    /// Task Superscalar: dependence tracking and scheduling both in hardware.
    TaskSuperscalar,
}

/// Hardware dependence tracking backed by a cycle-costed [`Dmu`] model.
///
/// The engine holds no per-workload state: task specs arrive one at a time
/// through `create_task` and the only memory that scales with the run is the
/// descriptor-slot map for *in-flight* tasks (plus the fixed-capacity DMU
/// itself), so arbitrarily long task streams run in bounded space.
#[derive(Debug, Clone)]
pub struct HardwareEngine {
    flavor: HardwareFlavor,
    dmu: Dmu,
    cost: CostModel,
    noc_round_trip: Cycle,
    /// Time at which the (sequential) DMU becomes free.
    dmu_free_at: Cycle,
    pending: Option<PendingCreation>,
    stall_cycles: Cycle,
    instructions: u64,
    /// Descriptor-slot allocator. Real task descriptors are heap objects that
    /// the runtime's allocator recycles, so the set of live descriptor
    /// addresses stays compact; modelling that keeps the TAT's set-index
    /// behaviour realistic for long runs.
    free_slots: Vec<u64>,
    next_slot: u64,
    /// Slot currently assigned to each in-flight task (by task index).
    task_slot: FastMap<usize, u64>,
    /// Task owning each slot (bounded by peak in-flight tasks).
    slot_owner: Vec<usize>,
    /// Reusable scratch buffer for `Dmu::finish_task_into` woken lists.
    woken_buf: Vec<TaskId>,
    /// Reusable scratch for the per-dependence access counters returned by
    /// the batched `Dmu::add_dependences`.
    dep_counters: Vec<tdm_core::access::AccessCounter>,
    /// Route every DMU operation through the one-at-a-time entry points
    /// instead of the batched ones. The batched path is contractually
    /// bit-identical; this switch exists so the conformance suite can run
    /// both and compare (see [`crate::exec::ExecConfig::per_op_dmu`]).
    per_op: bool,
}

impl HardwareEngine {
    /// Builds a hardware engine with the given DMU geometry.
    pub fn new(
        flavor: HardwareFlavor,
        dmu_config: DmuConfig,
        cost: CostModel,
        noc_round_trip: Cycle,
    ) -> Self {
        HardwareEngine {
            flavor,
            dmu: Dmu::new(dmu_config),
            cost,
            noc_round_trip,
            dmu_free_at: Cycle::ZERO,
            pending: None,
            stall_cycles: Cycle::ZERO,
            instructions: 0,
            free_slots: Vec::new(),
            next_slot: 0,
            task_slot: FastMap::default(),
            slot_owner: Vec::new(),
            woken_buf: Vec::new(),
            dep_counters: Vec::new(),
            per_op: false,
        }
    }

    /// Same engine with the per-operation DMU path selected (conformance
    /// knob; see the `per_op` field).
    pub fn with_per_op_dmu(mut self) -> Self {
        self.per_op = true;
        self
    }

    /// Direct access to the underlying DMU (used by tests and by the
    /// design-space-exploration harnesses).
    pub fn dmu(&self) -> &Dmu {
        &self.dmu
    }

    /// Returns the descriptor address of `task`, allocating a descriptor slot
    /// the first time it is asked for during creation.
    fn descriptor(&mut self, task: TaskRef) -> DescriptorAddr {
        let slot = match self.task_slot.get(&task.index()) {
            Some(&slot) => slot,
            None => {
                let slot = self.free_slots.pop().unwrap_or_else(|| {
                    let s = self.next_slot;
                    self.next_slot += 1;
                    s
                });
                self.task_slot.insert(task.index(), slot);
                if self.slot_owner.len() <= slot as usize {
                    self.slot_owner.resize(slot as usize + 1, usize::MAX);
                }
                self.slot_owner[slot as usize] = task.index();
                slot
            }
        };
        DescriptorAddr(DESCRIPTOR_BASE + slot * DESCRIPTOR_STRIDE)
    }

    /// Reverse-maps a descriptor address handed back by the DMU to its task.
    fn task_of(&self, desc: DescriptorAddr) -> TaskRef {
        let slot = ((desc.raw() - DESCRIPTOR_BASE) / DESCRIPTOR_STRIDE) as usize;
        TaskRef(self.slot_owner[slot])
    }

    /// Releases the descriptor slot of a finished task.
    fn release_descriptor(&mut self, task: TaskRef) {
        if let Some(slot) = self.task_slot.remove(&task.index()) {
            self.free_slots.push(slot);
        }
    }

    /// Charges one TDM instruction issued at local time `at`: issue overhead,
    /// NoC round trip, waiting for the DMU to become free and the DMU
    /// processing time for `accesses` accesses. Returns the cycles consumed
    /// on the issuing core.
    fn charge_instruction(&mut self, at: Cycle, processing: Cycle) -> Cycle {
        self.instructions += 1;
        let overhead = self.cost.tdm_instr_overhead(self.noc_round_trip);
        let arrival = at + overhead;
        let start = arrival.max(self.dmu_free_at);
        self.dmu_free_at = start + processing;
        let queueing = start - arrival;
        overhead + queueing + processing
    }

    /// Charges a stalled instruction attempt (the request travelled to the
    /// DMU, which could not make progress).
    fn charge_stalled_attempt(&mut self, at: Cycle) -> Cycle {
        self.instructions += 1;
        let overhead = self.cost.tdm_instr_overhead(self.noc_round_trip);
        let probe = self.dmu.access_latency();
        let arrival = at + overhead;
        let start = arrival.max(self.dmu_free_at);
        self.dmu_free_at = start + probe;
        overhead + (start - arrival) + probe
    }

    /// Drains the DMU ready queue into `ready`, charging one `get_ready_task`
    /// instruction per attempt (including the final empty one), mirroring the
    /// runtime's polling loop.
    fn drain_ready(&mut self, mut at: Cycle, cost: &mut Cycle, ready: &mut Vec<ReadyInfo>) {
        loop {
            let result = self.dmu.get_ready_task();
            let spent = self.charge_instruction(at, result.cost(self.dmu.access_latency()));
            *cost += spent;
            at += spent;
            match result.value {
                Some(t) => {
                    ready.push(ReadyInfo {
                        task: self.task_of(t.descriptor),
                        num_successors: t.num_successors,
                    });
                }
                None => break,
            }
        }
    }

    fn alloc_cost(&self) -> Cycle {
        match self.flavor {
            HardwareFlavor::Tdm => self.cost.tdm_task_alloc,
            HardwareFlavor::TaskSuperscalar => self.cost.tss_task_alloc,
        }
    }
}

impl DependenceEngine for HardwareEngine {
    fn name(&self) -> &'static str {
        match self.flavor {
            HardwareFlavor::Tdm => "tdm",
            HardwareFlavor::TaskSuperscalar => "task-superscalar",
        }
    }

    fn create_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        spec: &TaskSpec,
        ready: &mut Vec<ReadyInfo>,
    ) -> CreationOutcome {
        let desc = self.descriptor(task);
        let latency = self.dmu.access_latency();
        let mut cost = Cycle::ZERO;

        let mut pending = match self.pending.take() {
            Some(p) => {
                assert_eq!(p.task, task, "resumed creation of a different task");
                p
            }
            None => {
                // Descriptor allocation happens in software before the first
                // TDM instruction.
                cost += self.alloc_cost();
                PendingCreation {
                    task,
                    created: false,
                    next_dep: 0,
                }
            }
        };

        if !pending.created {
            match self.dmu.create_task(desc) {
                Ok(r) => {
                    cost += self.charge_instruction(now + cost, r.cost(latency));
                    pending.created = true;
                }
                Err(DmuError::Stall(_)) => {
                    cost += self.charge_stalled_attempt(now + cost);
                    self.stall_cycles += cost;
                    self.pending = Some(pending);
                    return CreationOutcome {
                        cost,
                        completed: false,
                    };
                }
                Err(e) => panic!("unexpected DMU error during create: {e}"),
            }
        }

        if self.per_op {
            while pending.next_dep < spec.deps.len() {
                let dep = &spec.deps[pending.next_dep];
                match self
                    .dmu
                    .add_dependence(desc, DepAddr(dep.addr), dep.size, dep.direction)
                {
                    Ok(r) => {
                        cost += self.charge_instruction(now + cost, r.cost(latency));
                        pending.next_dep += 1;
                    }
                    Err(DmuError::Stall(_)) => {
                        cost += self.charge_stalled_attempt(now + cost);
                        self.stall_cycles += cost;
                        self.pending = Some(pending);
                        // Ready tasks may already be sitting in the queue;
                        // expose them so workers are not starved while the
                        // master waits.
                        self.drain_ready(now + cost, &mut cost, ready);
                        return CreationOutcome {
                            cost,
                            completed: false,
                        };
                    }
                    Err(e) => panic!("unexpected DMU error during add_dependence: {e}"),
                }
            }
        } else if pending.next_dep < spec.deps.len() {
            // Hand the DMU the whole remaining dependence batch: the task ID
            // is resolved through the TAT once, and each applied dependence
            // returns its per-op access counter. Charges replay in op order
            // below; `charge_instruction` depends only on its own
            // (time, processing) sequence, never on DMU table state, so
            // charging after the batch applied is arithmetic-identical to
            // charging between per-op `add_dependence` calls.
            let mut counters = std::mem::take(&mut self.dep_counters);
            counters.clear();
            let remaining = spec.deps[pending.next_dep..]
                .iter()
                .map(|dep| (DepAddr(dep.addr), dep.size, dep.direction));
            let outcome = self.dmu.add_dependences(desc, remaining, &mut counters);
            for counter in &counters {
                cost += self.charge_instruction(now + cost, counter.cost(latency));
            }
            pending.next_dep += counters.len();
            self.dep_counters = counters;
            match outcome {
                Ok(()) => {}
                Err(DmuError::Stall(_)) => {
                    cost += self.charge_stalled_attempt(now + cost);
                    self.stall_cycles += cost;
                    self.pending = Some(pending);
                    // Ready tasks may already be sitting in the queue; expose
                    // them so workers are not starved while the master waits.
                    self.drain_ready(now + cost, &mut cost, ready);
                    return CreationOutcome {
                        cost,
                        completed: false,
                    };
                }
                Err(e) => panic!("unexpected DMU error during add_dependence: {e}"),
            }
        }

        let submit = self
            .dmu
            .submit_task(desc)
            .expect("submit of a created task cannot fail");
        cost += self.charge_instruction(now + cost, submit.cost(latency));

        self.drain_ready(now + cost, &mut cost, ready);
        CreationOutcome {
            cost,
            completed: true,
        }
    }

    fn finish_task(
        &mut self,
        now: Cycle,
        task: TaskRef,
        _core: usize,
        ready: &mut Vec<ReadyInfo>,
    ) -> Cycle {
        let desc = self.descriptor(task);
        let latency = self.dmu.access_latency();
        let mut cost = Cycle::ZERO;
        // The woken list is reported through the ready queue drain below;
        // the reusable buffer only avoids a per-finish allocation.
        let mut woken = std::mem::take(&mut self.woken_buf);
        let result = self
            .dmu
            .finish_task_into(desc, &mut woken)
            .expect("finishing an in-flight task cannot fail");
        self.woken_buf = woken;
        cost += self.charge_instruction(now, result.cost(latency));
        self.release_descriptor(task);
        self.drain_ready(now + cost, &mut cost, ready);
        cost
    }

    /// Batched finish: one virtual call, one woken-buffer take/restore and
    /// one latency lookup for the whole same-cycle batch. Each element is
    /// still charged and drained exactly like a [`Self::finish_task`] call at
    /// `now`, in batch order, so costs, ready order and DMU statistics are
    /// bit-identical to the per-op path.
    fn finish_batch(
        &mut self,
        now: Cycle,
        finishes: &[(TaskRef, usize)],
        costs: &mut Vec<Cycle>,
        ready: &mut Vec<ReadyInfo>,
        spans: &mut Vec<(usize, usize)>,
    ) {
        if self.per_op {
            for &(task, core) in finishes {
                let start = ready.len();
                let cost = self.finish_task(now, task, core, ready);
                costs.push(cost);
                spans.push((start, ready.len()));
            }
            return;
        }
        let latency = self.dmu.access_latency();
        let mut woken = std::mem::take(&mut self.woken_buf);
        for &(task, _core) in finishes {
            let start = ready.len();
            let desc = self.descriptor(task);
            let result = self
                .dmu
                .finish_task_into(desc, &mut woken)
                .expect("finishing an in-flight task cannot fail");
            let mut cost = self.charge_instruction(now, result.cost(latency));
            self.release_descriptor(task);
            self.drain_ready(now + cost, &mut cost, ready);
            costs.push(cost);
            spans.push((start, ready.len()));
        }
        self.woken_buf = woken;
    }

    fn fail_task(&mut self, _now: Cycle, task: TaskRef, _core: usize) -> Cycle {
        // The descriptor stays allocated and the DMU tables keep the task in
        // flight — a failed attempt issues no TDM instructions and touches
        // no SRAM, so Walk/access counters are untouched by construction.
        assert!(
            self.task_slot.contains_key(&task.index()),
            "{task} failed without an allocated descriptor slot"
        );
        Cycle::ZERO
    }

    fn hardware_report(&self) -> Option<HardwareReport> {
        Some(HardwareReport {
            stats: self.dmu.stats(),
            peak: self.dmu.peak_occupancy(),
            dat_average_occupied_sets: self.dmu.dat_average_occupied_sets(),
            stall_cycles: self.stall_cycles,
            instructions: self.instructions,
        })
    }

    // Snapshot support. The DMU serializes itself (tables, list arrays,
    // ready queue, counters); around it go the engine's timing state, the
    // interrupted-creation resume point and the descriptor-slot allocator.
    // The free-slot stack is written verbatim (it is popped LIFO, so its
    // order is observable through TAT set indices); the task→slot map is
    // canonicalized by task index. `woken_buf`/`dep_counters` are
    // per-operation scratch, empty between operations, and are not saved.
    fn save_state(&self, out: &mut Vec<u8>) {
        self.per_op.save(out);
        self.dmu.save(out);
        self.dmu_free_at.save(out);
        self.pending.save(out);
        self.stall_cycles.save(out);
        self.instructions.save(out);
        self.free_slots.save(out);
        self.next_slot.save(out);
        let mut slots: Vec<(usize, u64)> = self.task_slot.iter().map(|(&t, &s)| (t, s)).collect();
        slots.sort_unstable();
        slots.save(out);
        self.slot_owner.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let per_op = bool::load(r)?;
        if per_op != self.per_op {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "snapshot was taken with per_op_dmu={per_op}, \
                     but the engine was built with per_op_dmu={}",
                    self.per_op
                ),
            });
        }
        let dmu = Dmu::load(r)?;
        let dmu_free_at = Cycle::load(r)?;
        let pending = Option::load(r)?;
        let stall_cycles = Cycle::load(r)?;
        let instructions = u64::load(r)?;
        let free_slots: Vec<u64> = Vec::load(r)?;
        let next_slot = u64::load(r)?;
        let slots: Vec<(usize, u64)> = Vec::load(r)?;
        let slot_owner: Vec<usize> = Vec::load(r)?;
        let mut task_slot = FastMap::default();
        for (task, slot) in slots {
            if slot >= next_slot || task_slot.insert(task, slot).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: format!("descriptor slot map entry ({task}, {slot}) is invalid"),
                });
            }
        }
        self.dmu = dmu;
        self.dmu_free_at = dmu_free_at;
        self.pending = pending;
        self.stall_cycles = stall_cycles;
        self.instructions = instructions;
        self.free_slots = free_slots;
        self.next_slot = next_slot;
        self.task_slot = task_slot;
        self.slot_owner = slot_owner;
        Ok(())
    }
}

impl Persist for PendingCreation {
    fn save(&self, out: &mut Vec<u8>) {
        self.task.save(out);
        self.created.save(out);
        self.next_dep.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(PendingCreation {
            task: TaskRef::load(r)?,
            created: bool::load(r)?,
            next_dep: usize::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{DependenceSpec, Workload};
    use crate::tdg::TaskGraph;
    use std::collections::VecDeque;

    fn chain_workload(n: usize) -> Workload {
        Workload::new(
            "chain",
            (0..n)
                .map(|_| {
                    TaskSpec::new(
                        "step",
                        Cycle::new(1000),
                        vec![DependenceSpec::inout(0xA000, 4096)],
                    )
                })
                .collect(),
        )
    }

    fn fork_join_workload() -> Workload {
        let mut tasks = vec![TaskSpec::new(
            "root",
            Cycle::new(1000),
            vec![DependenceSpec::output(0x1000, 4096)],
        )];
        for i in 0..4 {
            tasks.push(TaskSpec::new(
                "leaf",
                Cycle::new(1000),
                vec![
                    DependenceSpec::input(0x1000, 4096),
                    DependenceSpec::output(0x2000 + i * 4096, 4096),
                ],
            ));
        }
        Workload::new("forkjoin", tasks)
    }

    fn run_engine_to_completion(
        engine: &mut dyn DependenceEngine,
        workload: &Workload,
    ) -> Vec<TaskRef> {
        // Create everything (retrying stalls), executing ready tasks
        // immediately in FIFO order; returns the completion order.
        let n = workload.len();
        let mut order = Vec::new();
        let mut pool: VecDeque<ReadyInfo> = VecDeque::new();
        let mut ready = Vec::new();
        let mut next = 0usize;
        let mut now = Cycle::ZERO;
        while order.len() < n {
            if next < n {
                ready.clear();
                let outcome =
                    engine.create_task(now, TaskRef(next), &workload.tasks[next], &mut ready);
                pool.extend(ready.drain(..));
                now += outcome.cost;
                if outcome.completed {
                    next += 1;
                    continue;
                }
                // Stalled: fall through to execute something so resources free up.
            }
            let Some(info) = pool.pop_front() else {
                panic!(
                    "no ready task but {} of {} still unfinished",
                    n - order.len(),
                    n
                );
            };
            ready.clear();
            now += engine.finish_task(now, info.task, 0, &mut ready);
            pool.extend(ready.drain(..));
            order.push(info.task);
        }
        order
    }

    /// Creates all tasks of `workload` on `engine` at time zero, collecting
    /// the tasks reported ready.
    fn create_all(engine: &mut dyn DependenceEngine, workload: &Workload) -> Vec<ReadyInfo> {
        let mut ready = Vec::new();
        for (task, spec) in workload.iter() {
            engine.create_task(Cycle::ZERO, task, spec, &mut ready);
        }
        ready
    }

    #[test]
    fn software_engine_matches_graph_for_chain() {
        let w = chain_workload(10);
        let mut e = SoftwareEngine::new(CostModel::default());
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut e, &w);
        assert!(graph.check_order(&order).is_ok());
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn hardware_engine_matches_graph_for_chain() {
        let w = chain_workload(10);
        let mut e = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut e, &w);
        assert!(graph.check_order(&order).is_ok());
    }

    #[test]
    fn engines_agree_on_fork_join_readiness() {
        let w = fork_join_workload();
        let mut sw = SoftwareEngine::new(CostModel::default());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let sw_ready = create_all(&mut sw, &w);
        let hw_ready = create_all(&mut hw, &w);
        // Only the root is ready on both.
        assert_eq!(sw_ready.len(), 1);
        assert_eq!(hw_ready.len(), 1);
        assert_eq!(sw_ready[0].task, TaskRef(0));
        assert_eq!(hw_ready[0].task, TaskRef(0));
        // Finishing the root readies all four leaves on both.
        let mut sw_fin = Vec::new();
        let mut hw_fin = Vec::new();
        sw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut sw_fin);
        hw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut hw_fin);
        let mut sw_tasks: Vec<usize> = sw_fin.iter().map(|r| r.task.index()).collect();
        let mut hw_tasks: Vec<usize> = hw_fin.iter().map(|r| r.task.index()).collect();
        sw_tasks.sort_unstable();
        hw_tasks.sort_unstable();
        assert_eq!(sw_tasks, vec![1, 2, 3, 4]);
        assert_eq!(hw_tasks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn successor_counts_reflect_registrations_so_far() {
        // Both engines report the successor count registered *at hand-off*:
        // a task ready at creation has no successors yet (none of them exist),
        // and a leaf readied by the root's finish has zero (nothing depends
        // on it) — identical semantics in software and hardware.
        let w = fork_join_workload();
        let mut sw = SoftwareEngine::new(CostModel::default());
        let sw_ready = create_all(&mut sw, &w);
        assert_eq!(sw_ready[0].num_successors, 0);
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        create_all(&mut hw, &w);
        let mut sw_fin = Vec::new();
        let mut hw_fin = Vec::new();
        sw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut sw_fin);
        hw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut hw_fin);
        assert!(sw_fin.iter().all(|r| r.num_successors == 0));
        assert!(hw_fin.iter().all(|r| r.num_successors == 0));
    }

    #[test]
    fn software_successor_counts_grow_with_registrations() {
        // A producer finished after consumers were created reports the edges
        // registered by then: consumer 1 becomes ready carrying the count of
        // successors *it* accumulated so far (zero), while a chain head that
        // readies its tail sees the tail's registered successor.
        let w = chain_workload(3);
        let mut sw = SoftwareEngine::new(CostModel::default());
        create_all(&mut sw, &w);
        let mut fin = Vec::new();
        sw.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut fin);
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].task, TaskRef(1));
        // Task 1's successor (task 2) was registered during creation.
        assert_eq!(fin[0].num_successors, 1);
    }

    #[test]
    fn software_creation_cost_scales_with_dependences() {
        let w = fork_join_workload();
        let mut e = SoftwareEngine::new(CostModel::default());
        let mut ready = Vec::new();
        let root_cost = e
            .create_task(Cycle::ZERO, TaskRef(0), &w.tasks[0], &mut ready)
            .cost;
        let leaf_cost = e
            .create_task(Cycle::ZERO, TaskRef(1), &w.tasks[1], &mut ready)
            .cost;
        assert!(
            leaf_cost > root_cost,
            "2-dep leaf should cost more than 1-dep root"
        );
    }

    #[test]
    fn software_finish_cost_scales_with_registered_successors() {
        let w = fork_join_workload();
        let mut root_only = SoftwareEngine::new(CostModel::default());
        let mut ready = Vec::new();
        root_only.create_task(Cycle::ZERO, TaskRef(0), &w.tasks[0], &mut ready);
        let bare = root_only.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut ready);

        let mut full = SoftwareEngine::new(CostModel::default());
        create_all(&mut full, &w);
        ready.clear();
        let loaded = full.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut ready);
        assert!(
            loaded > bare,
            "waking 4 registered successors ({loaded}) must cost more than waking none ({bare})"
        );
    }

    #[test]
    fn software_edge_work_matches_reference_graph() {
        // The incremental matcher must charge exactly the creation edge work
        // the whole-program reference graph reports, per task.
        let mut tasks = vec![TaskSpec::new(
            "w",
            Cycle::new(100),
            vec![DependenceSpec::output(0x1, 64)],
        )];
        for _ in 0..5 {
            tasks.push(TaskSpec::new(
                "r",
                Cycle::new(100),
                vec![DependenceSpec::input(0x1, 64)],
            ));
        }
        tasks.push(TaskSpec::new(
            "w2",
            Cycle::new(100),
            vec![DependenceSpec::output(0x1, 64)],
        ));
        let w = Workload::new("readers", tasks);
        let graph = TaskGraph::build(&w);
        let cost = CostModel::default();
        let mut e = SoftwareEngine::new(cost.clone());
        let mut ready = Vec::new();
        for (task, spec) in w.iter() {
            let got = e.create_task(Cycle::ZERO, task, spec, &mut ready).cost;
            let want = cost.sw_creation_cost(spec.deps.len(), graph.creation_edge_work(task));
            assert_eq!(got, want, "{task}");
        }
    }

    #[test]
    fn hardware_creation_is_much_cheaper_than_software() {
        let w = chain_workload(20);
        let cost = CostModel::default();
        let mut sw = SoftwareEngine::new(cost.clone());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            cost,
            Cycle::new(16),
        );
        let mut ready = Vec::new();
        let sw_cost = sw
            .create_task(Cycle::ZERO, TaskRef(0), &w.tasks[0], &mut ready)
            .cost;
        let hw_cost = hw
            .create_task(Cycle::ZERO, TaskRef(0), &w.tasks[0], &mut ready)
            .cost;
        assert!(
            hw_cost.raw() * 2 < sw_cost.raw(),
            "TDM creation ({hw_cost}) should be far cheaper than software ({sw_cost})"
        );
    }

    #[test]
    fn hardware_engine_stalls_and_recovers_with_tiny_dmu() {
        let w = chain_workload(40);
        let config = DmuConfig {
            tat_entries: 8,
            tat_ways: 8,
            dat_entries: 8,
            dat_ways: 8,
            successor_la_entries: 8,
            dependence_la_entries: 8,
            reader_la_entries: 8,
            ..DmuConfig::default()
        };
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            config,
            CostModel::default(),
            Cycle::new(16),
        );
        let graph = TaskGraph::build(&w);
        let order = run_engine_to_completion(&mut hw, &w);
        assert!(graph.check_order(&order).is_ok());
        let report = hw.hardware_report().unwrap();
        assert!(report.stats.stalls > 0, "the tiny DMU must stall");
        assert!(report.stall_cycles > Cycle::ZERO);
    }

    #[test]
    fn dmu_serialization_adds_queueing_delay() {
        let w = chain_workload(4);
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default().with_access_latency(Cycle::new(16)),
            CostModel::default(),
            Cycle::new(16),
        );
        // Two creations issued at the same instant: the second waits for the
        // DMU to finish processing the first.
        let mut ready = Vec::new();
        let c0 = hw
            .create_task(Cycle::ZERO, TaskRef(0), &w.tasks[0], &mut ready)
            .cost;
        let c1 = hw
            .create_task(Cycle::ZERO, TaskRef(1), &w.tasks[1], &mut ready)
            .cost;
        assert!(
            c1 >= c0,
            "second creation at the same time must queue behind the first"
        );
    }

    #[test]
    fn engine_memory_is_bounded_by_in_flight_tasks() {
        // Run a long chain through both engines one task at a time; neither
        // may accumulate per-task state for finished tasks.
        let n = 200;
        let w = chain_workload(n);
        let mut sw = SoftwareEngine::new(CostModel::default());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let mut ready = Vec::new();
        for (task, spec) in w.iter() {
            ready.clear();
            sw.create_task(Cycle::ZERO, task, spec, &mut ready);
            hw.create_task(Cycle::ZERO, task, spec, &mut ready);
            ready.clear();
            sw.finish_task(Cycle::ZERO, task, 0, &mut ready);
            hw.finish_task(Cycle::ZERO, task, 0, &mut ready);
            assert!(sw.live.len() <= 1, "software live set leaked");
            assert!(hw.task_slot.len() <= 1, "descriptor slots leaked");
        }
        // Recycled descriptor slots: the allocator never grew past the peak
        // in-flight count.
        assert!(hw.next_slot <= 2, "slots not recycled: {}", hw.next_slot);
    }

    #[test]
    fn software_engine_snapshot_round_trips_mid_run() {
        let w = fork_join_workload();
        let mut original = SoftwareEngine::new(CostModel::default());
        let mut ready = Vec::new();
        for (task, spec) in w.iter().take(3) {
            original.create_task(Cycle::ZERO, task, spec, &mut ready);
        }
        ready.clear();
        original.finish_task(Cycle::ZERO, TaskRef(0), 0, &mut ready);

        let mut bytes = Vec::new();
        original.save_state(&mut bytes);
        let mut restored = SoftwareEngine::new(CostModel::default());
        let mut reader = Reader::new(&bytes);
        restored.load_state(&mut reader).unwrap();
        reader.expect_end("software engine").unwrap();

        // Identical behaviour from the restore point on.
        for engine in [&mut original, &mut restored] {
            ready.clear();
            for (task, spec) in w.iter().skip(3) {
                engine.create_task(Cycle::ZERO, task, spec, &mut ready);
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ca = original.finish_task(Cycle::ZERO, TaskRef(1), 0, &mut a);
        let cb = restored.finish_task(Cycle::ZERO, TaskRef(1), 0, &mut b);
        assert_eq!(ca, cb);
        assert_eq!(a, b);
    }

    #[test]
    fn hardware_engine_snapshot_round_trips_mid_stall() {
        // A tiny DMU so creation stalls mid-task: the snapshot must carry the
        // interrupted-creation resume point and the DMU timing state.
        let w = chain_workload(40);
        let config = DmuConfig {
            tat_entries: 8,
            tat_ways: 8,
            dat_entries: 8,
            dat_ways: 8,
            successor_la_entries: 8,
            dependence_la_entries: 8,
            reader_la_entries: 8,
            ..DmuConfig::default()
        };
        let build = || {
            HardwareEngine::new(
                HardwareFlavor::Tdm,
                config.clone(),
                CostModel::default(),
                Cycle::new(16),
            )
        };
        let mut original = build();
        let mut pool: VecDeque<ReadyInfo> = VecDeque::new();
        let mut ready = Vec::new();
        let mut now = Cycle::ZERO;
        let mut next = 0usize;
        // Create until the first stall so `pending` is Some.
        loop {
            ready.clear();
            let outcome = original.create_task(now, TaskRef(next), &w.tasks[next], &mut ready);
            pool.extend(ready.drain(..));
            now += outcome.cost;
            if !outcome.completed {
                break;
            }
            next += 1;
        }
        assert!(original.pending.is_some(), "creation must have stalled");

        let mut bytes = Vec::new();
        original.save_state(&mut bytes);
        let mut restored = build();
        let mut reader = Reader::new(&bytes);
        restored.load_state(&mut reader).unwrap();
        reader.expect_end("hardware engine").unwrap();
        assert_eq!(original.pending, restored.pending);
        assert_eq!(original.dmu_free_at, restored.dmu_free_at);

        // Drive both to completion identically.
        let graph = TaskGraph::build(&w);
        for engine in [&mut original, &mut restored] {
            let mut pool = pool.clone();
            let mut order: Vec<TaskRef> = Vec::new();
            let mut next = next;
            let mut now = now;
            while order.len() < w.len() {
                if next < w.len() {
                    ready.clear();
                    let outcome =
                        engine.create_task(now, TaskRef(next), &w.tasks[next], &mut ready);
                    pool.extend(ready.drain(..));
                    now += outcome.cost;
                    if outcome.completed {
                        next += 1;
                        continue;
                    }
                }
                let info = pool.pop_front().expect("a ready task must exist");
                ready.clear();
                now += engine.finish_task(now, info.task, 0, &mut ready);
                pool.extend(ready.drain(..));
                order.push(info.task);
            }
            assert!(graph.check_order(&order).is_ok());
        }
        assert_eq!(
            original.hardware_report().unwrap(),
            restored.hardware_report().unwrap()
        );
    }

    #[test]
    fn hardware_load_rejects_mismatched_per_op_mode() {
        let e = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let mut bytes = Vec::new();
        e.save_state(&mut bytes);
        let mut wrong = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        )
        .with_per_op_dmu();
        let err = wrong.load_state(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("per_op"), "got: {err}");
    }

    #[test]
    fn flavor_names_differ() {
        let tdm = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let tss = HardwareEngine::new(
            HardwareFlavor::TaskSuperscalar,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        assert_eq!(tdm.name(), "tdm");
        assert_eq!(tss.name(), "task-superscalar");
        assert_eq!(SoftwareEngine::new(CostModel::default()).name(), "software");
        assert_eq!(
            SoftwareEngine::with_name("carbon", CostModel::default()).name(),
            "carbon"
        );
    }
}
