//! Discrete-event execution driver.
//!
//! [`simulate`] runs a complete parallel region of a [`Workload`] on the
//! simulated chip: the master core creates tasks in program order (paying
//! dependence-management costs through the selected backend), worker cores
//! repeatedly schedule, execute and finish tasks, and every core's time is
//! attributed to the DEPS / SCHED / EXEC / IDLE phases of Figure 2. The
//! result is a [`RunReport`] from which every figure and table of the paper's
//! evaluation can be derived.
//!
//! # Streaming execution
//!
//! [`simulate_stream`] drives the same loop from a pull-based
//! [`TaskSource`] instead of a materialised task list: the master fetches
//! each task's spec only when it is about to create it, and the driver keeps
//! a spec alive only while its task is in flight. Combined with the
//! **windowed master** ([`ExecConfig::window`]) — the master creates tasks
//! only while the in-flight count is below the window, otherwise it behaves
//! like a throttled runtime system and executes tasks itself — this bounds
//! peak resident [`TaskSpec`]s by the window regardless of how many tasks
//! the stream produces, which is what makes million-task runs feasible.
//! With the default unbounded window the two paths are interchangeable:
//! driving the same workload through either produces bit-identical reports
//! (the eager-vs-streaming conformance suite pins this).
//!
//! ```
//! use tdm_runtime::exec::{simulate, simulate_stream, Backend, ExecConfig};
//! use tdm_runtime::scheduler::SchedulerKind;
//! use tdm_runtime::stream::WorkloadSource;
//! use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};
//! use tdm_sim::clock::Cycle;
//!
//! let workload = Workload::new(
//!     "pair",
//!     vec![
//!         TaskSpec::new("a", Cycle::new(100_000), vec![DependenceSpec::output(0xA000, 64)]),
//!         TaskSpec::new("b", Cycle::new(100_000), vec![DependenceSpec::input(0xA000, 64)]),
//!     ],
//! );
//! let config = ExecConfig::default().with_window(4);
//! let eager = simulate(&workload, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
//! let mut source = WorkloadSource::new(&workload);
//! let streamed = simulate_stream(&mut source, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
//! assert_eq!(eager.makespan(), streamed.makespan());
//! // The streaming run held at most window+1 specs at once.
//! assert!(streamed.peak_resident_tasks <= 5);
//! ```
//!
//! [`TaskSpec`]: crate::task::TaskSpec

use serde::Serialize;
use tdm_core::config::DmuConfig;
use tdm_sim::cache::LocalityModel;
use tdm_sim::clock::Cycle;
use tdm_sim::config::ChipConfig;
use tdm_sim::event::EventQueue;
use tdm_sim::noc::NocModel;
use tdm_sim::rng::SplitMix64;
use tdm_sim::snapshot::{self, section, Persist, Reader, Snapshot, SnapshotError};
use tdm_sim::stats::{Phase, SimStats};

use crate::cost::CostModel;
use crate::engine::{
    DependenceEngine, HardwareEngine, HardwareFlavor, HardwareReport, ReadyInfo, SoftwareEngine,
};
use crate::fast_map::FastMap;
use crate::fault::{FaultConfig, FaultPlan, FaultState};
use crate::scheduler::{FifoScheduler, ReadyEntry, Scheduler, SchedulerKind};
use crate::stream::TaskSource;
use crate::task::{TaskRef, TaskSpec, Workload};

/// The runtime-system organisations compared in the paper (Sections II and
/// VI-C).
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Pure software runtime: dependence tracking and scheduling in software.
    Software,
    /// TDM: the DMU tracks dependences, scheduling stays in software.
    Tdm(DmuConfig),
    /// Carbon: hardware ready queues (fixed FIFO), dependence tracking in
    /// software.
    Carbon,
    /// Task Superscalar: dependence tracking and scheduling both in hardware
    /// (fixed FIFO).
    TaskSuperscalar(DmuConfig),
}

impl Backend {
    /// Display name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Software => "Software",
            Backend::Tdm(_) => "TDM",
            Backend::Carbon => "Carbon",
            Backend::TaskSuperscalar(_) => "TaskSuperscalar",
        }
    }

    /// True if the ready queue lives in hardware, which fixes the scheduling
    /// policy to FIFO and makes queue operations cheap.
    pub fn hardware_scheduling(&self) -> bool {
        matches!(self, Backend::Carbon | Backend::TaskSuperscalar(_))
    }

    /// Convenience constructor: TDM with the paper's selected DMU
    /// configuration.
    pub fn tdm_default() -> Backend {
        Backend::Tdm(DmuConfig::default())
    }

    /// Convenience constructor: Task Superscalar with tables sized like the
    /// default DMU (the paper compares both at 2048 in-flight entries).
    pub fn task_superscalar_default() -> Backend {
        Backend::TaskSuperscalar(DmuConfig::default())
    }

    fn build_engine(
        &self,
        cost: &CostModel,
        noc_round_trip: Cycle,
        per_op_dmu: bool,
    ) -> Box<dyn DependenceEngine> {
        let hardware = |flavor| {
            let engine =
                HardwareEngine::new(flavor, self.dmu_config(), cost.clone(), noc_round_trip);
            if per_op_dmu {
                engine.with_per_op_dmu()
            } else {
                engine
            }
        };
        match self {
            Backend::Software => Box::new(SoftwareEngine::new(cost.clone())),
            Backend::Carbon => Box::new(SoftwareEngine::with_name("carbon", cost.clone())),
            Backend::Tdm(_) => Box::new(hardware(HardwareFlavor::Tdm)),
            Backend::TaskSuperscalar(_) => Box::new(hardware(HardwareFlavor::TaskSuperscalar)),
        }
    }

    fn dmu_config(&self) -> DmuConfig {
        match self {
            Backend::Tdm(dmu) | Backend::TaskSuperscalar(dmu) => dmu.clone(),
            _ => DmuConfig::default(),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of an execution-driver run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Simulated chip (Table I).
    pub chip: ChipConfig,
    /// Runtime-system cost model.
    pub cost: CostModel,
    /// Seed for duration jitter (deterministic per seed).
    pub seed: u64,
    /// Per-core cache capacity used by the locality model, in bytes. The
    /// default corresponds to a core's share of the L1 plus the shared L2
    /// (4 MB / 32 cores + 32 KB).
    pub locality_capacity_bytes: u64,
    /// Record the full executed schedule in [`RunReport::schedule`].
    /// Off by default: the trace costs O(tasks) memory, which large
    /// workloads should not pay. The conformance tests opt in explicitly to
    /// replay schedules against the reference graph. Tracing never affects
    /// modeled time — makespan and phase breakdowns are bit-identical either
    /// way.
    pub trace_schedule: bool,
    /// Master-thread creation window: the master creates a new task only
    /// while fewer than `window` created tasks are unfinished; at the limit
    /// it behaves like a throttled runtime system (executes tasks, retries
    /// after finishes). This models the paper's master/DMU backpressure and
    /// bounds the specs a streaming run keeps resident. The default
    /// (`usize::MAX`) never throttles, matching the classic eager driver.
    ///
    /// A window of 0 would deadlock the master before it created anything,
    /// so **0 is documented to behave exactly like 1** (one task in flight
    /// at a time): [`with_window`](ExecConfig::with_window) clamps eagerly,
    /// and the driver applies the same clamp to a directly assigned field.
    pub window: usize,
    /// Route hardware-DMU work through the one-operation-at-a-time entry
    /// points instead of the batched ones. The batched path is contractually
    /// bit-identical — same modeled accesses, costs and reports — so this
    /// knob exists only so the conformance suite can pin that contract by
    /// running both and comparing. Off (batched) by default.
    pub per_op_dmu: bool,
    /// Capture a checkpoint [`Snapshot`] every this many cycles of simulated
    /// time, when running through [`simulate_checkpointed`] /
    /// [`simulate_stream_checkpointed`]. `None` (the default) disables
    /// periodic capture; the plain [`simulate`] / [`simulate_stream`] entry
    /// points ignore the knob entirely. Deliberately **not** part of the
    /// resume-compatibility fingerprint: a resumed run may checkpoint on a
    /// different cadence (or not at all) — capture never affects modeled
    /// time, so the reports stay bit-identical either way (see
    /// `SNAPSHOT_FORMAT.md`).
    pub checkpoint_every: Option<Cycle>,
    /// Deterministic fault injection ([`crate::fault`]): seeded transient
    /// task failures with bounded retry, plus sticky core faults that retire
    /// a core mid-run. `None` (the default) disables injection entirely;
    /// a configuration with both rates at zero is bit-identical to `None`
    /// (fault draws are pure per-decision functions, so a rate of zero
    /// perturbs nothing). Part of the resume-compatibility fingerprint —
    /// the fault schedule is part of the run's semantics.
    pub fault: Option<FaultConfig>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let chip = ChipConfig::default();
        let locality =
            chip.memory.l1_size_bytes + chip.memory.l2_size_bytes / chip.num_cores as u64;
        ExecConfig {
            chip,
            cost: CostModel::default(),
            seed: 42,
            locality_capacity_bytes: locality,
            trace_schedule: false,
            window: usize::MAX,
            per_op_dmu: false,
            checkpoint_every: None,
            fault: None,
        }
    }
}

impl ExecConfig {
    /// Same configuration with a different core count.
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        self.chip = ChipConfig::with_cores(num_cores);
        self
    }

    /// Same configuration with schedule tracing switched on.
    pub fn with_trace_schedule(mut self) -> Self {
        self.trace_schedule = true;
        self
    }

    /// Same configuration with the master creation window set to `window`
    /// in-flight tasks.
    ///
    /// A window of 0 is clamped to 1 — the master must be allowed at least
    /// one in-flight task or it could never create anything. The driver
    /// applies the same clamp at run time, so assigning
    /// [`window`](ExecConfig::window) directly behaves identically.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Same configuration with the per-operation DMU path selected (see
    /// [`per_op_dmu`](ExecConfig::per_op_dmu)).
    pub fn with_per_op_dmu(mut self) -> Self {
        self.per_op_dmu = true;
        self
    }

    /// Same configuration with periodic checkpointing every `every` cycles
    /// (see [`checkpoint_every`](ExecConfig::checkpoint_every)). Only the
    /// `*_checkpointed` entry points act on it.
    pub fn with_checkpoint_every(mut self, every: Cycle) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Same configuration with deterministic fault injection enabled (see
    /// [`fault`](ExecConfig::fault)).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// The set of currently idle cores: O(1) insert/remove via a per-core
/// bitmap, with the lowest-numbered idle core woken first — the same wake
/// order the `BTreeSet` it replaces produced, so runs stay bit-identical.
#[derive(Debug)]
struct IdleSet {
    words: Vec<u64>,
}

impl IdleSet {
    fn new(num_cores: usize) -> Self {
        IdleSet {
            words: vec![0; num_cores.div_ceil(64)],
        }
    }

    fn insert(&mut self, core: usize) {
        self.words[core >> 6] |= 1 << (core & 63);
    }

    /// Removes `core`, returning whether it was present.
    fn remove(&mut self, core: usize) -> bool {
        let word = &mut self.words[core >> 6];
        let bit = 1u64 << (core & 63);
        let was_idle = *word & bit != 0;
        *word &= !bit;
        was_idle
    }

    /// Removes and returns the lowest-numbered idle core.
    fn pop_min(&mut self) -> Option<usize> {
        for (i, word) in self.words.iter_mut().enumerate() {
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1; // clear the lowest set bit
                return Some((i << 6) | bit);
            }
        }
        None
    }
}

/// One completed task in the executed schedule: which task ran, on which
/// core, and the cycle at which its finish was processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScheduledTask {
    /// The task that finished.
    pub task: TaskRef,
    /// The core it executed on.
    pub core: usize,
    /// Cycle at which the finish completed (dependence-release cost
    /// included).
    pub finish: Cycle,
}

/// The outcome of one simulated execution.
///
/// Two reports compare equal only if every modeled quantity — stats, phase
/// breakdowns, hardware counters, task counts, residency peak and (when
/// traced) the executed schedule — is bit-identical; the sweep determinism
/// suite relies on this.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Backend name.
    pub backend: String,
    /// Scheduling policy actually applied (hardware backends force FIFO).
    pub scheduler: String,
    /// Per-core phase breakdowns, makespan and counters.
    pub stats: SimStats,
    /// Hardware dependence-tracker report, when the backend has one.
    #[serde(skip)]
    pub hardware: Option<HardwareReport>,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Peak number of [`TaskSpec`]s the driver held
    /// resident at once. For an eager [`simulate`] run this is the whole
    /// workload (the caller materialised it); for a [`simulate_stream`] run
    /// it is bounded by [`ExecConfig::window`] plus one prefetched spec —
    /// the number `bench_scale` reports to show million-task runs stay in
    /// bounded memory.
    pub peak_resident_tasks: usize,
    /// Transient task failures injected by the fault plan
    /// ([`ExecConfig::fault`]); 0 when fault injection is off.
    pub faults_injected: u64,
    /// Failed tasks re-issued to the ready pool after their modeled
    /// backoff; 0 when fault injection is off.
    pub retries: u64,
    /// Cores retired by sticky faults during the run; 0 when fault
    /// injection is off.
    pub retired_cores: u64,
    /// The executed schedule, in finish order — **empty unless
    /// [`ExecConfig::trace_schedule`] is set**, because the trace costs
    /// O(tasks) memory. Conformance tests opt in and replay this against the
    /// reference [`TaskGraph`](crate::tdg::TaskGraph) to check that the run
    /// respected every dependence and executed each task exactly once.
    pub schedule: Vec<ScheduledTask>,
}

impl RunReport {
    /// Total execution time of the parallel region.
    pub fn makespan(&self) -> Cycle {
        self.stats.makespan
    }

    /// Speedup of this run over `baseline` (ratio of makespans).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        self.stats.speedup_over(&baseline.stats)
    }

    /// Fraction of the master core's time spent in dependence management
    /// (task creation + finalization) — the per-benchmark bars of Figure 10.
    pub fn master_deps_fraction(&self) -> f64 {
        self.stats.master_breakdown().fraction(Phase::Deps)
    }

    /// Fraction of total CPU time (all cores) spent in `phase`.
    pub fn chip_fraction(&self, phase: Phase) -> f64 {
        self.stats.chip_fraction(phase)
    }

    /// The tasks in the order they finished, extracted from the schedule.
    pub fn finish_order(&self) -> Vec<TaskRef> {
        self.schedule.iter().map(|s| s.task).collect()
    }
}

/// The typed result of a run under fault injection: either the run
/// completed (every created task eventually finished) or a task exhausted
/// its retry budget and the run aborted cleanly.
///
/// An aborted run is a *result*, not a panic: the report carries every
/// phase breakdown and counter accumulated up to the abort point, with the
/// makespan covering the work done so far — a production runtime would
/// surface exactly this to its caller. Runs without fault injection can
/// never abort, which is why the classic entry points ([`simulate`] and
/// friends) keep returning a bare [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Every created task finished; the report is final.
    Completed(RunReport),
    /// `task` failed `attempts` times, exceeding
    /// [`FaultConfig::retry_budget`]; the run stopped at the cycle the
    /// budget was exhausted.
    Aborted {
        /// The task whose retry budget ran out.
        task: TaskRef,
        /// Total failed attempts of that task (budget + 1).
        attempts: u32,
        /// Statistics accumulated up to the abort point.
        report: RunReport,
    },
}

impl RunOutcome {
    /// The run's report, whether it completed or aborted.
    pub fn report(&self) -> &RunReport {
        match self {
            RunOutcome::Completed(report) | RunOutcome::Aborted { report, .. } => report,
        }
    }

    /// Consumes the outcome, returning the report.
    pub fn into_report(self) -> RunReport {
        match self {
            RunOutcome::Completed(report) | RunOutcome::Aborted { report, .. } => report,
        }
    }

    /// True if the run aborted on an exhausted retry budget.
    pub fn is_aborted(&self) -> bool {
        matches!(self, RunOutcome::Aborted { .. })
    }
}

/// Unwraps a completed outcome for the classic entry points, which predate
/// fault injection and cannot observe an abort (aborts require
/// [`ExecConfig::fault`], whose users call the `*_outcome` variants).
fn completed_or_panic(outcome: RunOutcome) -> RunReport {
    match outcome {
        RunOutcome::Completed(report) => report,
        RunOutcome::Aborted { task, attempts, .. } => panic!(
            "run aborted: {task} exhausted its retry budget after {attempts} failed attempts — \
             call the *_outcome entry point to receive RunOutcome::Aborted instead"
        ),
    }
}

// ---------------------------------------------------------------------------
// Task feeds: where the driver gets its specs from
// ---------------------------------------------------------------------------

/// Driver-internal abstraction over "where task specs come from and how long
/// they stay resident". The eager feed borrows a materialised [`Workload`];
/// the stream feed pulls from a [`TaskSource`] and retains only in-flight
/// specs. Keeping the driver generic (monomorphised per feed) means the
/// eager path pays no indirection or cloning for the refactor.
trait TaskFeed {
    fn name(&self) -> &str;
    fn locality_benefit(&self) -> f64;
    fn duration_jitter(&self) -> f64;
    /// Tasks the source may still produce, if known (reporting only).
    fn len_hint(&self) -> Option<usize>;
    /// True once no task with index ≥ `next_create` will ever be available.
    fn exhausted(&self, next_create: usize) -> bool;
    /// Spec of the task about to be created. Called with consecutive indices
    /// (repeats allowed, for stalled-creation retries); must not be called
    /// when [`exhausted`](TaskFeed::exhausted) is true.
    fn fetch(&mut self, index: usize) -> &TaskSpec;
    /// Spec of an in-flight (fetched, unfinished) task.
    fn spec(&self, task: TaskRef) -> &TaskSpec;
    /// Drops the spec of a finished task.
    fn release(&mut self, task: TaskRef);
    /// Specs currently held resident.
    fn resident(&self) -> usize;
    /// Serialises the feed's restorable state for the FEED snapshot section
    /// (first byte is the feed-kind tag), or `None` if the underlying source
    /// cannot be checkpointed (it reports no
    /// [`TaskSource::checkpoint_cursor`]).
    fn save_state(&self) -> Option<Vec<u8>>;
}

/// FEED-section tag: the run was driven by an eager, materialised workload.
const FEED_EAGER: u8 = 0;
/// FEED-section tag: the run was driven by a pull-based streaming source.
const FEED_STREAM: u8 = 1;

/// Feed over a fully materialised workload: specs are borrowed in place and
/// stay resident for the whole run.
struct EagerFeed<'a> {
    workload: &'a Workload,
}

impl TaskFeed for EagerFeed<'_> {
    fn name(&self) -> &str {
        &self.workload.name
    }

    fn locality_benefit(&self) -> f64 {
        self.workload.locality_benefit
    }

    fn duration_jitter(&self) -> f64 {
        self.workload.duration_jitter
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.workload.len())
    }

    fn exhausted(&self, next_create: usize) -> bool {
        next_create >= self.workload.len()
    }

    fn fetch(&mut self, index: usize) -> &TaskSpec {
        &self.workload.tasks[index]
    }

    fn spec(&self, task: TaskRef) -> &TaskSpec {
        self.workload.spec(task)
    }

    fn release(&mut self, _task: TaskRef) {}

    fn resident(&self) -> usize {
        self.workload.len()
    }

    // The workload is the caller's: a checkpoint only needs to record that
    // this was an eager run (resume borrows the same workload again).
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(vec![FEED_EAGER])
    }
}

/// Feed over a pull-based source: holds the specs of in-flight tasks plus
/// one prefetched spec (the prefetch is what lets the driver know *before*
/// attempting a creation whether the stream has ended, so its wake-up and
/// scheduling decisions match the eager driver exactly).
struct StreamFeed<'a, S: TaskSource + ?Sized> {
    source: &'a mut S,
    /// Specs of fetched-but-unfinished tasks, keyed by task index.
    in_flight: FastMap<usize, TaskSpec>,
    /// The next spec the source produced, not yet fetched by the driver.
    peeked: Option<TaskSpec>,
    /// Index the peeked spec corresponds to.
    next_index: usize,
}

impl<'a, S: TaskSource + ?Sized> StreamFeed<'a, S> {
    fn new(source: &'a mut S) -> Self {
        let peeked = source.next_task();
        StreamFeed {
            source,
            in_flight: FastMap::default(),
            peeked,
            next_index: 0,
        }
    }

    /// Rebuilds a feed from a snapshot's FEED section: fast-forwards a
    /// *fresh* source to the stored cursor, re-pulls the prefetched spec if
    /// one was pending, and reinstates the in-flight window. Deliberately
    /// not [`new`](StreamFeed::new) — that constructor eagerly pulls the
    /// first task, which would desynchronise the cursor.
    fn restore(source: &'a mut S, payload: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(payload);
        let tag = u8::load(&mut r)?;
        if tag != FEED_STREAM {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "FEED section carries feed-kind tag {tag}, not a streaming run — \
                     resume this snapshot with `resume`, not `resume_stream`"
                ),
            });
        }
        let next_index = usize::load(&mut r)?;
        let had_peek = bool::load(&mut r)?;
        let pairs = Vec::<(usize, TaskSpec)>::load(&mut r)?;
        r.expect_end("FEED")?;

        if let Some(produced) = source.checkpoint_cursor() {
            if produced != 0 {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "resume requires a freshly built source, but this one has \
                         already produced {produced} tasks"
                    ),
                });
            }
        }
        source.resume_at(next_index as u64);
        let peeked = if had_peek {
            let spec = source.next_task().ok_or_else(|| SnapshotError::Corrupt {
                context: format!(
                    "stream ended at task {next_index}, before the position the \
                     snapshot was taken at — the resuming source is shorter than \
                     the one that was checkpointed"
                ),
            })?;
            Some(spec)
        } else {
            None
        };
        let mut in_flight = FastMap::default();
        for (index, spec) in pairs {
            if index >= next_index {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "FEED lists task {index} as in flight, at or past the \
                         stream cursor {next_index}"
                    ),
                });
            }
            if in_flight.insert(index, spec).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: format!("FEED lists task {index} in flight twice"),
                });
            }
        }
        Ok(StreamFeed {
            source,
            in_flight,
            peeked,
            next_index,
        })
    }
}

impl<S: TaskSource + ?Sized> TaskFeed for StreamFeed<'_, S> {
    fn name(&self) -> &str {
        self.source.name()
    }

    fn locality_benefit(&self) -> f64 {
        self.source.locality_benefit()
    }

    fn duration_jitter(&self) -> f64 {
        self.source.duration_jitter()
    }

    fn len_hint(&self) -> Option<usize> {
        self.source
            .len_hint()
            .map(|left| left + self.in_flight.len() + usize::from(self.peeked.is_some()))
    }

    fn exhausted(&self, next_create: usize) -> bool {
        // A stalled creation keeps its spec in `in_flight` without advancing
        // `next_create`, so the retry finds it there.
        self.peeked.is_none() && !self.in_flight.contains_key(&next_create)
    }

    fn fetch(&mut self, index: usize) -> &TaskSpec {
        if !self.in_flight.contains_key(&index) {
            assert_eq!(index, self.next_index, "stream fetched out of order");
            let spec = self.peeked.take().expect("fetch past end of task stream");
            self.in_flight.insert(index, spec);
            self.next_index += 1;
            self.peeked = self.source.next_task();
        }
        &self.in_flight[&index]
    }

    fn spec(&self, task: TaskRef) -> &TaskSpec {
        self.in_flight
            .get(&task.index())
            .expect("spec of a task that is not in flight")
    }

    fn release(&mut self, task: TaskRef) {
        self.in_flight.remove(&task.index());
    }

    fn resident(&self) -> usize {
        self.in_flight.len() + usize::from(self.peeked.is_some())
    }

    // A streaming checkpoint stores the production cursor plus the bounded
    // in-flight window — never the unproduced remainder of the stream, so
    // snapshots stay O(window) however many tasks are still to come.
    fn save_state(&self) -> Option<Vec<u8>> {
        let cursor = self.source.checkpoint_cursor()?;
        debug_assert_eq!(
            cursor,
            self.next_index as u64 + u64::from(self.peeked.is_some()),
            "source cursor disagrees with the feed's production count"
        );
        let mut out = Vec::new();
        FEED_STREAM.save(&mut out);
        self.next_index.save(&mut out);
        self.peeked.is_some().save(&mut out);
        // In-flight specs keyed by task index, canonicalised to index order
        // (map iteration order is unobservable and must stay that way).
        let mut pairs: Vec<(usize, TaskSpec)> = self
            .in_flight
            .iter()
            .map(|(&i, spec)| (i, spec.clone()))
            .collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.save(&mut out);
        Some(out)
    }
}

/// Simulates `workload` on `backend` with the given scheduling policy.
///
/// Hardware-scheduled backends (Carbon, Task Superscalar) ignore `scheduler`
/// and use their fixed FIFO queue.
///
/// # Panics
///
/// Panics if the simulation deadlocks, which would indicate a bug in a
/// dependence engine (the workload graphs are acyclic by construction), or
/// if fault injection aborts the run (use [`simulate_outcome`] to receive
/// [`RunOutcome::Aborted`] instead).
pub fn simulate(
    workload: &Workload,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
) -> RunReport {
    completed_or_panic(simulate_outcome(workload, backend, scheduler, config))
}

/// Like [`simulate`], but surfaces retry-budget exhaustion as a typed
/// [`RunOutcome::Aborted`] instead of a panic. Without
/// [`ExecConfig::fault`] the outcome is always `Completed`.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn simulate_outcome(
    workload: &Workload,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
) -> RunOutcome {
    run_core(
        EagerFeed { workload },
        backend,
        scheduler,
        config,
        None,
        None,
    )
    .expect("a run without restore cannot fail")
    .expect("a run without a checkpoint sink cannot halt")
}

/// Simulates the tasks produced by `source` on `backend`, creating them
/// through the windowed master (see [`ExecConfig::window`]) and keeping only
/// in-flight specs resident.
///
/// With the default unbounded window this is observably identical to
/// collecting the stream into a [`Workload`] and calling [`simulate`] —
/// bit-identical makespans, stats and DMU access totals — while holding at
/// most the in-flight specs in memory. With a finite window the master is
/// additionally throttled, modelling runtime-system backpressure.
///
/// # Panics
///
/// Panics if the simulation deadlocks (see [`simulate`]), or if fault
/// injection aborts the run (use [`simulate_stream_outcome`]).
pub fn simulate_stream<S: TaskSource + ?Sized>(
    source: &mut S,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
) -> RunReport {
    completed_or_panic(simulate_stream_outcome(source, backend, scheduler, config))
}

/// Like [`simulate_stream`], but surfaces retry-budget exhaustion as a typed
/// [`RunOutcome::Aborted`] instead of a panic.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn simulate_stream_outcome<S: TaskSource + ?Sized>(
    source: &mut S,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
) -> RunOutcome {
    run_core(
        StreamFeed::new(source),
        backend,
        scheduler,
        config,
        None,
        None,
    )
    .expect("a run without restore cannot fail")
    .expect("a run without a checkpoint sink cannot halt")
}

/// Runs `workload` like [`simulate`], additionally capturing a [`Snapshot`]
/// of the full mid-run state every [`ExecConfig::checkpoint_every`] cycles
/// and handing each one to `sink`.
///
/// `sink` returns `true` to keep running or `false` to halt the run at that
/// checkpoint; a halted run returns `None` (the snapshot the sink just
/// received is the resume point). If `checkpoint_every` is unset the sink is
/// never called and the run completes normally. Capture never affects
/// modeled time: a checkpointed run's report is bit-identical to a plain
/// [`simulate`] run's.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn simulate_checkpointed(
    workload: &Workload,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    sink: &mut dyn FnMut(Snapshot) -> bool,
) -> Option<RunReport> {
    simulate_checkpointed_outcome(workload, backend, scheduler, config, sink)
        .map(completed_or_panic)
}

/// Like [`simulate_checkpointed`], but surfaces retry-budget exhaustion as a
/// typed [`RunOutcome::Aborted`] instead of a panic.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn simulate_checkpointed_outcome(
    workload: &Workload,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    sink: &mut dyn FnMut(Snapshot) -> bool,
) -> Option<RunOutcome> {
    let ctl = config.checkpoint_every.map(|every| CheckpointCtl {
        every,
        next_at: every,
        sink,
    });
    run_core(
        EagerFeed { workload },
        backend,
        scheduler,
        config,
        None,
        ctl,
    )
    .expect("eager feeds are always checkpointable")
}

/// Runs `source` like [`simulate_stream`], additionally capturing a
/// [`Snapshot`] every [`ExecConfig::checkpoint_every`] cycles (see
/// [`simulate_checkpointed`] for the sink contract).
///
/// Streaming checkpoints store the source's production cursor
/// ([`TaskSource::checkpoint_cursor`]) plus the bounded in-flight window —
/// never the unproduced remainder of the stream — so snapshots stay
/// O(window) regardless of how many tasks are still to come.
///
/// # Panics
///
/// Panics if checkpointing is enabled but `source` reports no checkpoint
/// cursor, and on dependence-engine deadlock (see [`simulate`]).
pub fn simulate_stream_checkpointed<S: TaskSource + ?Sized>(
    source: &mut S,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    sink: &mut dyn FnMut(Snapshot) -> bool,
) -> Option<RunReport> {
    simulate_stream_checkpointed_outcome(source, backend, scheduler, config, sink)
        .map(completed_or_panic)
}

/// Like [`simulate_stream_checkpointed`], but surfaces retry-budget
/// exhaustion as a typed [`RunOutcome::Aborted`] instead of a panic.
///
/// # Panics
///
/// As for [`simulate_stream_checkpointed`], minus the abort panic.
pub fn simulate_stream_checkpointed_outcome<S: TaskSource + ?Sized>(
    source: &mut S,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    sink: &mut dyn FnMut(Snapshot) -> bool,
) -> Option<RunOutcome> {
    assert!(
        config.checkpoint_every.is_none() || source.checkpoint_cursor().is_some(),
        "cannot checkpoint source {:?}: TaskSource::checkpoint_cursor returned None",
        source.name()
    );
    let ctl = config.checkpoint_every.map(|every| CheckpointCtl {
        every,
        next_at: every,
        sink,
    });
    run_core(
        StreamFeed::new(source),
        backend,
        scheduler,
        config,
        None,
        ctl,
    )
    .expect("source cursor support was checked above")
}

/// Resumes an eager-workload run from `snapshot`, driving it to completion.
///
/// `workload` and `config` must match what the checkpointed run used: the
/// snapshot's META section carries the run identity and a configuration
/// fingerprint, both validated before any state is reinstated, and the
/// backend and scheduler are rebuilt from it — a snapshot can never be
/// resumed under different semantics than it was taken under. Resuming is
/// bit-exact: the returned [`RunReport`] is identical to the report of an
/// uninterrupted run (the snapshot conformance suite pins this across the
/// full backend × scheduler matrix).
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn resume(
    workload: &Workload,
    snapshot: &Snapshot,
    config: &ExecConfig,
) -> Result<RunReport, SnapshotError> {
    resume_outcome(workload, snapshot, config).map(completed_or_panic)
}

/// Like [`resume`], but surfaces retry-budget exhaustion as a typed
/// [`RunOutcome::Aborted`] instead of a panic.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn resume_outcome(
    workload: &Workload,
    snapshot: &Snapshot,
    config: &ExecConfig,
) -> Result<RunOutcome, SnapshotError> {
    let meta = RunMeta::from_snapshot(snapshot)?;
    meta.validate(FEED_EAGER, &workload.name, config)?;
    // The eager FEED payload is just the kind tag; check it is well-formed.
    let mut r = Reader::new(snapshot.section(section::FEED)?);
    let _tag = u8::load(&mut r)?;
    r.expect_end("FEED")?;
    let outcome = run_core(
        EagerFeed { workload },
        &meta.backend,
        meta.scheduler,
        config,
        Some(snapshot),
        None,
    )?;
    Ok(outcome.expect("resumed runs have no checkpoint sink and cannot halt"))
}

/// Resumes a streaming run from `snapshot`, driving it to completion.
///
/// `source` must be a *freshly built* instance of the stream the
/// checkpointed run was consuming: it is fast-forwarded to the snapshot's
/// production cursor via [`TaskSource::resume_at`], so the stream is
/// regenerated rather than stored. Validation and bit-exactness are as for
/// [`resume`].
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn resume_stream<S: TaskSource + ?Sized>(
    source: &mut S,
    snapshot: &Snapshot,
    config: &ExecConfig,
) -> Result<RunReport, SnapshotError> {
    resume_stream_outcome(source, snapshot, config).map(completed_or_panic)
}

/// Like [`resume_stream`], but surfaces retry-budget exhaustion as a typed
/// [`RunOutcome::Aborted`] instead of a panic.
///
/// # Panics
///
/// Panics on dependence-engine deadlock (see [`simulate`]).
pub fn resume_stream_outcome<S: TaskSource + ?Sized>(
    source: &mut S,
    snapshot: &Snapshot,
    config: &ExecConfig,
) -> Result<RunOutcome, SnapshotError> {
    let meta = RunMeta::from_snapshot(snapshot)?;
    meta.validate(FEED_STREAM, source.name(), config)?;
    let feed = StreamFeed::restore(source, snapshot.section(section::FEED)?)?;
    let outcome = run_core(
        feed,
        &meta.backend,
        meta.scheduler,
        config,
        Some(snapshot),
        None,
    )?;
    Ok(outcome.expect("resumed runs have no checkpoint sink and cannot halt"))
}

/// Timing-wheel payload marking a retry dispatch instead of a core event.
/// Scheduled at each failed task's backoff due time; on firing, every due
/// entry of the retry queue is re-issued to the scheduling pool. No real
/// core can carry this id (cores are `0..num_cores`).
const RETRY_EVENT: usize = usize::MAX;

/// A task in flight on a core, carrying the successor count its
/// [`ReadyEntry`] arrived with so a faulted task can be re-issued under the
/// exact same scheduling inputs (the Successor policy orders by it).
#[derive(Clone, Copy)]
struct RunningTask {
    task: TaskRef,
    num_successors: u32,
}

impl Persist for RunningTask {
    fn save(&self, out: &mut Vec<u8>) {
        self.task.save(out);
        self.num_successors.save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(RunningTask {
            task: TaskRef::load(r)?,
            num_successors: u32::load(r)?,
        })
    }
}

/// What the master core does in Phase 2 of the current batch, decided while
/// the batch's engine work is issued (Pass A of [`run_core`]) and replayed
/// with the driver bookkeeping (Pass B).
enum MasterPlan {
    /// No creation attempt this batch (master absent, throttled, or the feed
    /// is exhausted): plain worker behaviour.
    None,
    /// The in-flight window is full: mark the master throttled, then worker
    /// behaviour.
    Throttle,
    /// A creation was attempted; the tasks it readied are in the create
    /// buffer.
    Created { cost: Cycle, completed: bool },
}

/// Periodic capture control threaded into [`run_core`]: when simulated time
/// reaches `next_at`, the driver assembles a [`Snapshot`] and hands it to
/// `sink`; a `false` return halts the run (the checkpointed entry points
/// then return `None` instead of a report).
struct CheckpointCtl<'a> {
    every: Cycle,
    next_at: Cycle,
    sink: &'a mut dyn FnMut(Snapshot) -> bool,
}

/// The discrete-event loop shared by every entry point: plain
/// ([`simulate`] / [`simulate_stream`]), checkpointed (`checkpoint` set) and
/// resumed (`restore` set). Returns `Ok(None)` when a checkpoint sink halted
/// the run, and an error only when `restore` holds an inconsistent snapshot.
/// Fault injection aborting the run is a normal return
/// ([`RunOutcome::Aborted`]), not an error.
fn run_core<F: TaskFeed>(
    mut feed: F,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    restore: Option<&Snapshot>,
    mut checkpoint: Option<CheckpointCtl<'_>>,
) -> Result<Option<RunOutcome>, SnapshotError> {
    let num_cores = config.chip.num_cores;
    let master = 0usize;
    let window = config.window.max(1);
    let noc = NocModel::from_chip(&config.chip);
    let noc_round_trip = noc.average_round_trip();

    let mut engine = backend.build_engine(&config.cost, noc_round_trip, config.per_op_dmu);
    let hardware_sched = backend.hardware_scheduling();
    let mut pool: Box<dyn Scheduler> = if hardware_sched {
        Box::new(FifoScheduler::new())
    } else {
        scheduler.build()
    };
    let scheduler_name = if hardware_sched {
        "HW-FIFO".to_string()
    } else {
        scheduler.name().to_string()
    };
    let (push_cost, pick_cost) = if hardware_sched {
        (config.cost.hw_queue_op, config.cost.hw_queue_op)
    } else {
        (config.cost.sw_sched_push, config.cost.sw_sched_pick)
    };

    let locality_benefit = feed.locality_benefit();
    let duration_jitter = feed.duration_jitter();
    let mut stats = SimStats::new(num_cores, master);
    let mut locality = LocalityModel::new(num_cores, config.locality_capacity_bytes.max(1));
    let mut events: EventQueue<usize> = EventQueue::new();
    let mut running: Vec<Option<RunningTask>> = vec![None; num_cores];
    let mut idle_since: Vec<Option<Cycle>> = vec![None; num_cores];
    let mut idle_set = IdleSet::new(num_cores);
    // Fault injection: the plan is a pure function of the run seed and the
    // fault configuration (dedicated stream, so fault draws never perturb
    // duration jitter), the state is the mutable bookkeeping. Completion
    // boundaries are counted even with faults disabled so the FAULT snapshot
    // section — and therefore whole snapshots — are bit-identical between
    // `fault: None` and an all-zero-rate config.
    let fault_plan = config
        .fault
        .as_ref()
        .map(|fc| FaultPlan::new(config.seed, fc.clone()));
    let mut fault_state = FaultState::new(num_cores);
    // Batch buffers reused across cycles: the tasks finishing this cycle in
    // event order (paired with their core), the per-finish costs, the tasks
    // those finishes readied (with per-finish `[start, end)` spans into the
    // shared buffer), and the tasks the master's creation attempt readied.
    let mut fin_tasks: Vec<(TaskRef, usize)> = Vec::new();
    let mut fin_costs: Vec<Cycle> = Vec::new();
    let mut fin_spans: Vec<(usize, usize)> = Vec::new();
    let mut fin_ready: Vec<ReadyInfo> = Vec::new();
    let mut create_ready: Vec<ReadyInfo> = Vec::new();
    // Injected failures of this batch, in event order: the failing task
    // (with the successor count its re-issue must carry), the core it
    // failed on, and the engine's failure-path cost.
    let mut fail_events: Vec<(RunningTask, usize, Cycle)> = Vec::new();
    let mut next_create = 0usize;
    let mut finished = 0usize;
    let mut peak_resident = feed.resident();
    let mut schedule: Vec<ScheduledTask> = if config.trace_schedule {
        Vec::with_capacity(feed.len_hint().unwrap_or(0))
    } else {
        Vec::new()
    };
    let mut makespan = Cycle::ZERO;
    // True while the master is held back from creating — either the last
    // creation attempt stalled on a full DMU structure, or the in-flight
    // count reached the configured window. The master then behaves as a
    // worker (runtime-system throttling) and retries after tasks finish.
    let mut master_throttled = false;
    // First task to exhaust its retry budget (with its final failure
    // count): the run halts at the end of that batch and reports
    // `RunOutcome::Aborted` instead of completing.
    let mut aborted: Option<(TaskRef, u32)> = None;

    // Deterministic per-task duration jitter: the same task gets the same
    // duration regardless of scheduler or backend, so comparisons are fair.
    let jitter_for = |task: TaskRef| -> f64 {
        if duration_jitter == 0.0 {
            1.0
        } else {
            let mut rng = SplitMix64::new(config.seed ^ (task.index() as u64).wrapping_mul(0x9E37));
            rng.jitter(duration_jitter)
        }
    };

    if let Some(snap) = restore {
        // Reinstate the mutable run state section by section. META (identity
        // and configuration fingerprint) was already validated by the resume
        // entry point, and the feed was rebuilt from FEED before this call;
        // everything else lives in the long-lived locals loaded here. The
        // initial per-core event seeding is skipped — the restored timing
        // wheel already holds the pending events of the interrupted run.
        stats = snapshot::from_payload(snap.section(section::STATS)?, "STATS")?;
        if stats.cores.len() != num_cores || stats.master != master {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "STATS section covers {} cores (master {}), expected {num_cores} \
                     (master {master})",
                    stats.cores.len(),
                    stats.master
                ),
            });
        }
        locality = snapshot::from_payload(snap.section(section::LOCALITY)?, "LOCALITY")?;
        if locality.num_cores() != num_cores {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "LOCALITY section covers {} cores, expected {num_cores}",
                    locality.num_cores()
                ),
            });
        }
        events = snapshot::from_payload(snap.section(section::EVENTS)?, "EVENTS")?;
        let mut r = Reader::new(snap.section(section::SCHEDULER)?);
        pool.load_state(&mut r)?;
        r.expect_end("SCHEDULER")?;
        let mut r = Reader::new(snap.section(section::ENGINE)?);
        engine.load_state(&mut r)?;
        r.expect_end("ENGINE")?;
        let mut r = Reader::new(snap.section(section::DRIVER)?);
        running = Vec::load(&mut r)?;
        idle_since = Vec::load(&mut r)?;
        let idle_words = Vec::<u64>::load(&mut r)?;
        next_create = usize::load(&mut r)?;
        finished = usize::load(&mut r)?;
        peak_resident = usize::load(&mut r)?;
        makespan = Cycle::load(&mut r)?;
        master_throttled = bool::load(&mut r)?;
        r.expect_end("DRIVER")?;
        if running.len() != num_cores
            || idle_since.len() != num_cores
            || idle_words.len() != idle_set.words.len()
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "DRIVER section covers {} cores, expected {num_cores}",
                    running.len()
                ),
            });
        }
        idle_set.words = idle_words;
        fault_state = snapshot::from_payload(snap.section(section::FAULT)?, "FAULT")?;
        if fault_state.num_cores() != num_cores {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "FAULT section covers {} cores, expected {num_cores}",
                    fault_state.num_cores()
                ),
            });
        }
        if config.trace_schedule {
            schedule = snapshot::from_payload(snap.section(section::TRACE)?, "TRACE")?;
        }
    } else {
        for core in 0..num_cores {
            events.schedule(Cycle::ZERO, core);
        }
    }

    // Batched same-cycle delivery: every event of the current cycle is
    // drained from the timing wheel in one operation (a single occupancy
    // scan + bucket detach) and processed in FIFO order, instead of paying
    // a queue pop per event. Events scheduled *for the same cycle* while
    // the batch runs are picked up by the next `pop_batch` — exactly the
    // position serial pops would have delivered them in (behind everything
    // already pending), so the executed timeline is bit-identical to the
    // one-pop-at-a-time loop this replaces.
    let mut batch: Vec<usize> = Vec::new();
    while let Some(now) = events.pop_batch(&mut batch) {
        // ------------------------------------------------------------------
        // Pass A: every engine call of this batch, issued in event order.
        //
        // The engine sees exactly the operation sequence the per-event loop
        // would issue — finishes of cores up to and including the master,
        // the master's creation attempt, then the remaining finishes — but
        // the finish runs go through `finish_batch`, which amortises
        // per-call work across the whole cycle. Engine calls never read the
        // scheduler pool, the idle set or the event queue, and the driver
        // bookkeeping replayed in Pass B never touches the engine, so the
        // two-pass split is observably identical to the interleaved loop it
        // replaces (the per-op conformance suite pins this).
        // ------------------------------------------------------------------
        fin_tasks.clear();
        fin_costs.clear();
        fin_spans.clear();
        fin_ready.clear();
        create_ready.clear();
        fail_events.clear();
        let mut master_plan = MasterPlan::None;
        // Set when the master's own task failed this batch: the cycle its
        // creation attempt is pushed back to (engine failure path plus
        // detection latency), standing in for the finish-cost path below.
        let mut master_fail_cost: Option<Cycle> = None;

        let master_pos = batch.iter().position(|&c| c == master);
        let split = master_pos.map_or(batch.len(), |pos| pos + 1);
        for &core in &batch[..split] {
            if core == RETRY_EVENT {
                continue;
            }
            if let Some(rt) = running[core].take() {
                // Completion boundary: decide transient failure (the task's
                // result is lost, it must re-run) and sticky core retirement
                // (this completion is the core's last). Both are pure draws
                // keyed on stable identities, so the decisions are identical
                // across backends, schedulers and resume.
                let completion = fault_state.record_completion(core);
                let failed = fault_plan.as_ref().is_some_and(|plan| {
                    plan.should_fail(rt.task, fault_state.failure_count(rt.task))
                });
                if failed {
                    let cost = engine.fail_task(now, rt.task, core);
                    if core == master {
                        let detect = fault_plan
                            .as_ref()
                            .map_or(Cycle::ZERO, |plan| plan.config().detect_cost);
                        master_fail_cost = Some(cost + detect);
                    }
                    fail_events.push((rt, core, cost));
                } else {
                    fin_tasks.push((rt.task, core));
                }
                if let Some(plan) = &fault_plan {
                    if core != master && plan.should_retire(core, completion) {
                        fault_state.retire(core);
                    }
                }
            }
        }
        engine.finish_batch(
            now,
            &fin_tasks,
            &mut fin_costs,
            &mut fin_ready,
            &mut fin_spans,
        );
        for &(task, _) in &fin_tasks {
            feed.release(task);
        }
        let first_run = fin_tasks.len();

        if master_pos.is_some() {
            // The master's creation decision, evaluated against the state it
            // observes mid-batch: finishes processed before its event reset
            // the throttle and shrink the in-flight window.
            let finished_mid = finished + first_run;
            let throttled_mid = master_throttled && first_run == 0;
            if !throttled_mid && !feed.exhausted(next_create) {
                if next_create - finished_mid >= window {
                    master_plan = MasterPlan::Throttle;
                } else {
                    // The cycle the master reaches its creation attempt at:
                    // its own finish cost plus one push per task that finish
                    // readied — or, if its own task failed this batch, the
                    // failure-detection path instead.
                    let mut t_master = now;
                    if let Some(cost) = master_fail_cost {
                        t_master = now + cost;
                    } else if let Some(&(_, last_core)) = fin_tasks.last() {
                        if last_core == master {
                            let (start, end) = fin_spans[first_run - 1];
                            t_master = now
                                + fin_costs[first_run - 1]
                                + push_cost.scaled((end - start) as u64);
                        }
                    }
                    let task = TaskRef(next_create);
                    let outcome = {
                        let spec = feed.fetch(next_create);
                        engine.create_task(t_master, task, spec, &mut create_ready)
                    };
                    peak_resident = peak_resident.max(feed.resident());
                    master_plan = MasterPlan::Created {
                        cost: outcome.cost,
                        completed: outcome.completed,
                    };
                }
            }
            let before = fin_tasks.len();
            for &core in &batch[split..] {
                if core == RETRY_EVENT {
                    continue;
                }
                if let Some(rt) = running[core].take() {
                    let completion = fault_state.record_completion(core);
                    let failed = fault_plan.as_ref().is_some_and(|plan| {
                        plan.should_fail(rt.task, fault_state.failure_count(rt.task))
                    });
                    if failed {
                        let cost = engine.fail_task(now, rt.task, core);
                        fail_events.push((rt, core, cost));
                    } else {
                        fin_tasks.push((rt.task, core));
                    }
                    if let Some(plan) = &fault_plan {
                        if plan.should_retire(core, completion) {
                            fault_state.retire(core);
                        }
                    }
                }
            }
            engine.finish_batch(
                now,
                &fin_tasks[before..],
                &mut fin_costs,
                &mut fin_ready,
                &mut fin_spans,
            );
            for &(task, _) in &fin_tasks[before..] {
                feed.release(task);
            }
        }

        // ------------------------------------------------------------------
        // Pass B: driver bookkeeping, replayed per event in batch order.
        // ------------------------------------------------------------------
        let mut fin_idx = 0usize;
        let mut fail_idx = 0usize;
        for &core in &batch {
            // ------------------------------------------------------------------
            // Phase 0: retry dispatch. A sentinel event re-issues every due
            // entry of the retry queue to the scheduling pool, in insertion
            // order, and wakes idle cores to pick them up. Re-issue itself
            // is modeled free: the retry watchdog runs off the critical
            // path, and the backoff delay already charged the latency.
            // ------------------------------------------------------------------
            if core == RETRY_EVENT {
                let dispatched = fault_state.drain_due(now, |task, num_successors| {
                    pool.push(ReadyEntry {
                        task,
                        num_successors,
                        creation_seq: task.index(),
                        ready_at: now,
                        producer_core: None,
                    });
                });
                for _ in 0..dispatched {
                    let Some(idle_core) = idle_set.pop_min() else {
                        break;
                    };
                    events.schedule(now, idle_core);
                }
                continue;
            }
            let mut t = now;

            // ------------------------------------------------------------------
            // Phase 0b: the injected failure this core contributed, if any.
            // The task never finished: dependents stay blocked, the window
            // stays occupied and the master throttle is NOT reset. The core
            // pays the engine's failure path plus fault-detection latency,
            // then the task is queued for re-issue after a linear backoff —
            // or, past the retry budget, the run aborts at the end of this
            // batch.
            // ------------------------------------------------------------------
            if fail_idx < fail_events.len() && fail_events[fail_idx].1 == core {
                let (rt, _, engine_cost) = fail_events[fail_idx];
                fail_idx += 1;
                let plan = fault_plan
                    .as_ref()
                    .expect("failures are only injected when a fault plan exists");
                let cost = engine_cost + plan.config().detect_cost;
                stats.cores[core].add(Phase::Deps, cost);
                t += cost;
                makespan = makespan.max(t);
                let count = fault_state.record_failure(rt.task);
                if count > plan.config().retry_budget {
                    if aborted.is_none() {
                        aborted = Some((rt.task, count));
                    }
                } else {
                    let due = t + plan.backoff_delay(count);
                    fault_state.push_retry(due, rt.task, rt.num_successors);
                    events.schedule(due, RETRY_EVENT);
                }
            }

            // ------------------------------------------------------------------
            // Phase 1: the finish this core contributed to the batch, if any.
            // ------------------------------------------------------------------
            let mut finished_here = false;
            if fin_idx < fin_tasks.len() && fin_tasks[fin_idx].1 == core {
                let (task, _) = fin_tasks[fin_idx];
                let fin_cost = fin_costs[fin_idx];
                let (start, end) = fin_spans[fin_idx];
                fin_idx += 1;
                // Any finish releases DMU resources and shrinks the in-flight
                // window, so a throttled master may retry creation at its next
                // opportunity.
                master_throttled = false;
                stats.cores[core].add(Phase::Deps, fin_cost);
                t += fin_cost;
                finished += 1;
                finished_here = true;
                if config.trace_schedule {
                    schedule.push(ScheduledTask {
                        task,
                        core,
                        finish: t,
                    });
                }
                makespan = makespan.max(t);
                push_ready(
                    &fin_ready[start..end],
                    Some(core),
                    &mut t,
                    core,
                    &mut *pool,
                    &mut stats,
                    push_cost,
                    &mut idle_set,
                    &mut events,
                );
            }

            // A finish frees DMU resources (and may ready tasks): make sure a
            // throttled or idle master gets a chance to resume creation.
            if finished_here
                && core != master
                && !feed.exhausted(next_create)
                && idle_set.remove(master)
            {
                events.schedule(t, master);
            }

            // ------------------------------------------------------------------
            // Phase 2: the master's creation attempt, decided in Pass A.
            //
            // When a creation attempt stalls on a full DMU structure, or the
            // in-flight count reaches the configured window, the master does not
            // busy-wait: like a throttled runtime system it falls through to the
            // worker path, executes a task (or goes idle) and retries creation
            // after the next finish.
            // ------------------------------------------------------------------
            if core == master {
                match master_plan {
                    MasterPlan::None => {}
                    MasterPlan::Throttle => {
                        master_throttled = true;
                        // Fall through to the worker path while the window
                        // drains.
                    }
                    MasterPlan::Created { cost, completed } => {
                        stats.cores[master].add(Phase::Deps, cost);
                        t += cost;
                        push_ready(
                            &create_ready,
                            None,
                            &mut t,
                            master,
                            &mut *pool,
                            &mut stats,
                            push_cost,
                            &mut idle_set,
                            &mut events,
                        );
                        if completed {
                            next_create += 1;
                            events.schedule(t, master);
                            continue;
                        }
                        master_throttled = true;
                        // Fall through to the worker path: execute something
                        // (or idle) while the DMU drains.
                    }
                }
            }

            // ------------------------------------------------------------------
            // Phase 3: worker behaviour — schedule and execute a ready task.
            // ------------------------------------------------------------------
            if feed.exhausted(next_create) && finished >= next_create {
                continue;
            }
            // A retired core never takes new work and never joins the idle
            // set (it cannot be woken). If ready work is pending, hand the
            // wake-up to an idle survivor so the pool is never stranded on
            // a core that just died.
            if fault_state.is_retired(core) {
                if !pool.is_empty() {
                    if let Some(idle_core) = idle_set.pop_min() {
                        events.schedule(t, idle_core);
                    }
                }
                continue;
            }
            if let Some(entry) = pool.pop(core) {
                if let Some(since) = idle_since[core].take() {
                    stats.cores[core].add(Phase::Idle, t.saturating_sub(since));
                }
                idle_set.remove(core);
                stats.cores[core].add(Phase::Sched, pick_cost);
                t += pick_cost;

                let spec = feed.spec(entry.task);
                let working_set = spec.working_set();
                let hit_fraction = locality.probe(core, &working_set).hit_fraction();
                let locality_factor = 1.0 - locality_benefit * hit_fraction;
                let duration = spec
                    .duration
                    .scaled_f64(locality_factor * jitter_for(entry.task));
                let reads = spec.read_set();
                let writes = spec.write_set();
                locality.record_reads(core, &reads);
                locality.record_writes(core, &writes);

                stats.cores[core].add(Phase::Exec, duration);
                running[core] = Some(RunningTask {
                    task: entry.task,
                    num_successors: entry.num_successors,
                });
                events.schedule(t + duration, core);
            } else {
                if idle_since[core].is_none() {
                    idle_since[core] = Some(t);
                }
                idle_set.insert(core);
            }
        }

        // Retry-budget exhaustion: the rest of the batch was processed
        // normally (its bookkeeping is already committed), but no further
        // cycle runs and no checkpoint is taken at the abort point.
        if aborted.is_some() {
            break;
        }

        // Periodic checkpoint capture. The bottom of the batch is the one
        // point where no per-batch scratch is live — the fin_*/create
        // buffers and the master plan have all been consumed — so the full
        // run state is exactly the long-lived locals serialised here.
        if let Some(ctl) = checkpoint.as_mut() {
            if now >= ctl.next_at {
                ctl.next_at = now + ctl.every;
                let snap = capture_snapshot(
                    &feed,
                    backend,
                    scheduler,
                    config,
                    &*engine,
                    &*pool,
                    &stats,
                    &locality,
                    &events,
                    &running,
                    &idle_since,
                    &idle_set,
                    next_create,
                    finished,
                    peak_resident,
                    makespan,
                    master_throttled,
                    &fault_state,
                    &schedule,
                );
                if !(ctl.sink)(snap) {
                    return Ok(None);
                }
            }
        }
    }

    assert!(
        aborted.is_some() || (feed.exhausted(next_create) && finished == next_create),
        "simulation ended with {finished} of {next_create} created tasks finished \
         (stream exhausted: {}) — dependence engine deadlock",
        feed.exhausted(next_create)
    );

    stats.makespan = makespan;
    stats.tasks_executed = finished as u64;
    let hardware = engine.hardware_report();
    if let Some(hw) = &hardware {
        stats.dmu_stall_cycles = hw.stall_cycles;
        stats.dmu_instructions = hw.instructions;
    }
    stats.normalize_to_makespan();

    let report = RunReport {
        workload: feed.name().to_string(),
        backend: backend.name().to_string(),
        scheduler: scheduler_name,
        stats,
        hardware,
        tasks: finished as u64,
        peak_resident_tasks: peak_resident,
        faults_injected: fault_state.faults_injected,
        retries: fault_state.retries,
        retired_cores: fault_state.retired_cores(),
        schedule,
    };
    Ok(Some(match aborted {
        Some((task, attempts)) => RunOutcome::Aborted {
            task,
            attempts,
            report,
        },
        None => RunOutcome::Completed(report),
    }))
}

/// Assembles the complete run state into a [`Snapshot`], one section per
/// subsystem (the registry in [`tdm_sim::snapshot::SECTIONS`] and the layout
/// in `SNAPSHOT_FORMAT.md` describe each). Pure read: capture never mutates
/// the run, so checkpointed and plain runs stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn capture_snapshot<F: TaskFeed>(
    feed: &F,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    engine: &dyn DependenceEngine,
    pool: &dyn Scheduler,
    stats: &SimStats,
    locality: &LocalityModel,
    events: &EventQueue<usize>,
    running: &[Option<RunningTask>],
    idle_since: &[Option<Cycle>],
    idle_set: &IdleSet,
    next_create: usize,
    finished: usize,
    peak_resident: usize,
    makespan: Cycle,
    master_throttled: bool,
    fault_state: &FaultState,
    schedule: &[ScheduledTask],
) -> Snapshot {
    let feed_state = feed
        .save_state()
        .expect("checkpointing requires a source with a checkpoint cursor");
    let meta = RunMeta {
        feed_kind: feed_state[0],
        workload: feed.name().to_string(),
        backend: backend.clone(),
        scheduler,
        num_cores: config.chip.num_cores as u64,
        seed: config.seed,
        locality_capacity_bytes: config.locality_capacity_bytes,
        trace_schedule: config.trace_schedule,
        window: config.window as u64,
        per_op_dmu: config.per_op_dmu,
        cost_hash: debug_hash(&config.cost),
        chip_hash: debug_hash(&config.chip),
        fault_hash: debug_hash(&config.fault),
    };

    let mut driver = Vec::new();
    running.to_vec().save(&mut driver);
    idle_since.to_vec().save(&mut driver);
    idle_set.words.save(&mut driver);
    next_create.save(&mut driver);
    finished.save(&mut driver);
    peak_resident.save(&mut driver);
    makespan.save(&mut driver);
    master_throttled.save(&mut driver);

    let mut sched_state = Vec::new();
    pool.save_state(&mut sched_state);
    let mut engine_state = Vec::new();
    engine.save_state(&mut engine_state);

    let mut snap = Snapshot::new();
    snap.add_section(section::META, snapshot::to_payload(&meta));
    snap.add_section(section::DRIVER, driver);
    snap.add_section(section::EVENTS, snapshot::to_payload(events));
    snap.add_section(section::STATS, snapshot::to_payload(stats));
    snap.add_section(section::LOCALITY, snapshot::to_payload(locality));
    snap.add_section(section::SCHEDULER, sched_state);
    snap.add_section(section::ENGINE, engine_state);
    snap.add_section(section::FEED, feed_state);
    snap.add_section(section::FAULT, snapshot::to_payload(fault_state));
    if config.trace_schedule {
        snap.add_section(section::TRACE, snapshot::to_payload(&schedule.to_vec()));
    }
    snap
}

/// Pushes newly ready tasks into the scheduling pool, charging the pushing
/// core, and wakes idle cores to pick them up.
#[allow(clippy::too_many_arguments)]
fn push_ready(
    ready: &[ReadyInfo],
    producer_core: Option<usize>,
    t: &mut Cycle,
    pushing_core: usize,
    pool: &mut dyn Scheduler,
    stats: &mut SimStats,
    push_cost: Cycle,
    idle_set: &mut IdleSet,
    events: &mut EventQueue<usize>,
) {
    for info in ready {
        stats.cores[pushing_core].add(Phase::Sched, push_cost);
        *t += push_cost;
        pool.push(ReadyEntry {
            task: info.task,
            num_successors: info.num_successors,
            creation_seq: info.task.index(),
            ready_at: *t,
            producer_core,
        });
    }
    // Wake one idle core per newly ready task, lowest-numbered first.
    for _ in 0..ready.len() {
        let Some(idle_core) = idle_set.pop_min() else {
            break;
        };
        events.schedule(*t, idle_core);
    }
}

// ---------------------------------------------------------------------------
// Snapshot support: run identity, configuration fingerprint, Persist impls
// ---------------------------------------------------------------------------

impl Persist for Backend {
    fn save(&self, out: &mut Vec<u8>) {
        match self {
            Backend::Software => 0u8.save(out),
            Backend::Tdm(dmu) => {
                1u8.save(out);
                dmu.save(out);
            }
            Backend::Carbon => 2u8.save(out),
            Backend::TaskSuperscalar(dmu) => {
                3u8.save(out);
                dmu.save(out);
            }
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::load(r)? {
            0 => Backend::Software,
            1 => Backend::Tdm(DmuConfig::load(r)?),
            2 => Backend::Carbon,
            3 => Backend::TaskSuperscalar(DmuConfig::load(r)?),
            tag => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown backend tag {tag}"),
                })
            }
        })
    }
}

impl Persist for ScheduledTask {
    fn save(&self, out: &mut Vec<u8>) {
        self.task.save(out);
        self.core.save(out);
        self.finish.save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ScheduledTask {
            task: TaskRef::load(r)?,
            core: usize::load(r)?,
            finish: Cycle::load(r)?,
        })
    }
}

/// FNV-1a over the `Debug` rendering of a config sub-structure: a compact
/// compatibility fingerprint for the cost model and chip description. Every
/// field of both feeds modeled time, so any difference must fail resume; a
/// collision is astronomically unlikely, and the cost of a detected mismatch
/// is a clear error rather than silent divergence.
fn debug_hash(value: &impl std::fmt::Debug) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{value:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The META section: the run's identity (what is being simulated, on what)
/// plus the configuration fingerprint that gates resume. The backend and
/// scheduler are *rebuilt from here* on resume — they are not caller inputs
/// — so a snapshot can never be resumed under different semantics.
struct RunMeta {
    feed_kind: u8,
    workload: String,
    backend: Backend,
    scheduler: SchedulerKind,
    num_cores: u64,
    seed: u64,
    locality_capacity_bytes: u64,
    trace_schedule: bool,
    window: u64,
    per_op_dmu: bool,
    cost_hash: u64,
    chip_hash: u64,
    fault_hash: u64,
}

impl Persist for RunMeta {
    fn save(&self, out: &mut Vec<u8>) {
        self.feed_kind.save(out);
        self.workload.save(out);
        self.backend.save(out);
        self.scheduler.save(out);
        self.num_cores.save(out);
        self.seed.save(out);
        self.locality_capacity_bytes.save(out);
        self.trace_schedule.save(out);
        self.window.save(out);
        self.per_op_dmu.save(out);
        self.cost_hash.save(out);
        self.chip_hash.save(out);
        self.fault_hash.save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(RunMeta {
            feed_kind: u8::load(r)?,
            workload: String::load(r)?,
            backend: Backend::load(r)?,
            scheduler: SchedulerKind::load(r)?,
            num_cores: u64::load(r)?,
            seed: u64::load(r)?,
            locality_capacity_bytes: u64::load(r)?,
            trace_schedule: bool::load(r)?,
            window: u64::load(r)?,
            per_op_dmu: bool::load(r)?,
            cost_hash: u64::load(r)?,
            chip_hash: u64::load(r)?,
            fault_hash: u64::load(r)?,
        })
    }
}

impl RunMeta {
    fn from_snapshot(snap: &Snapshot) -> Result<RunMeta, SnapshotError> {
        snapshot::from_payload(snap.section(section::META)?, "META")
    }

    /// Checks that the resuming entry point, workload and configuration
    /// match what the snapshot was taken under. Every mismatch is its own
    /// actionable error — the operator learns *which* knob diverged.
    fn validate(
        &self,
        feed_kind: u8,
        workload: &str,
        config: &ExecConfig,
    ) -> Result<(), SnapshotError> {
        let fail = |context: String| Err(SnapshotError::Corrupt { context });
        if self.feed_kind != feed_kind {
            let (taken, resume_with) = if self.feed_kind == FEED_STREAM {
                ("a streaming run", "resume_stream")
            } else {
                ("an eager run", "resume")
            };
            return fail(format!(
                "snapshot was taken by {taken} — resume it with `{resume_with}`"
            ));
        }
        if self.workload != workload {
            return fail(format!(
                "snapshot was taken on workload {:?}, not {workload:?}",
                self.workload
            ));
        }
        if self.num_cores != config.chip.num_cores as u64 {
            return fail(format!(
                "snapshot was taken with {} cores but the resuming config has {}",
                self.num_cores, config.chip.num_cores
            ));
        }
        if self.seed != config.seed {
            return fail(format!(
                "snapshot was taken with seed {} but the resuming config has seed {}",
                self.seed, config.seed
            ));
        }
        if self.locality_capacity_bytes != config.locality_capacity_bytes {
            return fail(format!(
                "snapshot was taken with locality capacity {} B but the resuming \
                 config has {} B",
                self.locality_capacity_bytes, config.locality_capacity_bytes
            ));
        }
        if self.trace_schedule != config.trace_schedule {
            return fail(format!(
                "snapshot was taken with trace_schedule={} but the resuming config \
                 has trace_schedule={}",
                self.trace_schedule, config.trace_schedule
            ));
        }
        if self.window != config.window as u64 {
            return fail(format!(
                "snapshot was taken with window {} but the resuming config has \
                 window {}",
                self.window, config.window
            ));
        }
        if self.per_op_dmu != config.per_op_dmu {
            return fail(format!(
                "snapshot was taken with per_op_dmu={} but the resuming config has \
                 per_op_dmu={}",
                self.per_op_dmu, config.per_op_dmu
            ));
        }
        if self.cost_hash != debug_hash(&config.cost) {
            return fail("snapshot was taken under a different cost model".to_string());
        }
        if self.chip_hash != debug_hash(&config.chip) {
            return fail("snapshot was taken under a different chip configuration".to_string());
        }
        if self.fault_hash != debug_hash(&config.fault) {
            return fail("snapshot was taken under a different fault configuration".to_string());
        }
        Ok(())
    }
}

// Compile-time Send contract: the parallel design-space sweep runner
// (`tdm_bench::sweep`) moves whole simulation points — configs, engines,
// schedulers, sources and reports — onto worker threads. Regressions (e.g. an
// `Rc` slipping into an engine) fail here, at the definition site, instead of
// in a downstream crate.
const _: () = {
    const fn assert_send<T: Send + ?Sized>() {}
    assert_send::<dyn crate::engine::DependenceEngine>();
    assert_send::<dyn crate::scheduler::Scheduler>();
    assert_send::<dyn TaskSource>();
    assert_send::<crate::stream::WorkloadSource<'static>>();
    assert_send::<Backend>();
    assert_send::<ExecConfig>();
    assert_send::<RunReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::WorkloadSource;
    use crate::task::{DependenceSpec, TaskSpec};
    use crate::tdg::TaskGraph;

    fn small_chip(cores: usize) -> ExecConfig {
        ExecConfig::default().with_cores(cores)
    }

    /// A block-diagonal workload: `chains` independent chains of `len`
    /// dependent tasks each.
    fn chains_workload(chains: usize, len: usize, duration_us: f64) -> Workload {
        let chip = ChipConfig::default();
        let mut tasks = Vec::new();
        for c in 0..chains {
            for _ in 0..len {
                tasks.push(TaskSpec::new(
                    "link",
                    chip.micros(duration_us),
                    vec![DependenceSpec::inout(
                        0x10_0000 + (c as u64) * 0x1_0000,
                        4096,
                    )],
                ));
            }
        }
        Workload::new("chains", tasks)
    }

    /// Independent tasks (embarrassingly parallel).
    fn independent_workload(n: usize, duration_us: f64) -> Workload {
        let chip = ChipConfig::default();
        let tasks = (0..n)
            .map(|i| {
                TaskSpec::new(
                    "indep",
                    chip.micros(duration_us),
                    vec![DependenceSpec::output(0x20_0000 + (i as u64) * 4096, 4096)],
                )
            })
            .collect();
        Workload::new("independent", tasks)
    }

    #[test]
    fn independent_tasks_scale_with_cores() {
        let w = independent_workload(64, 100.0);
        let one = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(1));
        let many = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(9));
        // 9 cores vs 1 core: near-linear scaling on independent tasks.
        let speedup = many.speedup_over(&one);
        assert!(
            speedup > 5.0,
            "expected large speedup from more cores, got {speedup:.2}"
        );
    }

    #[test]
    fn chain_workload_is_serialized_regardless_of_cores() {
        let w = chains_workload(1, 20, 50.0);
        let few = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(2));
        let many = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(8));
        let speedup = many.speedup_over(&few);
        assert!(
            (0.9..1.1).contains(&speedup),
            "a single dependence chain cannot speed up with cores, got {speedup:.2}"
        );
    }

    #[test]
    fn all_tasks_execute_exactly_once_on_every_backend() {
        let w = chains_workload(4, 10, 20.0);
        for backend in [
            Backend::Software,
            Backend::tdm_default(),
            Backend::Carbon,
            Backend::task_superscalar_default(),
        ] {
            let report = simulate(&w, &backend, SchedulerKind::Fifo, &small_chip(4));
            assert_eq!(report.tasks, 40, "backend {}", backend.name());
            assert_eq!(report.stats.tasks_executed, 40);
            assert!(report.makespan() > Cycle::ZERO);
        }
    }

    #[test]
    fn tdm_outperforms_software_when_creation_bound() {
        // Many short tasks with several dependences each: the master's
        // software creation cost dominates, which is exactly the scenario
        // TDM accelerates (Figure 2 / Figure 12).
        let chip = ChipConfig::default();
        let blocks = 64u64;
        let tasks: Vec<TaskSpec> = (0..1500)
            .map(|i| {
                let a = 0x100_0000 + (i % blocks) * 0x4_0000;
                let b = 0x100_0000 + ((i * 7 + 3) % blocks) * 0x4_0000;
                TaskSpec::new(
                    "t",
                    chip.micros(60.0),
                    vec![
                        DependenceSpec::input(a, 0x4_0000),
                        DependenceSpec::inout(b, 0x4_0000),
                    ],
                )
            })
            .collect();
        let w = Workload::new("creation-bound", tasks);
        let config = ExecConfig::default();
        let sw = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &config);
        let tdm = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
        let speedup = tdm.speedup_over(&sw);
        assert!(
            speedup > 1.05,
            "TDM should beat software on a creation-bound workload, got {speedup:.3}"
        );
        // And the master spends a much smaller share of its time in DEPS.
        assert!(tdm.master_deps_fraction() < sw.master_deps_fraction());
    }

    #[test]
    fn hardware_backends_force_fifo() {
        let w = independent_workload(16, 10.0);
        let report = simulate(&w, &Backend::Carbon, SchedulerKind::Lifo, &small_chip(4));
        assert_eq!(report.scheduler, "HW-FIFO");
        let report = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Lifo,
            &small_chip(4),
        );
        assert_eq!(report.scheduler, "LIFO");
    }

    #[test]
    fn run_is_deterministic() {
        let w = chains_workload(8, 8, 30.0);
        let a = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Age,
            &small_chip(8),
        );
        let b = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Age,
            &small_chip(8),
        );
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn phase_breakdown_covers_makespan_on_every_core() {
        let w = chains_workload(4, 6, 25.0);
        let report = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(6));
        for core in &report.stats.cores {
            assert_eq!(core.total(), report.makespan());
        }
    }

    #[test]
    fn lifo_hurts_independent_chains_like_blackscholes() {
        // 8 chains on 4 workers: LIFO lets a few chains race ahead and leaves
        // a load-imbalanced tail, as described for Blackscholes in Section VI.
        let w = chains_workload(8, 12, 200.0);
        let config = small_chip(5);
        let fifo = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
        let lifo = simulate(&w, &Backend::tdm_default(), SchedulerKind::Lifo, &config);
        assert!(
            lifo.makespan() >= fifo.makespan(),
            "LIFO ({}) should not beat FIFO ({}) on independent chains",
            lifo.makespan(),
            fifo.makespan()
        );
    }

    #[test]
    fn tiny_dmu_still_completes_with_stalls() {
        let w = chains_workload(2, 30, 10.0);
        let dmu = DmuConfig {
            tat_entries: 16,
            tat_ways: 8,
            dat_entries: 16,
            dat_ways: 8,
            successor_la_entries: 16,
            dependence_la_entries: 16,
            reader_la_entries: 16,
            ..DmuConfig::default()
        };
        let report = simulate(&w, &Backend::Tdm(dmu), SchedulerKind::Fifo, &small_chip(4));
        assert_eq!(report.stats.tasks_executed, 60);
        let hw = report.hardware.unwrap();
        assert!(hw.stats.stalls > 0);
    }

    #[test]
    fn execution_respects_dependences_under_all_schedulers() {
        // Use the locality-sensitive workload and every scheduler; the
        // dependence engines enforce ordering, so all runs must complete.
        let w = chains_workload(6, 5, 15.0);
        let graph = TaskGraph::build(&w);
        assert!(graph.critical_path_len() == 5);
        for kind in SchedulerKind::all() {
            let report = simulate(&w, &Backend::tdm_default(), kind, &small_chip(4));
            assert_eq!(report.stats.tasks_executed, 30, "scheduler {}", kind.name());
        }
    }

    #[test]
    fn single_core_run_works() {
        let w = independent_workload(5, 10.0);
        let report = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(1));
        assert_eq!(report.stats.tasks_executed, 5);
        // With one core the master does everything; no idle time beyond
        // rounding is expected for independent tasks.
        assert!(report.stats.cores[0].get(Phase::Exec) > Cycle::ZERO);
    }

    #[test]
    fn empty_workload_completes_immediately() {
        let w = Workload::new("empty", vec![]);
        let report = simulate(&w, &Backend::Software, SchedulerKind::Fifo, &small_chip(4));
        assert_eq!(report.stats.tasks_executed, 0);
        assert_eq!(report.makespan(), Cycle::ZERO);
        // The streaming path agrees on the degenerate case.
        let mut source = WorkloadSource::new(&w);
        let streamed = simulate_stream(
            &mut source,
            &Backend::Software,
            SchedulerKind::Fifo,
            &small_chip(4),
        );
        assert_eq!(streamed.stats.tasks_executed, 0);
    }

    #[test]
    fn locality_scheduler_benefits_memory_bound_workload() {
        // A workload of producer→consumer pairs on large blocks with a high
        // locality benefit: running the consumer where the producer ran is
        // visibly faster.
        let chip = ChipConfig::default();
        let mut tasks = Vec::new();
        for i in 0..120u64 {
            let block = 0x400_0000 + i * 0x8_0000; // 512 KB blocks
            tasks.push(TaskSpec::new(
                "producer",
                chip.micros(80.0),
                vec![DependenceSpec::output(block, 0x8_0000)],
            ));
            tasks.push(TaskSpec::new(
                "consumer",
                chip.micros(80.0),
                vec![DependenceSpec::inout(block, 0x8_0000)],
            ));
        }
        let mut w = Workload::new("pairs", tasks);
        w.locality_benefit = 0.3;
        let config = small_chip(8);
        let fifo = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
        let local = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Locality,
            &config,
        );
        assert!(
            local.makespan() < fifo.makespan(),
            "locality scheduling ({}) should beat FIFO ({}) here",
            local.makespan(),
            fifo.makespan()
        );
    }

    #[test]
    fn streaming_matches_eager_bit_for_bit() {
        let mut w = chains_workload(6, 8, 25.0);
        w.locality_benefit = 0.1;
        let config = small_chip(6).with_trace_schedule();
        for backend in [
            Backend::Software,
            Backend::tdm_default(),
            Backend::Carbon,
            Backend::task_superscalar_default(),
        ] {
            for scheduler in [SchedulerKind::Fifo, SchedulerKind::Age] {
                let eager = simulate(&w, &backend, scheduler, &config);
                let mut source = WorkloadSource::new(&w);
                let streamed = simulate_stream(&mut source, &backend, scheduler, &config);
                let context = format!("{} / {}", backend.name(), scheduler.name());
                assert_eq!(eager.makespan(), streamed.makespan(), "{context}");
                assert_eq!(eager.stats, streamed.stats, "{context}");
                assert_eq!(eager.schedule, streamed.schedule, "{context}");
            }
        }
    }

    #[test]
    fn windowed_run_bounds_resident_specs_and_completes() {
        let w = chains_workload(5, 10, 15.0);
        let graph = TaskGraph::build(&w);
        for window in [1usize, 2, 7, 50] {
            let config = small_chip(4).with_trace_schedule().with_window(window);
            let mut source = WorkloadSource::new(&w);
            let report = simulate_stream(
                &mut source,
                &Backend::tdm_default(),
                SchedulerKind::Fifo,
                &config,
            );
            assert_eq!(report.stats.tasks_executed, 50, "window {window}");
            assert!(
                report.peak_resident_tasks <= window + 1,
                "window {window}: {} specs resident",
                report.peak_resident_tasks
            );
            assert!(
                graph.check_order(&report.finish_order()).is_ok(),
                "window {window}"
            );
        }
    }

    #[test]
    fn window_throttling_never_loses_tasks_on_software_backend() {
        let w = chains_workload(3, 12, 10.0);
        let config = small_chip(3).with_window(2);
        let mut source = WorkloadSource::new(&w);
        let report = simulate_stream(
            &mut source,
            &Backend::Software,
            SchedulerKind::Fifo,
            &config,
        );
        assert_eq!(report.stats.tasks_executed, 36);
        assert!(report.peak_resident_tasks <= 3);
    }

    #[test]
    fn eager_window_throttles_master_too() {
        // The window knob applies to the eager driver as well; a tight
        // window serializes creation against completion and (at worst)
        // lengthens the run, never deadlocks it.
        let w = independent_workload(30, 20.0);
        let wide = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &small_chip(4),
        );
        let narrow = simulate(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &small_chip(4).with_window(1),
        );
        assert_eq!(narrow.stats.tasks_executed, 30);
        assert!(narrow.makespan() >= wide.makespan());
    }

    #[test]
    fn with_window_clamps_to_one() {
        assert_eq!(ExecConfig::default().with_window(0).window, 1);
        assert_eq!(ExecConfig::default().with_window(9).window, 9);
        assert_eq!(ExecConfig::default().window, usize::MAX);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes_bit_exact() {
        let mut w = chains_workload(6, 8, 25.0);
        w.locality_benefit = 0.1;
        let chip = ChipConfig::default();
        let config = small_chip(6)
            .with_trace_schedule()
            .with_checkpoint_every(chip.micros(40.0));
        let straight = simulate(&w, &Backend::tdm_default(), SchedulerKind::Age, &config);

        let mut snaps: Vec<Snapshot> = Vec::new();
        let report = simulate_checkpointed(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Age,
            &config,
            &mut |snap| {
                snaps.push(snap);
                true
            },
        )
        .expect("sink never halts");
        // Capture never perturbs modeled time.
        assert_eq!(report, straight);
        assert!(snaps.len() >= 2, "expected several checkpoints");

        // Resuming from every checkpoint reproduces the uninterrupted report,
        // including a round trip through the binary container.
        for snap in &snaps {
            let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            let resumed = resume(&w, &snap, &config).unwrap();
            assert_eq!(resumed, straight);
        }
    }

    #[test]
    fn halted_stream_run_resumes_bit_exact() {
        let mut w = chains_workload(5, 10, 15.0);
        w.locality_benefit = 0.1;
        let chip = ChipConfig::default();
        let config = small_chip(4)
            .with_trace_schedule()
            .with_window(7)
            .with_checkpoint_every(chip.micros(120.0));

        let mut source = WorkloadSource::new(&w);
        let straight = simulate_stream(
            &mut source,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );

        // Halt at the second checkpoint.
        let mut halted_at: Option<Snapshot> = None;
        let mut seen = 0usize;
        let mut source = WorkloadSource::new(&w);
        let outcome = simulate_stream_checkpointed(
            &mut source,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
            &mut |snap| {
                seen += 1;
                if seen == 2 {
                    halted_at = Some(snap);
                    false
                } else {
                    true
                }
            },
        );
        assert!(outcome.is_none(), "sink halted the run");
        let snap = halted_at.expect("run reached the second checkpoint");

        // A *fresh* source is fast-forwarded to the snapshot's cursor.
        let mut fresh = WorkloadSource::new(&w);
        let resumed = resume_stream(&mut fresh, &snap, &config).unwrap();
        assert_eq!(resumed, straight);
    }

    #[test]
    fn resume_rejects_mismatched_config_and_wrong_entry_point() {
        let w = chains_workload(3, 6, 20.0);
        let chip = ChipConfig::default();
        let config = small_chip(4).with_checkpoint_every(chip.micros(50.0));
        let mut snaps = Vec::new();
        simulate_checkpointed(
            &w,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
            &mut |snap| {
                snaps.push(snap);
                true
            },
        )
        .unwrap();
        let snap = &snaps[0];

        // Different seed: refused with an error naming the knob.
        let mut other = config.clone();
        other.seed = 7;
        let err = resume(&w, snap, &other).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");

        // Different core count.
        let err = resume(
            &w,
            snap,
            &small_chip(8).with_checkpoint_every(chip.micros(50.0)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");

        // Different workload name.
        let mut renamed = w.clone();
        renamed.name = "other".to_string();
        let err = resume(&renamed, snap, &config).unwrap_err();
        assert!(err.to_string().contains("workload"), "{err}");

        // Eager snapshot through the streaming entry point.
        let mut source = WorkloadSource::new(&w);
        let err = resume_stream(&mut source, snap, &config).unwrap_err();
        assert!(err.to_string().contains("eager"), "{err}");
    }

    #[test]
    fn unset_checkpoint_every_never_calls_the_sink() {
        let w = independent_workload(10, 10.0);
        let config = small_chip(4);
        assert_eq!(config.checkpoint_every, None);
        let mut calls = 0usize;
        let report = simulate_checkpointed(
            &w,
            &Backend::Software,
            SchedulerKind::Fifo,
            &config,
            &mut |_| {
                calls += 1;
                true
            },
        )
        .unwrap();
        assert_eq!(calls, 0);
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn window_zero_behaves_exactly_like_window_one() {
        // The clamp is documented behaviour, not an accident: a directly
        // assigned `window = 0` (bypassing `with_window`) must produce the
        // same run as window 1, on both the eager and the streaming path.
        let w = chains_workload(3, 8, 20.0);
        let mut zero = small_chip(4).with_trace_schedule();
        zero.window = 0;
        let one = small_chip(4).with_trace_schedule().with_window(1);
        assert_eq!(one.window, 1);

        let eager_zero = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &zero);
        let eager_one = simulate(&w, &Backend::tdm_default(), SchedulerKind::Fifo, &one);
        assert_eq!(eager_zero, eager_one);
        assert_eq!(eager_zero.stats.tasks_executed, 24);

        let mut source = WorkloadSource::new(&w);
        let stream_zero = simulate_stream(
            &mut source,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &zero,
        );
        let mut source = WorkloadSource::new(&w);
        let stream_one = simulate_stream(
            &mut source,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &one,
        );
        assert_eq!(stream_zero, stream_one);
        // And the residency bound is the clamped window's, not 0+1 = 1.
        assert!(stream_zero.peak_resident_tasks <= 2);
    }
}
