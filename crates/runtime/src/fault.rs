//! Deterministic fault injection: seeded failure plans and the driver-side
//! fault bookkeeping that [`exec`](crate::exec) threads through a run.
//!
//! Two failure modes are modeled, both decided by **pure draws** under the
//! workspace's SplitMix64 seeding contract (every decision is a function of
//! the run seed and the decision's identity, never of shared RNG state):
//!
//! * **Transient task failures** — at a task's completion boundary a draw
//!   keyed by `(task, attempt)` decides whether the execution failed. A
//!   failed task never reaches the dependence engine's finish path, so its
//!   dependents stay blocked; the driver re-issues it after a deterministic
//!   modeled backoff, under a bounded retry budget
//!   ([`FaultConfig::retry_budget`]). Budget exhaustion surfaces as
//!   [`RunOutcome::Aborted`](crate::exec::RunOutcome::Aborted).
//! * **Sticky core faults** — at a worker core's completion boundary a draw
//!   keyed by `(core, completion index)` decides whether the core retires.
//!   The completing task is handled normally first (finish or transient
//!   failure); the core then stops picking work, never re-enters the idle
//!   set, and the remaining cores absorb its load. The master core is
//!   exempt, so a run can always make progress.
//!
//! Because the draws are pure per-decision functions, a fault rate of zero
//! is *bit-identical* to fault injection being disabled, and any fault
//! schedule replays identically across the eager, streaming and resumed
//! drivers (the `faults` conformance suite pins both).
//!
//! [`FaultState`] is the driver-side mutable record — per-task failure
//! counts, per-core completion counts, the retired-core bitmap and the
//! pending-retry queue — and serialises as the `FAULT` snapshot section so
//! checkpoint/resume is bit-identical through an injected fault (layout in
//! `SNAPSHOT_FORMAT.md`).

use tdm_sim::clock::Cycle;
use tdm_sim::rng::SplitMix64;
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

use crate::fast_map::FastMap;
use crate::task::TaskRef;

/// Stream-derivation constant for fault decisions: every fault draw seeds
/// from `ExecConfig::seed ^ FAULT_STREAM` (plus the decision's identity),
/// keeping the fault schedule independent of the duration-jitter stream
/// while remaining a pure function of the run seed.
pub const FAULT_STREAM: u64 = 0xFA17_5EED_0F0A_D117;

/// Salt separating transient-failure draws from core-retirement draws.
const TRANSIENT_SALT: u64 = 0x7A5C_FA11;
/// Salt for the sticky per-core retirement stream.
const RETIRE_SALT: u64 = 0xC04E_0FF1;

/// Configuration of the deterministic fault-injection subsystem
/// ([`ExecConfig::fault`](crate::exec::ExecConfig::fault)). The default is
/// fully quiescent (both rates zero), which is bit-identical to fault
/// injection being disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one execution attempt of a task fails, drawn
    /// independently per `(task, attempt)`. Clamped to `[0, 1]` by the
    /// builder; `1.0` fails every attempt up to
    /// [`max_faults_per_task`](FaultConfig::max_faults_per_task).
    pub fault_rate: f64,
    /// Hard cap on injected failures per task: once a task has failed this
    /// many times, further attempts always succeed. Keeps `fault_rate: 1.0`
    /// usable for regression tests (exactly this many failures, then
    /// success) and bounds worst-case retry storms.
    pub max_faults_per_task: u32,
    /// Maximum failures tolerated per task before the run aborts: the
    /// driver re-issues a failed task only while its failure count is at
    /// most this budget, and surfaces
    /// [`RunOutcome::Aborted`](crate::exec::RunOutcome::Aborted) otherwise.
    pub retry_budget: u32,
    /// Base modeled backoff delay before a failed task is re-queued; the
    /// n-th failure of a task waits `backoff × n` cycles (deterministic
    /// linear backoff).
    pub backoff: Cycle,
    /// Modeled cycles the executing core spends detecting and reporting a
    /// failed execution (charged as DEPS, like the finish path it
    /// replaces).
    pub detect_cost: Cycle,
    /// Probability that a worker core retires (sticky fault) at one of its
    /// completion boundaries, drawn independently per
    /// `(core, completion index)`. The master core never retires.
    pub core_fault_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            fault_rate: 0.0,
            max_faults_per_task: 1,
            retry_budget: 3,
            backoff: Cycle::new(10_000),
            detect_cost: Cycle::new(500),
            core_fault_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// Same configuration with the transient failure rate set (clamped to
    /// `[0, 1]`).
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Same configuration with the per-task failure cap set.
    pub fn with_max_faults_per_task(mut self, cap: u32) -> Self {
        self.max_faults_per_task = cap;
        self
    }

    /// Same configuration with the retry budget set.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Same configuration with the base backoff delay set.
    pub fn with_backoff(mut self, backoff: Cycle) -> Self {
        self.backoff = backoff;
        self
    }

    /// Same configuration with the failure-detection cost set.
    pub fn with_detect_cost(mut self, cost: Cycle) -> Self {
        self.detect_cost = cost;
        self
    }

    /// Same configuration with the sticky core-fault rate set (clamped to
    /// `[0, 1]`).
    pub fn with_core_fault_rate(mut self, rate: f64) -> Self {
        self.core_fault_rate = rate.clamp(0.0, 1.0);
        self
    }
}

// The FAULT section stores no configuration — `FaultConfig` is fingerprinted
// into META (`fault_hash`) instead — but `bench_scale` persists the flags it
// was launched with inside its BENCH section so a resume rebuilds the same
// fault schedule without re-passing them. Floats travel as IEEE-754 bits.
impl Persist for FaultConfig {
    fn save(&self, out: &mut Vec<u8>) {
        self.fault_rate.to_bits().save(out);
        self.max_faults_per_task.save(out);
        self.retry_budget.save(out);
        self.backoff.save(out);
        self.detect_cost.save(out);
        self.core_fault_rate.to_bits().save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let fault_rate = f64::from_bits(u64::load(r)?);
        let max_faults_per_task = u32::load(r)?;
        let retry_budget = u32::load(r)?;
        let backoff = Cycle::load(r)?;
        let detect_cost = Cycle::load(r)?;
        let core_fault_rate = f64::from_bits(u64::load(r)?);
        if !fault_rate.is_finite() || !core_fault_rate.is_finite() {
            return Err(SnapshotError::Corrupt {
                context: "fault configuration carries a non-finite rate".to_string(),
            });
        }
        Ok(FaultConfig {
            fault_rate,
            max_faults_per_task,
            retry_budget,
            backoff,
            detect_cost,
            core_fault_rate,
        })
    }
}

/// The seeded fault schedule of one run: pure decision functions derived
/// from `seed ^ FAULT_STREAM`. A plan holds no mutable state — the same
/// plan answers the same question identically however often it is asked,
/// which is what makes fault schedules replayable across the eager,
/// streaming and resumed drivers.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlan {
    /// Derives the fault schedule of a run from its `ExecConfig` seed.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan {
            seed: seed ^ FAULT_STREAM,
            config,
        }
    }

    /// The configuration this plan draws under.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// One uniform draw in `[0, 1)`, keyed by the decision's identity.
    fn draw(&self, salt: u64, a: u64, b: u64) -> f64 {
        let mut rng = SplitMix64::new(
            self.seed
                ^ salt
                ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        rng.next_f64()
    }

    /// Whether `task`'s execution attempt number `attempt` (0-based: the
    /// number of failures it has already suffered) fails. Always `false`
    /// once the per-task cap is reached.
    pub fn should_fail(&self, task: TaskRef, attempt: u32) -> bool {
        attempt < self.config.max_faults_per_task
            && self.draw(TRANSIENT_SALT, task.index() as u64, u64::from(attempt))
                < self.config.fault_rate
    }

    /// Whether `core` retires (sticky fault) at its `completion`-th
    /// completion boundary (0-based). The caller exempts the master core.
    pub fn should_retire(&self, core: usize, completion: u64) -> bool {
        self.draw(RETIRE_SALT, core as u64, completion) < self.config.core_fault_rate
    }

    /// Modeled delay before re-queueing a task that has now failed
    /// `failures` times: linear deterministic backoff.
    pub fn backoff_delay(&self, failures: u32) -> Cycle {
        self.config.backoff.scaled(u64::from(failures))
    }
}

/// One pending re-issue of a failed task, waiting for its backoff to
/// elapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryEntry {
    /// Cycle at which the task becomes eligible for re-queueing.
    pub due: Cycle,
    /// The failed task.
    pub task: TaskRef,
    /// Successor count the task's ready entry originally carried (the
    /// Successor scheduling policy orders by it, so the re-issued entry
    /// must preserve it).
    pub num_successors: u32,
}

impl Persist for RetryEntry {
    fn save(&self, out: &mut Vec<u8>) {
        self.due.save(out);
        self.task.save(out);
        self.num_successors.save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(RetryEntry {
            due: Cycle::load(r)?,
            task: TaskRef::load(r)?,
            num_successors: u32::load(r)?,
        })
    }
}

/// Driver-side mutable fault bookkeeping: failure counts, completion
/// counts, the retired-core bitmap, the pending-retry queue and the
/// run-level counters surfaced in
/// [`RunReport`](crate::exec::RunReport). Present (and checkpointed) even
/// when fault injection is disabled — it then stays all-zero, so the FAULT
/// snapshot section is deterministic either way.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    /// Injected-failure count per task index; only nonzero counts are kept.
    failures: FastMap<usize, u32>,
    /// Completion boundaries each core has reached (indexes the retirement
    /// draw stream).
    completions: Vec<u64>,
    /// Retired-core bitmap, one bit per core.
    retired: Vec<u64>,
    /// Failed tasks waiting out their backoff, in insertion order. Due
    /// times are *not* monotone across entries (backoff scales with the
    /// per-task failure count), so draining scans the whole queue.
    retry_queue: Vec<RetryEntry>,
    /// Total transient failures injected so far.
    pub faults_injected: u64,
    /// Total re-issues dispatched so far.
    pub retries: u64,
}

impl FaultState {
    /// Fresh all-zero state for a chip with `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        FaultState {
            failures: FastMap::default(),
            completions: vec![0; num_cores],
            retired: vec![0; num_cores.div_ceil(64)],
            retry_queue: Vec::new(),
            faults_injected: 0,
            retries: 0,
        }
    }

    /// Number of cores this state covers.
    pub fn num_cores(&self) -> usize {
        self.completions.len()
    }

    /// Advances `core`'s completion counter, returning the 0-based index of
    /// the boundary just reached (the retirement draw's key).
    pub fn record_completion(&mut self, core: usize) -> u64 {
        match self.completions.get_mut(core) {
            Some(count) => {
                let index = *count;
                *count += 1;
                index
            }
            None => 0,
        }
    }

    /// Failures injected into `task` so far.
    pub fn failure_count(&self, task: TaskRef) -> u32 {
        self.failures.get(&task.index()).copied().unwrap_or(0)
    }

    /// Records one more injected failure of `task`, returning the new
    /// count, and bumps the run-level fault counter.
    pub fn record_failure(&mut self, task: TaskRef) -> u32 {
        self.faults_injected += 1;
        let count = self.failures.entry(task.index()).or_insert(0);
        *count += 1;
        *count
    }

    /// Marks `core` as retired (sticky fault).
    pub fn retire(&mut self, core: usize) {
        if let Some(word) = self.retired.get_mut(core >> 6) {
            *word |= 1u64 << (core & 63);
        }
    }

    /// Whether `core` has retired.
    pub fn is_retired(&self, core: usize) -> bool {
        self.retired
            .get(core >> 6)
            .is_some_and(|word| word & (1u64 << (core & 63)) != 0)
    }

    /// Number of cores retired so far.
    pub fn retired_cores(&self) -> u64 {
        self.retired.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Queues a re-issue of `task` becoming due at `due`.
    pub fn push_retry(&mut self, due: Cycle, task: TaskRef, num_successors: u32) {
        self.retry_queue.push(RetryEntry {
            due,
            task,
            num_successors,
        });
    }

    /// Whether any re-issues are still pending.
    pub fn has_pending_retries(&self) -> bool {
        !self.retry_queue.is_empty()
    }

    /// Dispatches every queued re-issue that is due at `now`, in queue
    /// insertion order, handing each to `reissue` and returning how many
    /// were dispatched. Due times are non-monotone across entries, so the
    /// whole queue is scanned — a later entry must not be stranded behind
    /// an earlier one with a later due time.
    pub fn drain_due(&mut self, now: Cycle, mut reissue: impl FnMut(TaskRef, u32)) -> usize {
        let mut dispatched = 0usize;
        self.retry_queue.retain(|entry| {
            if entry.due <= now {
                reissue(entry.task, entry.num_successors);
                dispatched += 1;
                false
            } else {
                true
            }
        });
        self.retries += dispatched as u64;
        dispatched
    }
}

// Snapshot support (the FAULT section). The failure-count map is
// canonicalised to a key-sorted nonzero-only list (map iteration order is
// unobservable and must stay that way); the retry queue is written verbatim
// — its insertion order is observable through re-issue order.
impl Persist for FaultState {
    fn save(&self, out: &mut Vec<u8>) {
        let mut failures: Vec<(u64, u32)> = self
            .failures
            .iter()
            .filter(|(_, &count)| count > 0)
            .map(|(&task, &count)| (task as u64, count))
            .collect();
        failures.sort_unstable_by_key(|&(task, _)| task);
        failures.save(out);
        self.completions.save(out);
        self.retired.save(out);
        self.retry_queue.save(out);
        self.faults_injected.save(out);
        self.retries.save(out);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let pairs: Vec<(u64, u32)> = Vec::load(r)?;
        let mut failures = FastMap::default();
        for (task, count) in pairs {
            let index = usize::try_from(task).map_err(|_| SnapshotError::Corrupt {
                context: format!("FAULT failure count names task {task}, beyond usize"),
            })?;
            if count == 0 {
                return Err(SnapshotError::Corrupt {
                    context: format!("FAULT stores a zero failure count for task {index}"),
                });
            }
            if failures.insert(index, count).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: format!("FAULT lists task {index} twice"),
                });
            }
        }
        let completions = Vec::<u64>::load(r)?;
        let retired = Vec::<u64>::load(r)?;
        if retired.len() != completions.len().div_ceil(64) {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "FAULT retired bitmap has {} words for {} cores",
                    retired.len(),
                    completions.len()
                ),
            });
        }
        let retry_queue = Vec::<RetryEntry>::load(r)?;
        let faults_injected = u64::load(r)?;
        let retries = u64::load(r)?;
        Ok(FaultState {
            failures,
            completions,
            retired,
            retry_queue,
            faults_injected,
            retries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_sim::snapshot::{from_payload, to_payload};

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(42, FaultConfig::default().with_fault_rate(rate))
    }

    #[test]
    fn draws_are_pure_functions_of_identity() {
        let p = plan(0.5);
        for task in 0..64usize {
            for attempt in 0..2u32 {
                assert_eq!(
                    p.should_fail(TaskRef(task), attempt),
                    p.should_fail(TaskRef(task), attempt),
                );
            }
        }
        // A different seed yields a different schedule somewhere.
        let other = FaultPlan::new(43, FaultConfig::default().with_fault_rate(0.5));
        let a: Vec<bool> = (0..256).map(|i| p.should_fail(TaskRef(i), 0)).collect();
        let b: Vec<bool> = (0..256).map(|i| other.should_fail(TaskRef(i), 0)).collect();
        assert_ne!(a, b, "seeds 42 and 43 drew identical 256-task schedules");
    }

    #[test]
    fn rate_extremes_and_per_task_cap() {
        let never = plan(0.0);
        let always = plan(1.0);
        for task in 0..32usize {
            assert!(!never.should_fail(TaskRef(task), 0));
            assert!(always.should_fail(TaskRef(task), 0));
            // Default cap is 1 fault per task: the retry succeeds.
            assert!(!always.should_fail(TaskRef(task), 1));
        }
        let capped = FaultPlan::new(
            7,
            FaultConfig::default()
                .with_fault_rate(1.0)
                .with_max_faults_per_task(3),
        );
        assert!(capped.should_fail(TaskRef(0), 2));
        assert!(!capped.should_fail(TaskRef(0), 3));
    }

    #[test]
    fn rates_clamp_to_unit_interval() {
        let config = FaultConfig::default()
            .with_fault_rate(7.5)
            .with_core_fault_rate(-2.0);
        assert_eq!(config.fault_rate, 1.0);
        assert_eq!(config.core_fault_rate, 0.0);
    }

    #[test]
    fn backoff_is_linear_in_failure_count() {
        let p = FaultPlan::new(1, FaultConfig::default().with_backoff(Cycle::new(100)));
        assert_eq!(p.backoff_delay(1), Cycle::new(100));
        assert_eq!(p.backoff_delay(3), Cycle::new(300));
    }

    #[test]
    fn drain_respects_insertion_order_not_due_order() {
        let mut state = FaultState::new(4);
        // Inserted first, due later; inserted second, due earlier. A
        // front-only FIFO drain would strand the second entry.
        state.push_retry(Cycle::new(500), TaskRef(1), 2);
        state.push_retry(Cycle::new(100), TaskRef(2), 0);
        let mut order = Vec::new();
        let n = state.drain_due(Cycle::new(100), |task, _| order.push(task));
        assert_eq!(n, 1);
        assert_eq!(order, vec![TaskRef(2)]);
        assert!(state.has_pending_retries());
        let n = state.drain_due(Cycle::new(500), |task, _| order.push(task));
        assert_eq!(n, 1);
        assert_eq!(order, vec![TaskRef(2), TaskRef(1)]);
        assert!(!state.has_pending_retries());
        assert_eq!(state.retries, 2);
    }

    #[test]
    fn retirement_bitmap_and_counters() {
        let mut state = FaultState::new(70);
        assert!(!state.is_retired(69));
        state.retire(3);
        state.retire(69);
        assert!(state.is_retired(3));
        assert!(state.is_retired(69));
        assert_eq!(state.retired_cores(), 2);
        assert_eq!(state.record_completion(3), 0);
        assert_eq!(state.record_completion(3), 1);
        assert_eq!(state.record_completion(2), 0);
        assert_eq!(state.record_failure(TaskRef(9)), 1);
        assert_eq!(state.record_failure(TaskRef(9)), 2);
        assert_eq!(state.failure_count(TaskRef(9)), 2);
        assert_eq!(state.failure_count(TaskRef(8)), 0);
        assert_eq!(state.faults_injected, 2);
    }

    #[test]
    fn fault_state_round_trips_through_the_codec() {
        let mut state = FaultState::new(8);
        state.record_completion(1);
        state.record_completion(1);
        state.record_failure(TaskRef(5));
        state.record_failure(TaskRef(5));
        state.record_failure(TaskRef(2));
        state.retire(6);
        state.push_retry(Cycle::new(900), TaskRef(5), 4);
        state.push_retry(Cycle::new(300), TaskRef(2), 0);
        state.drain_due(Cycle::new(300), |_, _| {});
        let restored: FaultState =
            from_payload(&to_payload(&state), "FAULT").expect("round trip must decode");
        assert_eq!(restored, state);
    }

    #[test]
    fn fault_state_decoder_rejects_inconsistencies() {
        let mut state = FaultState::new(8);
        state.record_failure(TaskRef(1));
        let good = to_payload(&state);
        // Truncation anywhere must surface as an error, never a panic.
        for cut in 0..good.len() {
            assert!(from_payload::<FaultState>(&good[..cut], "FAULT").is_err());
        }
    }

    #[test]
    fn fault_config_round_trips_and_rejects_non_finite_rates() {
        let config = FaultConfig::default()
            .with_fault_rate(0.25)
            .with_retry_budget(9)
            .with_core_fault_rate(0.0625);
        let restored: FaultConfig =
            from_payload(&to_payload(&config), "BENCH").expect("round trip must decode");
        assert_eq!(restored, config);
        let mut evil = config.clone();
        evil.fault_rate = f64::NAN;
        assert!(from_payload::<FaultConfig>(&to_payload(&evil), "BENCH").is_err());
    }
}
