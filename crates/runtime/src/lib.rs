//! # tdm-runtime — task-based data-flow runtime system and execution driver
//!
//! This crate models the software side of the TDM reproduction: the
//! OpenMP-4.0-style task runtime that the paper's Nanos++ baseline
//! represents. It provides:
//!
//! * the program-level task and workload model ([`task`]),
//! * pull-based task sources for streaming (windowed) execution
//!   ([`stream`]), including a line-format trace front-end that replays
//!   dumped task graphs ([`trace`]),
//! * the reference Task Dependence Graph used both by the software runtime
//!   and as the golden model for the DMU ([`tdg`]),
//! * the cycle cost model of runtime operations ([`cost`]),
//! * the five software scheduling policies of Section VI ([`scheduler`]),
//! * the dependence-management backends — pure software, TDM's DMU, Carbon
//!   and Task Superscalar ([`engine`]),
//! * deterministic fault injection — seeded transient task failures with
//!   bounded retry, and sticky core faults with graceful degradation
//!   ([`fault`]),
//! * and the discrete-event execution driver that ties everything to the
//!   simulated 32-core chip and produces per-phase time breakdowns
//!   ([`exec`]). It runs either eagerly over a materialised [`Workload`]
//!   ([`simulate`]) or lazily over a task stream through the windowed
//!   master ([`simulate_stream`]), which keeps memory bounded by
//!   [`ExecConfig::window`](exec::ExecConfig::window) for million-task
//!   regions.
//!
//! # Example
//!
//! ```
//! use tdm_runtime::exec::{simulate, Backend, ExecConfig, RunReport};
//! use tdm_runtime::scheduler::SchedulerKind;
//! use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};
//! use tdm_sim::clock::Cycle;
//!
//! // Two tasks: a producer and a consumer of the same block.
//! let workload = Workload::new(
//!     "tiny",
//!     vec![
//!         TaskSpec::new("produce", Cycle::new(200_000), vec![DependenceSpec::output(0xA000, 4096)]),
//!         TaskSpec::new("consume", Cycle::new(200_000), vec![DependenceSpec::input(0xA000, 4096)]),
//!     ],
//! );
//! let config = ExecConfig::default().with_cores(4);
//! let report: RunReport = simulate(&workload, &Backend::tdm_default(), SchedulerKind::Fifo, &config);
//! assert_eq!(report.stats.tasks_executed, 2);
//! // The consumer serializes after the producer, so the region takes about
//! // two task bodies, not one (durations carry a small default jitter).
//! assert!(report.makespan() > Cycle::new(350_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod engine;
pub mod exec;
pub mod fault;
pub(crate) use tdm_sim::fast_map;
pub mod scheduler;
pub mod stream;
pub mod task;
pub mod tdg;
pub mod trace;

pub use cost::CostModel;
pub use engine::{DependenceEngine, HardwareEngine, HardwareFlavor, SoftwareEngine};
pub use exec::{
    simulate, simulate_outcome, simulate_stream, simulate_stream_outcome, Backend, ExecConfig,
    RunOutcome, RunReport, ScheduledTask,
};
pub use fault::{FaultConfig, FaultPlan, FaultState};
pub use scheduler::{ReadyEntry, Scheduler, SchedulerKind};
pub use stream::{TaskSource, WorkloadSource};
pub use task::{DependenceSpec, TaskRef, TaskSpec, Workload};
pub use tdg::TaskGraph;
