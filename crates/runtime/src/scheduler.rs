//! Software task schedulers.
//!
//! With TDM, ready tasks are handed to the runtime system, which is free to
//! organise them in any software data structure and apply any policy —
//! that flexibility is the paper's central argument. Section VI evaluates
//! five policies, reproduced here:
//!
//! * **FIFO** — run tasks in the order they became ready.
//! * **LIFO** — run the most recently readied task first.
//! * **Locality** — prefer a ready successor of the task that just finished
//!   on the requesting core, to reuse the data it produced.
//! * **Successor** — two-level priority by successor count: tasks with many
//!   successors unlock more parallelism and run first.
//! * **Age** — run the task that was *created* earliest (FIFO orders by
//!   readiness time, Age by program order).
//!
//! The same implementations are used by every backend; Carbon and Task
//! Superscalar hard-wire FIFO because their queue lives in hardware.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;

use crate::task::TaskRef;

/// A ready task as seen by a scheduler, with the metadata the policies need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyEntry {
    /// The ready task.
    pub task: TaskRef,
    /// Number of successors the dependence tracker has registered for it
    /// (used by the Successor policy; the DMU returns it in
    /// `get_ready_task`).
    pub num_successors: u32,
    /// Program-order creation index (used by the Age policy).
    pub creation_seq: usize,
    /// Simulated time at which the task became ready.
    pub ready_at: Cycle,
    /// Core that executed the predecessor whose completion made this task
    /// ready; `None` for tasks that were ready at creation.
    pub producer_core: Option<usize>,
}

/// A software scheduling policy over a pool of ready tasks.
///
/// `pop` receives the requesting core so locality-aware policies can take
/// placement into account.
///
/// Schedulers are `Send` so a whole simulation point (driver, engine, pool)
/// can run on a sweep worker thread; each run owns its pool exclusively.
pub trait Scheduler: Send {
    /// Human-readable policy name (matches the labels used in Figure 12).
    fn name(&self) -> &'static str;

    /// Adds a ready task to the pool.
    fn push(&mut self, entry: ReadyEntry);

    /// Selects and removes the next task for `core`, or `None` if the pool
    /// is empty.
    fn pop(&mut self, core: usize) -> Option<ReadyEntry>;

    /// Number of tasks currently in the pool.
    fn len(&self) -> usize;

    /// True if the pool is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Scheduler selection, used by harnesses and examples to construct policies
/// by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-in first-out by readiness time.
    Fifo,
    /// Last-in first-out by readiness time.
    Lifo,
    /// Prefer successors of the task that just ran on the requesting core.
    Locality,
    /// Two-level priority by successor count.
    Successor {
        /// Tasks with at least this many successors are high priority.
        threshold: u32,
    },
    /// Oldest creation time first.
    Age,
}

impl SchedulerKind {
    /// All policies evaluated in the paper, in the order of Figure 12.
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Locality,
            SchedulerKind::Successor { threshold: 2 },
            SchedulerKind::Age,
        ]
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "FIFO",
            SchedulerKind::Lifo => "LIFO",
            SchedulerKind::Locality => "Locality",
            SchedulerKind::Successor { .. } => "Successor",
            SchedulerKind::Age => "Age",
        }
    }

    /// Builds a fresh scheduler implementing this policy.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::Lifo => Box::new(LifoScheduler::new()),
            SchedulerKind::Locality => Box::new(LocalityScheduler::new()),
            SchedulerKind::Successor { threshold } => Box::new(SuccessorScheduler::new(threshold)),
            SchedulerKind::Age => Box::new(AgeScheduler::new()),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// First-in first-out scheduler: tasks run in the order they became ready.
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler {
    queue: VecDeque<ReadyEntry>,
}

impl FifoScheduler {
    /// Creates an empty FIFO pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.queue.push_back(entry);
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Last-in first-out scheduler: the most recently readied task runs first.
#[derive(Debug, Clone, Default)]
pub struct LifoScheduler {
    stack: Vec<ReadyEntry>,
}

impl LifoScheduler {
    /// Creates an empty LIFO pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    fn name(&self) -> &'static str {
        "LIFO"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.stack.push(entry);
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Locality-aware scheduler (Section VI): when a task finishes on a core and
/// one of its successors is ready, that successor is executed on the same
/// core; otherwise the oldest ready task is used.
#[derive(Debug, Clone, Default)]
pub struct LocalityScheduler {
    queue: VecDeque<ReadyEntry>,
}

impl LocalityScheduler {
    /// Creates an empty locality-aware pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LocalityScheduler {
    fn name(&self) -> &'static str {
        "Locality"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.queue.push_back(entry);
    }

    fn pop(&mut self, core: usize) -> Option<ReadyEntry> {
        if let Some(pos) = self
            .queue
            .iter()
            .position(|e| e.producer_core == Some(core))
        {
            return self.queue.remove(pos);
        }
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Successor-count priority scheduler (Section VI): tasks whose successor
/// count reaches the threshold go to a high-priority queue that is always
/// drained first.
#[derive(Debug, Clone)]
pub struct SuccessorScheduler {
    high: VecDeque<ReadyEntry>,
    low: VecDeque<ReadyEntry>,
    threshold: u32,
}

impl SuccessorScheduler {
    /// Creates an empty pool with the given high-priority threshold.
    pub fn new(threshold: u32) -> Self {
        SuccessorScheduler {
            high: VecDeque::new(),
            low: VecDeque::new(),
            threshold,
        }
    }

    /// The configured high-priority threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl Scheduler for SuccessorScheduler {
    fn name(&self) -> &'static str {
        "Successor"
    }

    fn push(&mut self, entry: ReadyEntry) {
        if entry.num_successors >= self.threshold {
            self.high.push_back(entry);
        } else {
            self.low.push_back(entry);
        }
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.high.pop_front().or_else(|| self.low.pop_front())
    }

    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

/// Age scheduler (Section VI): the ready pool is ordered by task creation
/// time, so older tasks run before younger ones regardless of when they
/// became ready.
#[derive(Debug, Clone, Default)]
pub struct AgeScheduler {
    // Min-heap on creation sequence number.
    heap: BinaryHeap<Reverse<(usize, OrderedEntry)>>,
}

/// Wrapper giving [`ReadyEntry`] a total order for use inside the heap
/// (ordered by creation sequence, then task index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OrderedEntry(ReadyEntry);

impl PartialOrd for OrderedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.creation_seq, self.0.task.index())
            .cmp(&(other.0.creation_seq, other.0.task.index()))
    }
}

impl AgeScheduler {
    /// Creates an empty age-ordered pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for AgeScheduler {
    fn name(&self) -> &'static str {
        "Age"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.heap
            .push(Reverse((entry.creation_seq, OrderedEntry(entry))));
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.heap.pop().map(|Reverse((_, OrderedEntry(e)))| e)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task: usize, seq: usize, succ: u32, producer: Option<usize>) -> ReadyEntry {
        ReadyEntry {
            task: TaskRef(task),
            num_successors: succ,
            creation_seq: seq,
            ready_at: Cycle::new(seq as u64 * 10),
            producer_core: producer,
        }
    }

    #[test]
    fn fifo_pops_in_push_order() {
        let mut s = FifoScheduler::new();
        for i in 0..5 {
            s.push(entry(i, i, 0, None));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn lifo_pops_in_reverse_order() {
        let mut s = LifoScheduler::new();
        for i in 0..5 {
            s.push(entry(i, i, 0, None));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn locality_prefers_same_core_producer() {
        let mut s = LocalityScheduler::new();
        s.push(entry(0, 0, 0, Some(3)));
        s.push(entry(1, 1, 0, Some(7)));
        s.push(entry(2, 2, 0, Some(3)));
        // Core 7 gets its own successor even though it is not the oldest.
        assert_eq!(s.pop(7).unwrap().task, TaskRef(1));
        // Core 5 has no successor in the pool: falls back to FIFO.
        assert_eq!(s.pop(5).unwrap().task, TaskRef(0));
        assert_eq!(s.pop(3).unwrap().task, TaskRef(2));
    }

    #[test]
    fn locality_falls_back_to_fifo_for_root_tasks() {
        let mut s = LocalityScheduler::new();
        s.push(entry(0, 0, 0, None));
        s.push(entry(1, 1, 0, None));
        assert_eq!(s.pop(0).unwrap().task, TaskRef(0));
        assert_eq!(s.pop(0).unwrap().task, TaskRef(1));
    }

    #[test]
    fn successor_priority_queues() {
        let mut s = SuccessorScheduler::new(2);
        s.push(entry(0, 0, 0, None)); // low
        s.push(entry(1, 1, 5, None)); // high
        s.push(entry(2, 2, 1, None)); // low
        s.push(entry(3, 3, 2, None)); // high
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(s.threshold(), 2);
    }

    #[test]
    fn age_orders_by_creation_not_readiness() {
        let mut s = AgeScheduler::new();
        // Pushed (became ready) out of creation order.
        s.push(entry(5, 5, 0, None));
        s.push(entry(1, 1, 0, None));
        s.push(entry(3, 3, 0, None));
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn kind_builds_matching_scheduler() {
        for kind in SchedulerKind::all() {
            let s = kind.build();
            assert_eq!(s.name(), kind.name());
            assert!(s.is_empty());
        }
        assert_eq!(SchedulerKind::Fifo.to_string(), "FIFO");
        assert_eq!(
            SchedulerKind::Successor { threshold: 2 }.name(),
            "Successor"
        );
    }

    #[test]
    fn all_policies_drain_everything_they_receive() {
        for kind in SchedulerKind::all() {
            let mut s = kind.build();
            for i in 0..20 {
                s.push(entry(i, 19 - i, (i % 4) as u32, Some(i % 3)));
            }
            assert_eq!(s.len(), 20);
            let mut seen: Vec<usize> = std::iter::from_fn(|| s.pop(1))
                .map(|e| e.task.index())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "policy {}", kind.name());
        }
    }
}
