//! Software task schedulers.
//!
//! With TDM, ready tasks are handed to the runtime system, which is free to
//! organise them in any software data structure and apply any policy —
//! that flexibility is the paper's central argument. Section VI evaluates
//! five policies, reproduced here:
//!
//! * **FIFO** — run tasks in the order they became ready.
//! * **LIFO** — run the most recently readied task first.
//! * **Locality** — prefer a ready successor of the task that just finished
//!   on the requesting core, to reuse the data it produced.
//! * **Successor** — two-level priority by successor count: tasks with many
//!   successors unlock more parallelism and run first.
//! * **Age** — run the task that was *created* earliest (FIFO orders by
//!   readiness time, Age by program order).
//!
//! The same implementations are used by every backend; Carbon and Task
//! Superscalar hard-wire FIFO because their queue lives in hardware.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use tdm_sim::clock::Cycle;
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

use crate::task::TaskRef;

/// A ready task as seen by a scheduler, with the metadata the policies need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyEntry {
    /// The ready task.
    pub task: TaskRef,
    /// Number of successors the dependence tracker has registered for it
    /// (used by the Successor policy; the DMU returns it in
    /// `get_ready_task`).
    pub num_successors: u32,
    /// Program-order creation index (used by the Age policy).
    pub creation_seq: usize,
    /// Simulated time at which the task became ready.
    pub ready_at: Cycle,
    /// Core that executed the predecessor whose completion made this task
    /// ready; `None` for tasks that were ready at creation.
    pub producer_core: Option<usize>,
}

/// A software scheduling policy over a pool of ready tasks.
///
/// `pop` receives the requesting core so locality-aware policies can take
/// placement into account.
///
/// Schedulers are `Send` so a whole simulation point (driver, engine, pool)
/// can run on a sweep worker thread; each run owns its pool exclusively.
pub trait Scheduler: Send {
    /// Human-readable policy name (matches the labels used in Figure 12).
    fn name(&self) -> &'static str;

    /// Adds a ready task to the pool.
    fn push(&mut self, entry: ReadyEntry);

    /// Selects and removes the next task for `core`, or `None` if the pool
    /// is empty.
    fn pop(&mut self, core: usize) -> Option<ReadyEntry>;

    /// Number of tasks currently in the pool.
    fn len(&self) -> usize;

    /// True if the pool is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the pool's contents for a checkpoint (the `SCHEDULER`
    /// snapshot section). Entries are written in the policy's internal order
    /// so a restored pool pops identically.
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores the pool's contents from a checkpoint. The receiver must be
    /// freshly built (empty) with the same policy parameters.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError>;
}

/// Scheduler selection, used by harnesses and examples to construct policies
/// by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-in first-out by readiness time.
    Fifo,
    /// Last-in first-out by readiness time.
    Lifo,
    /// Prefer successors of the task that just ran on the requesting core.
    Locality,
    /// Two-level priority by successor count.
    Successor {
        /// Tasks with at least this many successors are high priority.
        threshold: u32,
    },
    /// Oldest creation time first.
    Age,
}

impl SchedulerKind {
    /// All policies evaluated in the paper, in the order of Figure 12.
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Locality,
            SchedulerKind::Successor { threshold: 2 },
            SchedulerKind::Age,
        ]
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "FIFO",
            SchedulerKind::Lifo => "LIFO",
            SchedulerKind::Locality => "Locality",
            SchedulerKind::Successor { .. } => "Successor",
            SchedulerKind::Age => "Age",
        }
    }

    /// Builds a fresh scheduler implementing this policy.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::Lifo => Box::new(LifoScheduler::new()),
            SchedulerKind::Locality => Box::new(LocalityScheduler::new()),
            SchedulerKind::Successor { threshold } => Box::new(SuccessorScheduler::new(threshold)),
            SchedulerKind::Age => Box::new(AgeScheduler::new()),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Snapshot support: ready entries and the policy selector travel in the
// `SCHEDULER` and `META` snapshot sections respectively.

impl Persist for ReadyEntry {
    fn save(&self, out: &mut Vec<u8>) {
        self.task.save(out);
        self.num_successors.save(out);
        self.creation_seq.save(out);
        self.ready_at.save(out);
        self.producer_core.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ReadyEntry {
            task: TaskRef::load(r)?,
            num_successors: u32::load(r)?,
            creation_seq: usize::load(r)?,
            ready_at: Cycle::load(r)?,
            producer_core: Option::load(r)?,
        })
    }
}

impl Persist for SchedulerKind {
    fn save(&self, out: &mut Vec<u8>) {
        match *self {
            SchedulerKind::Fifo => 0u8.save(out),
            SchedulerKind::Lifo => 1u8.save(out),
            SchedulerKind::Locality => 2u8.save(out),
            SchedulerKind::Successor { threshold } => {
                3u8.save(out);
                threshold.save(out);
            }
            SchedulerKind::Age => 4u8.save(out),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(SchedulerKind::Fifo),
            1 => Ok(SchedulerKind::Lifo),
            2 => Ok(SchedulerKind::Locality),
            3 => Ok(SchedulerKind::Successor {
                threshold: u32::load(r)?,
            }),
            4 => Ok(SchedulerKind::Age),
            tag => Err(SnapshotError::Corrupt {
                context: format!("unknown scheduler kind tag {tag}"),
            }),
        }
    }
}

/// First-in first-out scheduler: tasks run in the order they became ready.
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler {
    queue: VecDeque<ReadyEntry>,
}

impl FifoScheduler {
    /// Creates an empty FIFO pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.queue.push_back(entry);
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.queue.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.queue = VecDeque::load(r)?;
        Ok(())
    }
}

/// Last-in first-out scheduler: the most recently readied task runs first.
#[derive(Debug, Clone, Default)]
pub struct LifoScheduler {
    stack: Vec<ReadyEntry>,
}

impl LifoScheduler {
    /// Creates an empty LIFO pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    fn name(&self) -> &'static str {
        "LIFO"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.stack.push(entry);
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.stack.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.stack = Vec::load(r)?;
        Ok(())
    }
}

/// Locality-aware scheduler (Section VI): when a task finishes on a core and
/// one of its successors is ready, that successor is executed on the same
/// core; otherwise the oldest ready task is used.
#[derive(Debug, Clone, Default)]
pub struct LocalityScheduler {
    queue: VecDeque<ReadyEntry>,
}

impl LocalityScheduler {
    /// Creates an empty locality-aware pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LocalityScheduler {
    fn name(&self) -> &'static str {
        "Locality"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.queue.push_back(entry);
    }

    fn pop(&mut self, core: usize) -> Option<ReadyEntry> {
        if let Some(pos) = self
            .queue
            .iter()
            .position(|e| e.producer_core == Some(core))
        {
            return self.queue.remove(pos);
        }
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.queue.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.queue = VecDeque::load(r)?;
        Ok(())
    }
}

/// Successor-count priority scheduler (Section VI): tasks whose successor
/// count reaches the threshold go to a high-priority queue that is always
/// drained first.
#[derive(Debug, Clone)]
pub struct SuccessorScheduler {
    high: VecDeque<ReadyEntry>,
    low: VecDeque<ReadyEntry>,
    threshold: u32,
}

impl SuccessorScheduler {
    /// Creates an empty pool with the given high-priority threshold.
    pub fn new(threshold: u32) -> Self {
        SuccessorScheduler {
            high: VecDeque::new(),
            low: VecDeque::new(),
            threshold,
        }
    }

    /// The configured high-priority threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl Scheduler for SuccessorScheduler {
    fn name(&self) -> &'static str {
        "Successor"
    }

    fn push(&mut self, entry: ReadyEntry) {
        if entry.num_successors >= self.threshold {
            self.high.push_back(entry);
        } else {
            self.low.push_back(entry);
        }
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.high.pop_front().or_else(|| self.low.pop_front())
    }

    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.threshold.save(out);
        self.high.save(out);
        self.low.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let threshold = u32::load(r)?;
        if threshold != self.threshold {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "snapshot was taken with successor threshold {threshold}, \
                     but the scheduler was built with {}",
                    self.threshold
                ),
            });
        }
        self.high = VecDeque::load(r)?;
        self.low = VecDeque::load(r)?;
        Ok(())
    }
}

/// Age scheduler (Section VI): the ready pool is ordered by task creation
/// time, so older tasks run before younger ones regardless of when they
/// became ready.
///
/// The pool exploits that `creation_seq` is the task's program-order index,
/// assigned in nondecreasing order by the driver: instead of a
/// comparison-based `BinaryHeap`, entries live in a monotonic ring buffer
/// (`SeqRing` below) indexed by sequence number, with an occupancy bitmap and a
/// lower-bound cursor that only moves forward as minima are popped —
/// O(1) amortized push/pop with no per-entry comparisons on the hot path.
#[derive(Debug, Clone, Default)]
pub struct AgeScheduler {
    ring: SeqRing,
}

impl AgeScheduler {
    /// Creates an empty age-ordered pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for AgeScheduler {
    fn name(&self) -> &'static str {
        "Age"
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.ring.push(entry);
    }

    fn pop(&mut self, _core: usize) -> Option<ReadyEntry> {
        self.ring.pop_min()
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    // The ring is written field-for-field (slots, bitmap, window bounds)
    // rather than as a drained entry list, so the restored pool is not just
    // behaviourally equivalent but structurally identical — capacity and
    // window position included.
    fn save_state(&self, out: &mut Vec<u8>) {
        self.ring.slots.save(out);
        self.ring.bits.save(out);
        self.ring.lo.save(out);
        self.ring.hi.save(out);
        self.ring.len.save(out);
        self.ring.dups.save(out);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let slots: Vec<Option<ReadyEntry>> = Vec::load(r)?;
        let bits: Vec<u64> = Vec::load(r)?;
        let lo = usize::load(r)?;
        let hi = usize::load(r)?;
        let len = usize::load(r)?;
        let dups: Vec<ReadyEntry> = Vec::load(r)?;
        let live = slots.iter().filter(|s| s.is_some()).count();
        let occupancy: u32 = bits.iter().map(|w| w.count_ones()).sum();
        if !(slots.len().is_power_of_two() || slots.is_empty())
            || bits.len() * 64 != slots.len()
            || occupancy as usize != live
            || live + dups.len() != len
        {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "age ring inconsistent: {} slots, {live} live, \
                     {occupancy} occupancy bits, {} duplicates, len {len}",
                    slots.len(),
                    dups.len()
                ),
            });
        }
        self.ring = SeqRing {
            slots,
            bits,
            lo,
            hi,
            len,
            dups,
        };
        Ok(())
    }
}

/// A sliding-window priority pool over the dense `creation_seq` space.
///
/// Live entries occupy a power-of-two ring of slots addressed by
/// `seq & (capacity - 1)` plus one occupancy bit each; the structural
/// invariant is that every live sequence lies in `[lo, lo + capacity)`
/// (the ring grows before it is violated), so a set bit maps back to its
/// absolute sequence unambiguously. `pop_min` finds the first set bit at or
/// after `lo` with masked `trailing_zeros` scans and advances `lo` past it;
/// a push below `lo` (a task readied out of order) simply lowers `lo`.
///
/// The driver's `creation_seq` is the unique task index, but the structure
/// stays total for arbitrary callers: duplicate sequences overflow into a
/// side list consulted on pop (ordered like the retired heap, by
/// `(creation_seq, task index)`).
#[derive(Debug, Clone, Default)]
struct SeqRing {
    /// `capacity` slots; `None` = free. Kept in lockstep with `bits`.
    slots: Vec<Option<ReadyEntry>>,
    /// One bit per slot, 64 slots per word.
    bits: Vec<u64>,
    /// Lower bound: no live sequence is below `lo`, and all are below
    /// `lo + capacity`.
    lo: usize,
    /// Highest live sequence seen since the pool was last empty (upper
    /// bound; used only to size growth).
    hi: usize,
    /// Total live entries, duplicates included.
    len: usize,
    /// Entries whose sequence collided with a live slot (never produced by
    /// the execution driver; kept so the pool stays total).
    dups: Vec<ReadyEntry>,
}

/// The retired heap's ordering key.
fn age_key(e: &ReadyEntry) -> (usize, usize) {
    (e.creation_seq, e.task.index())
}

impl SeqRing {
    const MIN_CAPACITY: usize = 64;

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, entry: ReadyEntry) {
        let seq = entry.creation_seq;
        if self.len == 0 {
            // Empty pool: reposition the window freely.
            self.lo = seq;
            self.hi = seq;
        } else {
            self.lo = self.lo.min(seq);
            self.hi = self.hi.max(seq);
        }
        let span = self.hi - self.lo + 1;
        if span > self.slots.len() {
            self.grow(span);
        }
        let mask = self.slots.len() - 1;
        let slot = &mut self.slots[seq & mask];
        if let Some(existing) = slot {
            debug_assert_eq!(
                existing.creation_seq, seq,
                "ring invariant broken: distinct live sequences alias one slot"
            );
            self.dups.push(entry);
        } else {
            *slot = Some(entry);
            let words = self.bits.len();
            self.bits[(seq >> 6) & (words - 1)] |= 1u64 << (seq & 63);
        }
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<ReadyEntry> {
        if self.len == 0 {
            return None;
        }
        let ring_min = self.ring_min_seq();
        // Fast path: no duplicates pending (always, for the driver).
        if self.dups.is_empty() {
            return Some(self.take(ring_min.expect("non-empty ring without duplicates")));
        }
        let best_dup = (0..self.dups.len())
            .min_by_key(|&i| age_key(&self.dups[i]))
            .expect("dups checked non-empty");
        match ring_min {
            Some(seq)
                if age_key(
                    self.slots[seq & (self.slots.len() - 1)]
                        .as_ref()
                        .expect("occupancy bit set on an empty slot"),
                ) <= age_key(&self.dups[best_dup]) =>
            {
                Some(self.take(seq))
            }
            _ => {
                self.len -= 1;
                Some(self.dups.swap_remove(best_dup))
            }
        }
    }

    /// Absolute sequence of the smallest live *slot* entry, `None` when
    /// every live entry is a duplicate.
    fn ring_min_seq(&self) -> Option<usize> {
        if self.len == self.dups.len() {
            return None;
        }
        let capacity = self.slots.len();
        let words = self.bits.len();
        let lo_word = self.lo >> 6;
        let lo_bit = self.lo & 63;
        // Scan at most one full wrap: the first word masked below `lo`, and
        // after `words` steps the first word again for the wrapped residues.
        for step in 0..=words {
            let word_index = (lo_word + step) & (words - 1);
            let mut word = self.bits[word_index];
            if step == 0 {
                word &= !0u64 << lo_bit;
            } else if step == words {
                word &= !(!0u64 << lo_bit);
            }
            if word == 0 {
                continue;
            }
            let residue = (word_index << 6) | word.trailing_zeros() as usize;
            let lo_residue = self.lo & (capacity - 1);
            let offset = if residue >= lo_residue {
                residue - lo_residue
            } else {
                residue + capacity - lo_residue
            };
            return Some(self.lo + offset);
        }
        None
    }

    /// Removes and returns the slot entry at absolute sequence `seq`,
    /// advancing the window's lower bound past it.
    fn take(&mut self, seq: usize) -> ReadyEntry {
        let mask = self.slots.len() - 1;
        let entry = self.slots[seq & mask]
            .take()
            .expect("occupancy bit set on an empty slot");
        let words = self.bits.len();
        self.bits[(seq >> 6) & (words - 1)] &= !(1u64 << (seq & 63));
        self.len -= 1;
        self.lo = seq + 1;
        entry
    }

    /// Reallocates to cover at least `span` sequences, re-filing live slot
    /// entries under the new mask (collision-free by construction).
    fn grow(&mut self, span: usize) {
        let capacity = span.next_power_of_two().max(Self::MIN_CAPACITY);
        let mut live: Vec<ReadyEntry> = Vec::with_capacity(self.len - self.dups.len());
        live.extend(self.slots.drain(..).flatten());
        self.slots = vec![None; capacity];
        self.bits = vec![0; capacity / 64];
        let mask = capacity - 1;
        let words = self.bits.len();
        for entry in live {
            let seq = entry.creation_seq;
            self.slots[seq & mask] = Some(entry);
            self.bits[(seq >> 6) & (words - 1)] |= 1u64 << (seq & 63);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task: usize, seq: usize, succ: u32, producer: Option<usize>) -> ReadyEntry {
        ReadyEntry {
            task: TaskRef(task),
            num_successors: succ,
            creation_seq: seq,
            ready_at: Cycle::new(seq as u64 * 10),
            producer_core: producer,
        }
    }

    #[test]
    fn fifo_pops_in_push_order() {
        let mut s = FifoScheduler::new();
        for i in 0..5 {
            s.push(entry(i, i, 0, None));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn lifo_pops_in_reverse_order() {
        let mut s = LifoScheduler::new();
        for i in 0..5 {
            s.push(entry(i, i, 0, None));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn locality_prefers_same_core_producer() {
        let mut s = LocalityScheduler::new();
        s.push(entry(0, 0, 0, Some(3)));
        s.push(entry(1, 1, 0, Some(7)));
        s.push(entry(2, 2, 0, Some(3)));
        // Core 7 gets its own successor even though it is not the oldest.
        assert_eq!(s.pop(7).unwrap().task, TaskRef(1));
        // Core 5 has no successor in the pool: falls back to FIFO.
        assert_eq!(s.pop(5).unwrap().task, TaskRef(0));
        assert_eq!(s.pop(3).unwrap().task, TaskRef(2));
    }

    #[test]
    fn locality_falls_back_to_fifo_for_root_tasks() {
        let mut s = LocalityScheduler::new();
        s.push(entry(0, 0, 0, None));
        s.push(entry(1, 1, 0, None));
        assert_eq!(s.pop(0).unwrap().task, TaskRef(0));
        assert_eq!(s.pop(0).unwrap().task, TaskRef(1));
    }

    #[test]
    fn successor_priority_queues() {
        let mut s = SuccessorScheduler::new(2);
        s.push(entry(0, 0, 0, None)); // low
        s.push(entry(1, 1, 5, None)); // high
        s.push(entry(2, 2, 1, None)); // low
        s.push(entry(3, 3, 2, None)); // high
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(s.threshold(), 2);
    }

    /// The retired comparison-based Age pool, kept as the lockstep
    /// reference for [`SeqRing`] (the same pattern as
    /// `NaiveEventQueue` / `NaiveListArray`).
    #[derive(Default)]
    struct NaiveAgeScheduler {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize, OrderedEntry)>>,
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    struct OrderedEntry(ReadyEntry);

    impl PartialOrd for OrderedEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for OrderedEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.0.creation_seq, self.0.task.index())
                .cmp(&(other.0.creation_seq, other.0.task.index()))
        }
    }

    impl NaiveAgeScheduler {
        fn push(&mut self, entry: ReadyEntry) {
            self.heap.push(std::cmp::Reverse((
                entry.creation_seq,
                entry.task.index(),
                OrderedEntry(entry),
            )));
        }

        fn pop(&mut self) -> Option<ReadyEntry> {
            self.heap.pop().map(|std::cmp::Reverse((_, _, e))| e.0)
        }
    }

    /// Lockstep-randomized equivalence: the ring-buffer Age pool against
    /// the retired heap, under out-of-order readiness (pushes with
    /// sequences far below the window after pops), duplicate sequences,
    /// empty/refill transitions and forced ring growth.
    #[test]
    fn age_ring_matches_naive_heap_in_lockstep() {
        use tdm_sim::rng::SplitMix64;

        for seed in 0..12u64 {
            let mut rng = SplitMix64::new(seed ^ 0xA6E);
            let mut ring = AgeScheduler::new();
            let mut naive = NaiveAgeScheduler::default();
            let mut next_seq = 0usize;
            let mut backlog: Vec<usize> = Vec::new();
            for step in 0..3000 {
                match rng.next_below(5) {
                    // Push the next fresh sequence (program order).
                    0 | 1 => {
                        let seq = next_seq;
                        next_seq += 1 + rng.next_below(100) as usize; // sparse gaps
                        if rng.next_below(4) == 0 {
                            backlog.push(seq); // becomes ready much later
                        } else {
                            let e = entry(seq, seq, 0, None);
                            ring.push(e);
                            naive.push(e);
                        }
                    }
                    // A long-delayed task becomes ready: a push far below
                    // the current window.
                    2 => {
                        if let Some(seq) = backlog.pop() {
                            let e = entry(seq, seq, 0, None);
                            ring.push(e);
                            naive.push(e);
                        }
                    }
                    // Rare duplicate creation_seq (not driver behaviour,
                    // but the pool must stay total): same seq, distinct
                    // task index.
                    3 if ring.len() > 0 && rng.next_below(8) == 0 => {
                        let seq = next_seq.saturating_sub(1);
                        let e = entry(seq + 1_000_000, seq, 0, None);
                        ring.push(e);
                        naive.push(e);
                    }
                    _ => {
                        assert_eq!(ring.pop(0), naive.pop(), "seed {seed} step {step}");
                    }
                }
                assert_eq!(ring.len(), naive.heap.len(), "seed {seed} step {step}");
            }
            loop {
                let (a, b) = (ring.pop(0), naive.pop());
                assert_eq!(a, b, "seed {seed} drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn age_ring_handles_empty_reposition_without_growth() {
        // Pop to empty, then push a sequence far beyond the old window: the
        // ring repositions instead of growing to cover the gap.
        let mut s = AgeScheduler::new();
        s.push(entry(0, 0, 0, None));
        assert_eq!(s.pop(0).unwrap().task, TaskRef(0));
        s.push(entry(9, 1_000_000_000, 0, None));
        assert_eq!(s.ring.slots.len(), SeqRing::MIN_CAPACITY);
        assert_eq!(s.pop(0).unwrap().creation_seq, 1_000_000_000);
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn age_orders_by_creation_not_readiness() {
        let mut s = AgeScheduler::new();
        // Pushed (became ready) out of creation order.
        s.push(entry(5, 5, 0, None));
        s.push(entry(1, 1, 0, None));
        s.push(entry(3, 3, 0, None));
        let order: Vec<usize> = std::iter::from_fn(|| s.pop(0))
            .map(|e| e.task.index())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn kind_builds_matching_scheduler() {
        for kind in SchedulerKind::all() {
            let s = kind.build();
            assert_eq!(s.name(), kind.name());
            assert!(s.is_empty());
        }
        assert_eq!(SchedulerKind::Fifo.to_string(), "FIFO");
        assert_eq!(
            SchedulerKind::Successor { threshold: 2 }.name(),
            "Successor"
        );
    }

    #[test]
    fn save_load_round_trips_every_policy() {
        for kind in SchedulerKind::all() {
            let mut original = kind.build();
            for i in 0..15 {
                original.push(entry(i, 14 - i, (i % 4) as u32, Some(i % 3)));
            }
            // Pop a few so the internal cursors are mid-flight.
            original.pop(0);
            original.pop(1);

            let mut bytes = Vec::new();
            original.save_state(&mut bytes);
            let mut restored = kind.build();
            let mut reader = Reader::new(&bytes);
            restored.load_state(&mut reader).unwrap();
            reader.expect_end("scheduler").unwrap();

            assert_eq!(restored.len(), original.len(), "policy {}", kind.name());
            for core in [2usize, 0, 1].into_iter().cycle() {
                let (a, b) = (original.pop(core), restored.pop(core));
                assert_eq!(a, b, "policy {}", kind.name());
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn successor_load_rejects_mismatched_threshold() {
        let mut original = SuccessorScheduler::new(2);
        original.push(entry(0, 0, 5, None));
        let mut bytes = Vec::new();
        original.save_state(&mut bytes);
        let mut wrong = SuccessorScheduler::new(4);
        let err = wrong.load_state(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("threshold"), "got: {err}");
    }

    #[test]
    fn scheduler_kind_persist_round_trips() {
        for kind in SchedulerKind::all() {
            let mut bytes = Vec::new();
            kind.save(&mut bytes);
            let mut reader = Reader::new(&bytes);
            assert_eq!(SchedulerKind::load(&mut reader).unwrap(), kind);
            reader.expect_end("kind").unwrap();
        }
    }

    #[test]
    fn all_policies_drain_everything_they_receive() {
        for kind in SchedulerKind::all() {
            let mut s = kind.build();
            for i in 0..20 {
                s.push(entry(i, 19 - i, (i % 4) as u32, Some(i % 3)));
            }
            assert_eq!(s.len(), 20);
            let mut seen: Vec<usize> = std::iter::from_fn(|| s.pop(1))
                .map(|e| e.task.index())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "policy {}", kind.name());
        }
    }
}
