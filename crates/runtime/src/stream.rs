//! Pull-based task sources for streaming (windowed) execution.
//!
//! The paper's master thread does not materialise a million-entry task list
//! up front: it creates tasks one at a time while the DMU consumes them, and
//! backpressure (full DMU structures, runtime throttling) bounds how far it
//! runs ahead. [`TaskSource`] is the driver-side contract for that mode: a
//! pull-based iterator of [`TaskSpec`]s that [`simulate_stream`] drains
//! lazily, holding at most a *window* of specs in memory (see
//! [`ExecConfig::window`]).
//!
//! The benchmark generators in `tdm-workloads` provide the main
//! implementation (`tdm_workloads::stream::TaskStream`); this trait lives
//! here, below them in the crate graph, so the execution driver can consume
//! any source without depending on the generators. An already-materialised
//! [`Workload`] can be replayed as a source too, which is how the
//! eager-vs-streaming conformance suite cross-checks the two paths.
//!
//! [`simulate_stream`]: crate::exec::simulate_stream
//! [`ExecConfig::window`]: crate::exec::ExecConfig::window
//! [`Workload`]: crate::task::Workload
//!
//! # Example
//!
//! ```
//! use tdm_runtime::stream::TaskSource;
//! use tdm_runtime::task::{DependenceSpec, TaskSpec};
//! use tdm_sim::clock::Cycle;
//!
//! /// An endless-looking chain, produced one task at a time.
//! struct Chain {
//!     remaining: usize,
//! }
//!
//! impl TaskSource for Chain {
//!     fn name(&self) -> &str {
//!         "chain"
//!     }
//!
//!     fn next_task(&mut self) -> Option<TaskSpec> {
//!         if self.remaining == 0 {
//!             return None;
//!         }
//!         self.remaining -= 1;
//!         Some(TaskSpec::new(
//!             "link",
//!             Cycle::new(10_000),
//!             vec![DependenceSpec::inout(0xA000, 4096)],
//!         ))
//!     }
//!
//!     fn len_hint(&self) -> Option<usize> {
//!         Some(self.remaining)
//!     }
//! }
//!
//! let mut source = Chain { remaining: 3 };
//! assert_eq!(source.len_hint(), Some(3));
//! assert!(source.next_task().is_some());
//! ```

use crate::task::{TaskSpec, Workload};

/// A pull-based producer of tasks in program creation order.
///
/// The execution driver calls [`next_task`](TaskSource::next_task) exactly
/// once per task, in creation order, and keeps the returned spec alive only
/// while the task is in flight. Implementations must be deterministic: two
/// passes over a freshly built source yield the same task sequence
/// bit-for-bit (generators with random content carry their own seeded RNG
/// state).
///
/// Sources are `Send`: the parallel design-space sweep runner executes each
/// point (source + driver + engine) on a worker thread. A source is owned by
/// exactly one run at a time, so `Sync` is not required.
pub trait TaskSource: Send {
    /// Workload name used in reports (e.g. `"cholesky"`).
    fn name(&self) -> &str;

    /// Produces the next task in program creation order, or `None` when the
    /// parallel region is complete. Once `None` is returned, every later
    /// call must return `None` too.
    fn next_task(&mut self) -> Option<TaskSpec>;

    /// Number of tasks still to be produced, when the source knows it
    /// (generators with closed-form task counts do). Used only for
    /// reporting and pre-sizing; correctness never depends on it.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Fraction of a task's execution time saved when its working set is
    /// resident in the executing core's cache (see
    /// [`Workload::locality_benefit`]).
    fn locality_benefit(&self) -> f64 {
        0.0
    }

    /// Relative duration jitter (see [`Workload::duration_jitter`]).
    fn duration_jitter(&self) -> f64 {
        crate::task::DEFAULT_DURATION_JITTER
    }

    /// Position of the source's production cursor: the number of tasks
    /// produced so far, for checkpointing.
    ///
    /// A snapshot stores this cursor instead of the unproduced remainder of
    /// the stream — restoring builds a fresh source and fast-forwards it with
    /// [`resume_at`](TaskSource::resume_at), so checkpoints stay small no
    /// matter how many tasks are still to come. Sources that cannot report a
    /// cursor return `None` (the default), which makes runs over them
    /// non-checkpointable in streaming mode.
    fn checkpoint_cursor(&self) -> Option<u64> {
        None
    }

    /// Fast-forwards a freshly built source so that the next
    /// [`next_task`](TaskSource::next_task) call returns the task at position
    /// `cursor` (0-based creation order).
    ///
    /// The default implementation pulls and discards `cursor` tasks, which is
    /// always correct for a deterministic source; generators with cheaper
    /// seeking may override it. Must only be called on a source that has not
    /// produced any tasks yet.
    fn resume_at(&mut self, cursor: u64) {
        for _ in 0..cursor {
            if self.next_task().is_none() {
                return;
            }
        }
    }
}

/// Replays an already-materialised [`Workload`] as a [`TaskSource`],
/// cloning one spec at a time.
///
/// This exists for cross-checking the eager and streaming drivers against
/// each other (the conformance suite) and for feeding ad-hoc workloads to
/// [`simulate_stream`](crate::exec::simulate_stream); for large runs, use a
/// real generator-backed source so the full task list never materialises.
#[derive(Debug, Clone)]
pub struct WorkloadSource<'a> {
    workload: &'a Workload,
    next: usize,
}

impl<'a> WorkloadSource<'a> {
    /// Wraps `workload` as a source that yields its tasks in order.
    pub fn new(workload: &'a Workload) -> Self {
        WorkloadSource { workload, next: 0 }
    }
}

impl TaskSource for WorkloadSource<'_> {
    fn name(&self) -> &str {
        &self.workload.name
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        let spec = self.workload.tasks.get(self.next)?.clone();
        self.next += 1;
        Some(spec)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.workload.len() - self.next)
    }

    fn locality_benefit(&self) -> f64 {
        self.workload.locality_benefit
    }

    fn duration_jitter(&self) -> f64 {
        self.workload.duration_jitter
    }

    fn checkpoint_cursor(&self) -> Option<u64> {
        Some(self.next as u64)
    }

    fn resume_at(&mut self, cursor: u64) {
        self.next = (cursor as usize).min(self.workload.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DependenceSpec;
    use tdm_sim::clock::Cycle;

    fn workload() -> Workload {
        let mut w = Workload::new(
            "w",
            (0..4)
                .map(|i| {
                    TaskSpec::new(
                        "t",
                        Cycle::new(100 + i),
                        vec![DependenceSpec::inout(0x1000, 64)],
                    )
                })
                .collect(),
        );
        w.locality_benefit = 0.25;
        w.duration_jitter = 0.1;
        w
    }

    #[test]
    fn workload_source_replays_in_order() {
        let w = workload();
        let mut source = WorkloadSource::new(&w);
        assert_eq!(source.name(), "w");
        assert_eq!(source.len_hint(), Some(4));
        let mut produced = Vec::new();
        while let Some(spec) = source.next_task() {
            produced.push(spec);
        }
        assert_eq!(produced, w.tasks);
        assert_eq!(source.len_hint(), Some(0));
        assert!(source.next_task().is_none(), "stays exhausted");
    }

    #[test]
    fn checkpoint_cursor_resumes_mid_stream() {
        let w = workload();
        let mut source = WorkloadSource::new(&w);
        source.next_task();
        source.next_task();
        let cursor = source.checkpoint_cursor().unwrap();
        assert_eq!(cursor, 2);

        let mut resumed = WorkloadSource::new(&w);
        resumed.resume_at(cursor);
        assert_eq!(resumed.next_task(), source.next_task());
        assert_eq!(resumed.len_hint(), source.len_hint());
    }

    #[test]
    fn workload_source_carries_modelling_knobs() {
        let w = workload();
        let source = WorkloadSource::new(&w);
        assert_eq!(source.locality_benefit(), 0.25);
        assert_eq!(source.duration_jitter(), 0.1);
    }
}
