//! Program-level task and workload descriptions.
//!
//! A [`Workload`] is the input to the execution driver: an ordered list of
//! [`TaskSpec`]s exactly as the master thread would create them in program
//! order, each carrying its data dependences (`depend(in/out/inout: ...)`
//! clauses) and its execution duration. The benchmark generators in
//! `tdm-workloads` produce these; the runtime backends consume them.

use serde::{Deserialize, Serialize};
use tdm_core::ids::DepDirection;
use tdm_sim::clock::Cycle;

/// Default relative duration jitter applied by [`Workload::new`] and by the
/// streaming sources ([`crate::stream::TaskSource::duration_jitter`],
/// `tdm_workloads`' `TaskStream`) — one shared constant so the eager and
/// streaming forms of a workload can never disagree on the default.
pub const DEFAULT_DURATION_JITTER: f64 = 0.02;

/// Index of a task within its [`Workload`] (program creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskRef(pub usize);

impl TaskRef {
    /// The task's position in program creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// One data dependence declared by a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DependenceSpec {
    /// Base address of the data the task touches.
    pub addr: u64,
    /// Size of the data in bytes (drives the DAT's dynamic index-bit
    /// selection and the locality model).
    pub size: u64,
    /// Whether the task reads, writes or both.
    pub direction: DepDirection,
}

impl DependenceSpec {
    /// Convenience constructor for an input dependence.
    pub fn input(addr: u64, size: u64) -> Self {
        DependenceSpec {
            addr,
            size,
            direction: DepDirection::In,
        }
    }

    /// Convenience constructor for an output dependence.
    pub fn output(addr: u64, size: u64) -> Self {
        DependenceSpec {
            addr,
            size,
            direction: DepDirection::Out,
        }
    }

    /// Convenience constructor for an inout dependence.
    pub fn inout(addr: u64, size: u64) -> Self {
        DependenceSpec {
            addr,
            size,
            direction: DepDirection::InOut,
        }
    }
}

/// One task, as the master thread would create it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Short label for the task's kind (e.g. `"sgemm"`, `"io"`); used by
    /// reports and by workload-specific assertions in tests.
    pub kind: String,
    /// Execution duration of the task body in cycles, excluding runtime
    /// overheads and locality effects.
    pub duration: Cycle,
    /// Declared data dependences, in clause order.
    pub deps: Vec<DependenceSpec>,
}

impl TaskSpec {
    /// Creates a task spec.
    pub fn new(kind: impl Into<String>, duration: Cycle, deps: Vec<DependenceSpec>) -> Self {
        TaskSpec {
            kind: kind.into(),
            duration,
            deps,
        }
    }

    /// The task's working set as `(address, bytes)` pairs, for the locality
    /// model.
    pub fn working_set(&self) -> Vec<(u64, u64)> {
        self.deps.iter().map(|d| (d.addr, d.size)).collect()
    }

    /// Blocks the task reads.
    pub fn read_set(&self) -> Vec<(u64, u64)> {
        self.deps
            .iter()
            .filter(|d| d.direction.reads())
            .map(|d| (d.addr, d.size))
            .collect()
    }

    /// Blocks the task writes.
    pub fn write_set(&self) -> Vec<(u64, u64)> {
        self.deps
            .iter()
            .filter(|d| d.direction.writes())
            .map(|d| (d.addr, d.size))
            .collect()
    }
}

/// A complete parallel region: the ordered stream of tasks the master thread
/// creates, plus workload-level modelling knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Benchmark name (e.g. `"cholesky"`).
    pub name: String,
    /// Tasks in program creation order.
    pub tasks: Vec<TaskSpec>,
    /// Fraction of a task's execution time saved when its whole working set
    /// is resident in the executing core's cache (memory-boundedness knob;
    /// 0.0 disables locality effects).
    pub locality_benefit: f64,
    /// Relative jitter applied to task durations (models input-dependent
    /// variation; 0.0 makes every instance of a task kind identical).
    pub duration_jitter: f64,
}

impl Workload {
    /// Creates a workload with no locality sensitivity and a small default
    /// duration jitter.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskSpec>) -> Self {
        Workload {
            name: name.into(),
            tasks,
            locality_benefit: 0.0,
            duration_jitter: DEFAULT_DURATION_JITTER,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the workload has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total task execution cycles (sum over all tasks, before locality and
    /// jitter adjustments).
    pub fn total_work(&self) -> Cycle {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Average task duration in cycles (zero for an empty workload).
    pub fn average_duration(&self) -> Cycle {
        if self.tasks.is_empty() {
            Cycle::ZERO
        } else {
            Cycle::new(self.total_work().raw() / self.tasks.len() as u64)
        }
    }

    /// Average number of declared dependences per task.
    pub fn average_deps_per_task(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(|t| t.deps.len()).sum::<usize>() as f64 / self.tasks.len() as f64
        }
    }

    /// Task specification for `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn spec(&self, task: TaskRef) -> &TaskSpec {
        &self.tasks[task.index()]
    }

    /// Iterates over `(TaskRef, &TaskSpec)` in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskRef, &TaskSpec)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskRef(i), t))
    }
}

// Snapshot support: task specs travel inside checkpoints as part of the
// streaming feed's bounded in-flight window (see `SNAPSHOT_FORMAT.md`).
use tdm_sim::snapshot::{Persist, Reader, SnapshotError};

impl Persist for TaskRef {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(TaskRef(usize::load(r)?))
    }
}

impl Persist for DependenceSpec {
    fn save(&self, out: &mut Vec<u8>) {
        self.addr.save(out);
        self.size.save(out);
        self.direction.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DependenceSpec {
            addr: u64::load(r)?,
            size: u64::load(r)?,
            direction: DepDirection::load(r)?,
        })
    }
}

impl Persist for TaskSpec {
    fn save(&self, out: &mut Vec<u8>) {
        self.kind.save(out);
        self.duration.save(out);
        self.deps.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(TaskSpec {
            kind: String::load(r)?,
            duration: Cycle::load(r)?,
            deps: Vec::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_workload() -> Workload {
        Workload::new(
            "test",
            vec![
                TaskSpec::new(
                    "producer",
                    Cycle::new(1000),
                    vec![DependenceSpec::output(0x1000, 64)],
                ),
                TaskSpec::new(
                    "consumer",
                    Cycle::new(2000),
                    vec![
                        DependenceSpec::input(0x1000, 64),
                        DependenceSpec::output(0x2000, 64),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn dependence_constructors_set_direction() {
        assert!(DependenceSpec::input(0, 1).direction.reads());
        assert!(DependenceSpec::output(0, 1).direction.writes());
        let io = DependenceSpec::inout(0, 1);
        assert!(io.direction.reads() && io.direction.writes());
    }

    #[test]
    fn task_spec_working_sets() {
        let w = simple_workload();
        let consumer = &w.tasks[1];
        assert_eq!(consumer.working_set(), vec![(0x1000, 64), (0x2000, 64)]);
        assert_eq!(consumer.read_set(), vec![(0x1000, 64)]);
        assert_eq!(consumer.write_set(), vec![(0x2000, 64)]);
    }

    #[test]
    fn workload_aggregates() {
        let w = simple_workload();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.total_work(), Cycle::new(3000));
        assert_eq!(w.average_duration(), Cycle::new(1500));
        assert!((w.average_deps_per_task() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workload_iteration_and_lookup() {
        let w = simple_workload();
        let refs: Vec<TaskRef> = w.iter().map(|(r, _)| r).collect();
        assert_eq!(refs, vec![TaskRef(0), TaskRef(1)]);
        assert_eq!(w.spec(TaskRef(1)).kind, "consumer");
        assert_eq!(TaskRef(1).index(), 1);
        assert_eq!(TaskRef(3).to_string(), "task#3");
    }

    #[test]
    fn empty_workload_averages_are_zero() {
        let w = Workload::new("empty", vec![]);
        assert!(w.is_empty());
        assert_eq!(w.average_duration(), Cycle::ZERO);
        assert_eq!(w.average_deps_per_task(), 0.0);
    }
}
