//! Reference Task Dependence Graph (TDG).
//!
//! [`TaskGraph`] builds the dependence graph of a workload in software, using
//! the same RAW/WAR/WAW semantics the DMU implements in hardware: a task
//! depends on the last writer of every address it touches and, when it
//! writes, on all in-flight readers of that address.
//!
//! The graph serves two purposes:
//!
//! * it is the functional core of the **software runtime baseline** (and of
//!   Carbon, which keeps dependence tracking in software), and
//! * it is the **golden model** against which the DMU is property-tested:
//!   any execution order the DMU permits must respect this graph, and the
//!   DMU must never withhold a task whose graph predecessors all finished.
//!
//! Unlike the DMU, the reference graph is built over the *whole* program at
//! once (software has no capacity limits), which also gives the cost model
//! the per-task edge counts it needs.

use serde::{Deserialize, Serialize};

use crate::fast_map::FastMap;
use crate::task::{TaskRef, Workload};

/// The dependence graph of a workload: predecessor/successor adjacency in
/// program order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    /// `successors[i]` = tasks that must wait for task `i`.
    successors: Vec<Vec<TaskRef>>,
    /// `predecessors[i]` = number of tasks task `i` must wait for
    /// (with multiplicity, matching the DMU's counter semantics).
    predecessor_counts: Vec<u32>,
    /// `predecessors[i]` = distinct predecessor tasks (deduplicated), for
    /// analysis and tests.
    predecessors: Vec<Vec<TaskRef>>,
    /// Number of reader-list entries walked while registering each task's
    /// dependences (the work a software runtime, or the DMU, performs during
    /// creation of that task).
    creation_edge_work: Vec<u32>,
}

impl TaskGraph {
    /// Builds the dependence graph of `workload` by simulating program-order
    /// creation with last-writer and reader tracking per address.
    pub fn build(workload: &Workload) -> Self {
        let n = workload.len();
        let mut successors: Vec<Vec<TaskRef>> = vec![Vec::new(); n];
        let mut predecessor_counts = vec![0u32; n];
        let mut predecessors: Vec<Vec<TaskRef>> = vec![Vec::new(); n];
        let mut creation_edge_work = vec![0u32; n];

        struct AddrState {
            last_writer: Option<TaskRef>,
            readers: Vec<TaskRef>,
        }
        let mut addr_state: FastMap<u64, AddrState> = FastMap::default();

        for (task, spec) in workload.iter() {
            for dep in &spec.deps {
                let state = addr_state.entry(dep.addr).or_insert(AddrState {
                    last_writer: None,
                    readers: Vec::new(),
                });
                // RAW / WAW edge from the last writer.
                if let Some(writer) = state.last_writer {
                    if writer != task {
                        successors[writer.index()].push(task);
                        predecessor_counts[task.index()] += 1;
                        predecessors[task.index()].push(writer);
                        creation_edge_work[task.index()] += 1;
                    }
                }
                if dep.direction.writes() {
                    // WAR edges from every reader, then take over as writer.
                    creation_edge_work[task.index()] += state.readers.len() as u32;
                    for &reader in &state.readers {
                        if reader != task {
                            successors[reader.index()].push(task);
                            predecessor_counts[task.index()] += 1;
                            predecessors[task.index()].push(reader);
                        }
                    }
                    state.readers.clear();
                    state.last_writer = Some(task);
                } else {
                    state.readers.push(task);
                    creation_edge_work[task.index()] += 1;
                }
            }
        }

        for preds in &mut predecessors {
            preds.sort_unstable();
            preds.dedup();
        }

        TaskGraph {
            successors,
            predecessor_counts,
            predecessors,
            creation_edge_work,
        }
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Tasks that must wait for `task` (with multiplicity).
    pub fn successors(&self, task: TaskRef) -> &[TaskRef] {
        &self.successors[task.index()]
    }

    /// Distinct predecessors of `task`.
    pub fn predecessors(&self, task: TaskRef) -> &[TaskRef] {
        &self.predecessors[task.index()]
    }

    /// Number of predecessor edges of `task` (with multiplicity, i.e. the
    /// initial value of the DMU's predecessor counter).
    pub fn predecessor_count(&self, task: TaskRef) -> u32 {
        self.predecessor_counts[task.index()]
    }

    /// Number of successor edges of `task` (with multiplicity).
    pub fn successor_count(&self, task: TaskRef) -> u32 {
        self.successors[task.index()].len() as u32
    }

    /// Dependence-registration work performed while creating `task`
    /// (address-map lookups plus reader-list walks), used by the software
    /// cost model.
    pub fn creation_edge_work(&self, task: TaskRef) -> u32 {
        self.creation_edge_work[task.index()]
    }

    /// Tasks with no predecessors (ready as soon as they are created).
    pub fn roots(&self) -> Vec<TaskRef> {
        (0..self.len())
            .map(TaskRef)
            .filter(|&t| self.predecessor_count(t) == 0)
            .collect()
    }

    /// Total number of edges (with multiplicity).
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(|s| s.len()).sum()
    }

    /// Length (in tasks) of the longest dependence chain, computed over the
    /// DAG. This is the critical path ignoring task durations.
    pub fn critical_path_len(&self) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        // Tasks are created in program order and edges always point from an
        // earlier task to a later one, so index order is a topological order.
        let mut depth = vec![1usize; n];
        let mut best = 1;
        for i in 0..n {
            let d = depth[i];
            best = best.max(d);
            for succ in &self.successors[i] {
                depth[succ.index()] = depth[succ.index()].max(d + 1);
            }
        }
        best
    }

    /// Verifies that an execution order (a permutation of all tasks, in the
    /// order they *finished*) respects every dependence edge: no task
    /// appears before one of its predecessors. Returns the first violation
    /// found as `(predecessor, task)`.
    pub fn check_order(&self, order: &[TaskRef]) -> Result<(), (TaskRef, TaskRef)> {
        let mut position = vec![usize::MAX; self.len()];
        for (pos, task) in order.iter().enumerate() {
            position[task.index()] = pos;
        }
        for task in order {
            for &pred in self.predecessors(*task) {
                if position[pred.index()] == usize::MAX
                    || position[pred.index()] > position[task.index()]
                {
                    return Err((pred, *task));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{DependenceSpec, TaskSpec};
    use tdm_sim::clock::Cycle;

    fn spec(deps: Vec<DependenceSpec>) -> TaskSpec {
        TaskSpec::new("t", Cycle::new(100), deps)
    }

    fn chain(n: usize) -> Workload {
        Workload::new(
            "chain",
            (0..n)
                .map(|_| spec(vec![DependenceSpec::inout(0xA000, 64)]))
                .collect(),
        )
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let w = Workload::new(
            "indep",
            (0..4)
                .map(|i| spec(vec![DependenceSpec::output(0x1000 + i * 64, 64)]))
                .collect(),
        );
        let g = TaskGraph::build(&w);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.roots().len(), 4);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    fn inout_chain_is_fully_serialized() {
        let g = TaskGraph::build(&chain(5));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots(), vec![TaskRef(0)]);
        assert_eq!(g.critical_path_len(), 5);
        for i in 1..5 {
            assert_eq!(g.predecessors(TaskRef(i)), &[TaskRef(i - 1)]);
        }
    }

    #[test]
    fn raw_edge_producer_to_consumer() {
        let w = Workload::new(
            "raw",
            vec![
                spec(vec![DependenceSpec::output(0x1000, 64)]),
                spec(vec![DependenceSpec::input(0x1000, 64)]),
            ],
        );
        let g = TaskGraph::build(&w);
        assert_eq!(g.successors(TaskRef(0)), &[TaskRef(1)]);
        assert_eq!(g.predecessor_count(TaskRef(1)), 1);
    }

    #[test]
    fn war_edge_reader_to_writer() {
        let w = Workload::new(
            "war",
            vec![
                spec(vec![DependenceSpec::input(0x1000, 64)]),
                spec(vec![DependenceSpec::output(0x1000, 64)]),
            ],
        );
        let g = TaskGraph::build(&w);
        // Reader 0 has no predecessor (no prior writer); writer 1 waits for
        // the reader (WAR).
        assert_eq!(g.predecessor_count(TaskRef(0)), 0);
        assert_eq!(g.predecessors(TaskRef(1)), &[TaskRef(0)]);
    }

    #[test]
    fn waw_edge_between_writers() {
        let w = Workload::new(
            "waw",
            vec![
                spec(vec![DependenceSpec::output(0x1000, 64)]),
                spec(vec![DependenceSpec::output(0x1000, 64)]),
            ],
        );
        let g = TaskGraph::build(&w);
        assert_eq!(g.successors(TaskRef(0)), &[TaskRef(1)]);
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let w = Workload::new(
            "readers",
            vec![
                spec(vec![DependenceSpec::output(0x1000, 64)]),
                spec(vec![DependenceSpec::input(0x1000, 64)]),
                spec(vec![DependenceSpec::input(0x1000, 64)]),
                spec(vec![DependenceSpec::input(0x1000, 64)]),
            ],
        );
        let g = TaskGraph::build(&w);
        for i in 1..4 {
            assert_eq!(g.predecessors(TaskRef(i)), &[TaskRef(0)]);
        }
        assert_eq!(g.successor_count(TaskRef(0)), 3);
        // A subsequent writer waits for all three readers.
    }

    #[test]
    fn writer_after_readers_waits_for_all_of_them() {
        let mut tasks = vec![spec(vec![DependenceSpec::output(0x1000, 64)])];
        for _ in 0..3 {
            tasks.push(spec(vec![DependenceSpec::input(0x1000, 64)]));
        }
        tasks.push(spec(vec![DependenceSpec::output(0x1000, 64)]));
        let g = TaskGraph::build(&Workload::new("war-many", tasks));
        let writer = TaskRef(4);
        // WAW edge from the first writer plus WAR edges from the 3 readers,
        // matching the DMU's Algorithm 1 (the last writer stays valid while
        // readers are registered).
        assert_eq!(
            g.predecessors(writer),
            &[TaskRef(0), TaskRef(1), TaskRef(2), TaskRef(3)]
        );
        assert_eq!(g.predecessor_count(writer), 4);
    }

    #[test]
    fn diamond_pattern() {
        let w = Workload::new(
            "diamond",
            vec![
                spec(vec![DependenceSpec::output(0x1, 64)]),
                spec(vec![
                    DependenceSpec::input(0x1, 64),
                    DependenceSpec::output(0x2, 64),
                ]),
                spec(vec![
                    DependenceSpec::input(0x1, 64),
                    DependenceSpec::output(0x3, 64),
                ]),
                spec(vec![
                    DependenceSpec::input(0x2, 64),
                    DependenceSpec::input(0x3, 64),
                ]),
            ],
        );
        let g = TaskGraph::build(&w);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.predecessors(TaskRef(3)), &[TaskRef(1), TaskRef(2)]);
        assert_eq!(g.roots(), vec![TaskRef(0)]);
    }

    #[test]
    fn creation_edge_work_counts_reader_walks() {
        let mut tasks = vec![spec(vec![DependenceSpec::output(0x1, 64)])];
        for _ in 0..5 {
            tasks.push(spec(vec![DependenceSpec::input(0x1, 64)]));
        }
        tasks.push(spec(vec![DependenceSpec::output(0x1, 64)]));
        let g = TaskGraph::build(&Workload::new("w", tasks));
        // The final writer walks 5 readers plus the last-writer edge.
        assert_eq!(g.creation_edge_work(TaskRef(6)), 6);
    }

    #[test]
    fn check_order_accepts_valid_and_rejects_invalid() {
        let g = TaskGraph::build(&chain(3));
        let valid = vec![TaskRef(0), TaskRef(1), TaskRef(2)];
        assert!(g.check_order(&valid).is_ok());
        let invalid = vec![TaskRef(1), TaskRef(0), TaskRef(2)];
        assert_eq!(g.check_order(&invalid), Err((TaskRef(0), TaskRef(1))));
    }

    #[test]
    fn empty_workload_graph() {
        let g = TaskGraph::build(&Workload::new("empty", vec![]));
        assert!(g.is_empty());
        assert_eq!(g.critical_path_len(), 0);
        assert_eq!(g.roots(), Vec::<TaskRef>::new());
        assert!(g.check_order(&[]).is_ok());
    }
}
