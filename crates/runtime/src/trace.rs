//! Trace ingestion and dumping: replaying task-graph traces as a
//! [`TaskSource`].
//!
//! Real task-based codes (an OpenMP/OmpSs runtime with tracing enabled, an
//! HPX task graph) can be replayed through the simulator by writing their
//! task streams in a small line-oriented text format and feeding the file to
//! [`TraceSource`]. The source implements [`TaskSource`] — including the
//! checkpoint cursor — so a trace runs eager (via `into_workload`),
//! streaming, windowed, checkpointed and swept exactly like a generator.
//! The matching writer, [`dump`], serialises *any* task source to the same
//! format; a dump of a parsed trace reproduces the file byte for byte, and a
//! replayed trace produces a bit-identical `RunReport` to the source it was
//! dumped from (pinned by `tests/conformance/trace.rs`).
//!
//! # Trace format (`tdmtrace v1`)
//!
//! ```text
//! tdmtrace v1
//! name grammar-42
//! locality 0.0
//! jitter 0.02
//! tasks 2
//! t produce 200000 out:0xa000:4096
//! t consume 150000 in:0xa000:4096 out:0xb000:64
//! ```
//!
//! * Line 1 is the magic + version. Blank lines and lines starting with `#`
//!   are ignored everywhere.
//! * `name`, `locality` (locality benefit), `jitter` (duration jitter) and
//!   `tasks` (declared task count) are header records; each appears exactly
//!   once, before the first task. Floats are written in Rust's shortest
//!   round-trip form, so re-dumping never perturbs them.
//! * Each `t` record is one task in creation order: kind (no whitespace),
//!   cost in cycles, then zero or more dependences as
//!   `direction:address:size` with direction `in`/`out`/`inout`, address in
//!   hex (`0x…`) and size in decimal bytes.
//!
//! Every malformed input is rejected with a named [`TraceError`] — bad
//! directions, truncated records, non-numeric costs — never a panic.
//!
//! # Example
//!
//! ```
//! use tdm_runtime::trace::{dump, TraceSource};
//! use tdm_runtime::stream::{TaskSource, WorkloadSource};
//! use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};
//! use tdm_sim::clock::Cycle;
//!
//! let workload = Workload::new(
//!     "tiny",
//!     vec![TaskSpec::new("t0", Cycle::new(1000), vec![DependenceSpec::inout(0xA000, 64)])],
//! );
//! let text = dump(&mut WorkloadSource::new(&workload)).unwrap();
//! let mut replay = TraceSource::parse(&text).unwrap();
//! assert_eq!(replay.name(), "tiny");
//! assert_eq!(replay.next_task().unwrap(), workload.tasks[0]);
//! ```

use std::fmt;

use tdm_core::ids::DepDirection;

use crate::stream::TaskSource;
use crate::task::{DependenceSpec, TaskSpec};

/// Magic first line of a trace file.
const MAGIC: &str = "tdmtrace";
/// The format version this module reads and writes.
const VERSION: u64 = 1;

/// Everything that can be wrong with a trace file (or a source being
/// dumped). Each variant names the offending line and token so a bad trace
/// is a diagnosable error, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file does not start with `tdmtrace <version>`.
    MissingHeader,
    /// The file declares a format version this reader does not support.
    UnsupportedVersion {
        /// Version the file declared.
        found: u64,
    },
    /// A header record (`name`, `locality`, `jitter`, `tasks`) is malformed,
    /// duplicated, missing, or appears after the first task.
    BadHeader {
        /// 1-based line number (0 when the problem is a missing record).
        line: usize,
        /// What is wrong.
        message: String,
    },
    /// A record starts with an unknown keyword.
    UnknownRecord {
        /// 1-based line number.
        line: usize,
        /// The unrecognised keyword.
        token: String,
    },
    /// A `t` record has fewer than the mandatory kind + cost fields.
    TruncatedRecord {
        /// 1-based line number.
        line: usize,
    },
    /// A task cost is not a number of cycles.
    BadCost {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A dependence triple is malformed (missing `:`s, bad address or size).
    BadDependence {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A dependence direction is not `in`, `out` or `inout`.
    BadDirection {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The `tasks` header and the number of `t` records disagree.
    TaskCountMismatch {
        /// Count the header declared.
        declared: usize,
        /// `t` records actually present.
        found: usize,
    },
    /// A task kind cannot be written (it contains whitespace, which the
    /// line format cannot carry).
    UnencodableKind {
        /// The offending kind string.
        kind: String,
    },
    /// Reading or writing the file failed.
    Io {
        /// Path involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader => {
                write!(f, "trace does not start with `{MAGIC} v{VERSION}`")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "trace format v{found} is not supported (reader is v{VERSION})"
                )
            }
            TraceError::BadHeader { line, message } => {
                write!(f, "line {line}: bad header: {message}")
            }
            TraceError::UnknownRecord { line, token } => {
                write!(f, "line {line}: unknown record {token:?}")
            }
            TraceError::TruncatedRecord { line } => {
                write!(f, "line {line}: truncated task record (need kind and cost)")
            }
            TraceError::BadCost { line, token } => {
                write!(f, "line {line}: task cost {token:?} is not a cycle count")
            }
            TraceError::BadDependence { line, token } => {
                write!(
                    f,
                    "line {line}: dependence {token:?} is not direction:0xaddr:size"
                )
            }
            TraceError::BadDirection { line, token } => {
                write!(
                    f,
                    "line {line}: direction {token:?} is not in, out or inout"
                )
            }
            TraceError::TaskCountMismatch { declared, found } => {
                write!(f, "header declares {declared} tasks but trace has {found}")
            }
            TraceError::UnencodableKind { kind } => {
                write!(
                    f,
                    "task kind {kind:?} contains whitespace and cannot be written"
                )
            }
            TraceError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed trace: a materialised task list replayed in creation order as a
/// [`TaskSource`].
///
/// Unlike the closed-form generators, a trace's tasks come from a file, so
/// they are held in memory (the file was materialised anyway); the
/// checkpoint cursor is simply the replay position, making trace runs
/// checkpointable and resumable like any generator-backed run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSource {
    name: String,
    locality_benefit: f64,
    duration_jitter: f64,
    tasks: Vec<TaskSpec>,
    next: usize,
}

impl TraceSource {
    /// Parses a trace from its text form.
    pub fn parse(text: &str) -> Result<TraceSource, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        // Magic + version.
        let Some((_, first)) = lines.next() else {
            return Err(TraceError::MissingHeader);
        };
        let mut magic = first.split_ascii_whitespace();
        if magic.next() != Some(MAGIC) {
            return Err(TraceError::MissingHeader);
        }
        let version = magic
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or(TraceError::MissingHeader)?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }

        let mut name: Option<String> = None;
        let mut locality: Option<f64> = None;
        let mut jitter: Option<f64> = None;
        let mut declared: Option<usize> = None;
        let mut tasks: Vec<TaskSpec> = Vec::new();

        for (line, text) in lines {
            let mut fields = text.split_ascii_whitespace();
            // Blank lines are filtered above, but stay total anyway.
            let Some(keyword) = fields.next() else {
                continue;
            };
            match keyword {
                "name" | "locality" | "jitter" | "tasks" => {
                    if !tasks.is_empty() {
                        return Err(TraceError::BadHeader {
                            line,
                            message: format!("{keyword} record after the first task"),
                        });
                    }
                    let value = fields.next().ok_or_else(|| TraceError::BadHeader {
                        line,
                        message: format!("{keyword} needs a value"),
                    })?;
                    let duplicate = |set: bool| -> Result<(), TraceError> {
                        if set {
                            return Err(TraceError::BadHeader {
                                line,
                                message: format!("duplicate {keyword} record"),
                            });
                        }
                        Ok(())
                    };
                    match keyword {
                        "name" => {
                            duplicate(name.is_some())?;
                            name = Some(value.to_string());
                        }
                        "locality" => {
                            duplicate(locality.is_some())?;
                            locality = Some(value.parse().map_err(|e| TraceError::BadHeader {
                                line,
                                message: format!("locality {value:?}: {e}"),
                            })?);
                        }
                        "jitter" => {
                            duplicate(jitter.is_some())?;
                            jitter = Some(value.parse().map_err(|e| TraceError::BadHeader {
                                line,
                                message: format!("jitter {value:?}: {e}"),
                            })?);
                        }
                        _ => {
                            duplicate(declared.is_some())?;
                            declared = Some(value.parse().map_err(|e| TraceError::BadHeader {
                                line,
                                message: format!("tasks {value:?}: {e}"),
                            })?);
                        }
                    }
                }
                "t" => {
                    let kind = fields.next().ok_or(TraceError::TruncatedRecord { line })?;
                    let cost = fields.next().ok_or(TraceError::TruncatedRecord { line })?;
                    let cycles: u64 = cost.parse().map_err(|_| TraceError::BadCost {
                        line,
                        token: cost.to_string(),
                    })?;
                    let mut deps = Vec::new();
                    for token in fields {
                        deps.push(parse_dependence(line, token)?);
                    }
                    tasks.push(TaskSpec::new(
                        kind,
                        tdm_sim::clock::Cycle::new(cycles),
                        deps,
                    ));
                }
                other => {
                    return Err(TraceError::UnknownRecord {
                        line,
                        token: other.to_string(),
                    })
                }
            }
        }

        let name = name.ok_or(TraceError::BadHeader {
            line: 0,
            message: "missing name record".to_string(),
        })?;
        let declared = declared.ok_or(TraceError::BadHeader {
            line: 0,
            message: "missing tasks record".to_string(),
        })?;
        if declared != tasks.len() {
            return Err(TraceError::TaskCountMismatch {
                declared,
                found: tasks.len(),
            });
        }
        Ok(TraceSource {
            name,
            locality_benefit: locality.unwrap_or(0.0),
            duration_jitter: jitter.unwrap_or(crate::task::DEFAULT_DURATION_JITTER),
            tasks,
            next: 0,
        })
    }

    /// Reads and parses a trace file.
    pub fn read_from(path: &str) -> Result<TraceSource, TraceError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        TraceSource::parse(&text)
    }

    /// Number of tasks in the trace.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the trace holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Collects the trace into an eager [`Workload`](crate::task::Workload).
    pub fn into_workload(self) -> crate::task::Workload {
        let mut workload = crate::task::Workload::new(self.name, self.tasks);
        workload.locality_benefit = self.locality_benefit;
        workload.duration_jitter = self.duration_jitter;
        workload
    }
}

fn parse_dependence(line: usize, token: &str) -> Result<DependenceSpec, TraceError> {
    let bad_dep = || TraceError::BadDependence {
        line,
        token: token.to_string(),
    };
    let mut parts = token.split(':');
    let dir = parts.next().ok_or_else(bad_dep)?;
    let addr = parts.next().ok_or_else(bad_dep)?;
    let size = parts.next().ok_or_else(bad_dep)?;
    if parts.next().is_some() {
        return Err(bad_dep());
    }
    let direction = match dir {
        "in" => DepDirection::In,
        "out" => DepDirection::Out,
        "inout" => DepDirection::InOut,
        _ => {
            return Err(TraceError::BadDirection {
                line,
                token: dir.to_string(),
            })
        }
    };
    let addr = addr
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(bad_dep)?;
    let size: u64 = size.parse().map_err(|_| bad_dep())?;
    Ok(DependenceSpec {
        addr,
        size,
        direction,
    })
}

impl TaskSource for TraceSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        let spec = self.tasks.get(self.next)?.clone();
        self.next += 1;
        Some(spec)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.tasks.len() - self.next)
    }

    fn locality_benefit(&self) -> f64 {
        self.locality_benefit
    }

    fn duration_jitter(&self) -> f64 {
        self.duration_jitter
    }

    fn checkpoint_cursor(&self) -> Option<u64> {
        Some(self.next as u64)
    }

    fn resume_at(&mut self, cursor: u64) {
        // A cursor beyond the trace (or beyond usize on a 32-bit host)
        // clamps to "fully drained" rather than wrapping.
        self.next = usize::try_from(cursor).map_or(self.tasks.len(), |c| c.min(self.tasks.len()));
    }
}

/// Serialises a task source to the `tdmtrace v1` text form, draining it.
///
/// The output is canonical — fixed record order, lowercase hex addresses,
/// shortest-round-trip floats — so dumping a parsed trace reproduces the
/// original file byte for byte ([`TraceSource::parse`] ∘ [`dump`] is the
/// identity on canonical traces).
pub fn dump(source: &mut dyn TaskSource) -> Result<String, TraceError> {
    let mut tasks = Vec::new();
    while let Some(spec) = source.next_task() {
        tasks.push(spec);
    }
    let mut out = String::new();
    out.push_str(&format!("{MAGIC} v{VERSION}\n"));
    out.push_str(&format!("name {}\n", source.name()));
    out.push_str(&format!("locality {:?}\n", source.locality_benefit()));
    out.push_str(&format!("jitter {:?}\n", source.duration_jitter()));
    out.push_str(&format!("tasks {}\n", tasks.len()));
    for spec in &tasks {
        if spec.kind.chars().any(|c| c.is_whitespace()) || spec.kind.is_empty() {
            return Err(TraceError::UnencodableKind {
                kind: spec.kind.clone(),
            });
        }
        out.push_str(&format!("t {} {}", spec.kind, spec.duration.raw()));
        for dep in &spec.deps {
            out.push_str(&format!(" {}:{:#x}:{}", dep.direction, dep.addr, dep.size));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Dumps a source to a file (see [`dump`]).
pub fn write_to(path: &str, source: &mut dyn TaskSource) -> Result<(), TraceError> {
    let text = dump(source)?;
    std::fs::write(path, text).map_err(|e| TraceError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::WorkloadSource;
    use crate::task::Workload;
    use tdm_sim::clock::Cycle;

    fn sample() -> Workload {
        let mut w = Workload::new(
            "sample",
            vec![
                TaskSpec::new(
                    "produce",
                    Cycle::new(200_000),
                    vec![DependenceSpec::output(0xA000, 4096)],
                ),
                TaskSpec::new(
                    "consume",
                    Cycle::new(150_000),
                    vec![
                        DependenceSpec::input(0xA000, 4096),
                        DependenceSpec::inout(0xB000, 64),
                    ],
                ),
                TaskSpec::new("free", Cycle::new(1_000), vec![]),
            ],
        );
        w.locality_benefit = 0.25;
        w.duration_jitter = 0.1;
        w
    }

    #[test]
    fn dump_then_parse_is_identity_on_tasks_and_knobs() {
        let w = sample();
        let text = dump(&mut WorkloadSource::new(&w)).unwrap();
        let mut replay = TraceSource::parse(&text).unwrap();
        assert_eq!(replay.name(), "sample");
        assert_eq!(replay.locality_benefit(), 0.25);
        assert_eq!(replay.duration_jitter(), 0.1);
        assert_eq!(replay.len_hint(), Some(3));
        let mut produced = Vec::new();
        while let Some(spec) = replay.next_task() {
            produced.push(spec);
        }
        assert_eq!(produced, w.tasks);
    }

    #[test]
    fn parse_then_dump_is_byte_identity() {
        let w = sample();
        let text = dump(&mut WorkloadSource::new(&w)).unwrap();
        let mut replay = TraceSource::parse(&text).unwrap();
        let again = dump(&mut replay).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn comments_blanks_and_padding_are_tolerated() {
        let text =
            "\n# a comment\ntdmtrace v1\nname x\n\n  tasks 1  \n# another\nt k 5 in:0x10:8\n";
        let mut src = TraceSource::parse(text).unwrap();
        assert_eq!(src.name(), "x");
        let task = src.next_task().unwrap();
        assert_eq!(task.kind, "k");
        assert_eq!(task.duration, Cycle::new(5));
        assert_eq!(task.deps, vec![DependenceSpec::input(0x10, 8)]);
        // Defaults apply when locality/jitter are omitted.
        assert_eq!(src.locality_benefit(), 0.0);
        assert_eq!(src.duration_jitter(), crate::task::DEFAULT_DURATION_JITTER);
    }

    #[test]
    fn checkpoint_cursor_resumes_mid_trace() {
        let w = sample();
        let text = dump(&mut WorkloadSource::new(&w)).unwrap();
        let mut src = TraceSource::parse(&text).unwrap();
        src.next_task();
        src.next_task();
        let cursor = src.checkpoint_cursor().unwrap();
        assert_eq!(cursor, 2);
        let mut resumed = TraceSource::parse(&text).unwrap();
        resumed.resume_at(cursor);
        assert_eq!(resumed.next_task(), src.next_task());
        assert_eq!(resumed.next_task(), None);
    }

    #[test]
    fn resume_past_the_end_clamps_to_drained() {
        // A cursor from a longer (or corrupt) checkpoint must not wrap or
        // panic: anything past the end means "no tasks left".
        let w = sample();
        let text = dump(&mut WorkloadSource::new(&w)).unwrap();
        let mut src = TraceSource::parse(&text).unwrap();
        src.resume_at(u64::MAX);
        assert_eq!(src.next_task(), None);
        assert_eq!(src.checkpoint_cursor(), Some(w.len() as u64));
    }

    #[test]
    fn missing_or_bad_magic_is_rejected() {
        assert_eq!(TraceSource::parse(""), Err(TraceError::MissingHeader));
        assert_eq!(
            TraceSource::parse("notatrace v1\n"),
            Err(TraceError::MissingHeader)
        );
        assert_eq!(
            TraceSource::parse("tdmtrace v9\nname x\ntasks 0\n"),
            Err(TraceError::UnsupportedVersion { found: 9 })
        );
    }

    #[test]
    fn bad_direction_is_a_named_error() {
        let text = "tdmtrace v1\nname x\ntasks 1\nt k 5 sideways:0x10:8\n";
        assert_eq!(
            TraceSource::parse(text),
            Err(TraceError::BadDirection {
                line: 4,
                token: "sideways".to_string()
            })
        );
    }

    #[test]
    fn truncated_record_is_a_named_error() {
        let text = "tdmtrace v1\nname x\ntasks 1\nt k\n";
        assert_eq!(
            TraceSource::parse(text),
            Err(TraceError::TruncatedRecord { line: 4 })
        );
    }

    #[test]
    fn non_numeric_cost_is_a_named_error() {
        let text = "tdmtrace v1\nname x\ntasks 1\nt k cheap in:0x10:8\n";
        assert_eq!(
            TraceSource::parse(text),
            Err(TraceError::BadCost {
                line: 4,
                token: "cheap".to_string()
            })
        );
    }

    #[test]
    fn malformed_dependences_are_named_errors() {
        for bad in [
            "in:0x10",
            "in:0x10:8:9",
            "in:ten:8",
            "in:0x10:lots",
            "in:10:8",
        ] {
            let text = format!("tdmtrace v1\nname x\ntasks 1\nt k 5 {bad}\n");
            assert_eq!(
                TraceSource::parse(&text),
                Err(TraceError::BadDependence {
                    line: 4,
                    token: bad.to_string()
                }),
                "{bad}"
            );
        }
    }

    #[test]
    fn header_problems_are_named_errors() {
        // Missing name.
        assert!(matches!(
            TraceSource::parse("tdmtrace v1\ntasks 0\n"),
            Err(TraceError::BadHeader { .. })
        ));
        // Missing tasks.
        assert!(matches!(
            TraceSource::parse("tdmtrace v1\nname x\n"),
            Err(TraceError::BadHeader { .. })
        ));
        // Duplicate record.
        assert!(matches!(
            TraceSource::parse("tdmtrace v1\nname x\nname y\ntasks 0\n"),
            Err(TraceError::BadHeader { .. })
        ));
        // Header after a task.
        assert!(matches!(
            TraceSource::parse("tdmtrace v1\nname x\ntasks 1\nt k 5\njitter 0.5\n"),
            Err(TraceError::BadHeader { .. })
        ));
        // Bad float.
        assert!(matches!(
            TraceSource::parse("tdmtrace v1\nname x\nlocality much\ntasks 0\n"),
            Err(TraceError::BadHeader { .. })
        ));
    }

    #[test]
    fn count_mismatch_and_unknown_records_are_rejected() {
        assert_eq!(
            TraceSource::parse("tdmtrace v1\nname x\ntasks 2\nt k 5\n"),
            Err(TraceError::TaskCountMismatch {
                declared: 2,
                found: 1
            })
        );
        assert_eq!(
            TraceSource::parse("tdmtrace v1\nname x\ntasks 0\nq what 5\n"),
            Err(TraceError::UnknownRecord {
                line: 4,
                token: "q".to_string()
            })
        );
    }

    #[test]
    fn whitespace_kind_cannot_be_dumped() {
        let w = Workload::new("w", vec![TaskSpec::new("two words", Cycle::new(5), vec![])]);
        assert_eq!(
            dump(&mut WorkloadSource::new(&w)),
            Err(TraceError::UnencodableKind {
                kind: "two words".to_string()
            })
        );
    }

    #[test]
    fn errors_render_with_line_numbers() {
        let err = TraceError::BadDirection {
            line: 7,
            token: "up".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("line 7") && text.contains("up"));
    }
}
