//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds without network access, so the real criterion crate
//! cannot be fetched. This shim implements the subset of its API that the
//! `tdm-bench` bench targets use — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock sampler: each benchmark runs for a bounded number of samples
//! and prints the median time per iteration.
//!
//! It produces real (if unsophisticated) measurements, so `cargo bench` is
//! usable for coarse comparisons; swap the `criterion` entry in the root
//! `[workspace.dependencies]` for the registry crate when statistical rigor
//! is needed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times only the routine,
/// never the setup, so the variants are behaviorally identical here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input (criterion batches many per allocation).
    SmallInput,
    /// Large per-iteration input (criterion uses few per batch).
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Entry point handed to each benchmark function, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Finishes the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over `self.iters` back-to-back calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Collects `samples` timed samples of `f` and prints the median ns/iter.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes >= 1 ms,
    // so per-call timer overhead is amortized for fast routines.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<50} median {median:>12.1} ns/iter ({samples} samples x {iters} iters)");
}

/// Bundles benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` invoking each group, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
