//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace builds in environments without network access to crates.io,
//! so the real `serde` cannot be vendored. The model crates only use serde for
//! `#[derive(Serialize, Deserialize)]` annotations (no code calls the traits),
//! so this shim accepts the derives — including `#[serde(...)]` helper
//! attributes such as `transparent` and `skip` — and expands to nothing.
//!
//! To switch to the real crate, replace the `serde` entry in the root
//! `[workspace.dependencies]` with a registry version; no source change is
//! needed in the model crates.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`'s derive macro.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`'s derive macro.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
