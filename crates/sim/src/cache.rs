//! Per-core data-locality model.
//!
//! The locality-aware scheduler of Section VI schedules a ready successor on
//! the core that just produced its inputs, reducing data movement. To let the
//! simulator reward that behaviour, [`LocalityModel`] keeps, for every core, a
//! small LRU set of the data blocks (dependence address ranges) the core has
//! touched most recently, bounded by the private cache capacity. When a task
//! starts on a core the runtime asks how many of the task's input bytes are
//! resident; the miss fraction stretches the task's execution time by a
//! configurable memory-boundedness factor.
//!
//! This is intentionally far simpler than a real cache (no sets, no lines, no
//! coherence): at task granularity the only first-order effect is "my inputs
//! were just produced here" versus "my inputs live in another core's cache or
//! in L2/memory", which an LRU over dependence blocks captures.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::fast_map::FastMap;

/// Identifier of a data block: the base address of a dependence range.
pub type BlockAddr = u64;

/// Result of probing the locality model for one task's working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LocalityOutcome {
    /// Bytes of the working set that were resident on the executing core.
    pub hit_bytes: u64,
    /// Bytes that were not resident and must be fetched from L2 / another
    /// core / memory.
    pub miss_bytes: u64,
}

impl LocalityOutcome {
    /// Fraction of the working set that hit (1.0 for an empty working set,
    /// i.e. a task with no data dependences pays no locality penalty).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            1.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }

    /// Fraction of the working set that missed.
    pub fn miss_fraction(&self) -> f64 {
        1.0 - self.hit_fraction()
    }
}

/// One core's recently-touched blocks, in LRU order (front = most recent).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CoreResidency {
    /// (block address, block size in bytes), most-recently-used first.
    blocks: VecDeque<(BlockAddr, u64)>,
    /// Total bytes currently tracked.
    bytes: u64,
}

impl CoreResidency {
    fn contains(&self, addr: BlockAddr) -> bool {
        self.blocks.iter().any(|&(a, _)| a == addr)
    }

    /// Touches a block: moves it to the MRU position, inserting it if absent,
    /// and evicts LRU blocks if the capacity is exceeded. Evicted addresses
    /// are reported through `holders` so the model-level index stays in sync.
    fn touch(
        &mut self,
        core: usize,
        addr: BlockAddr,
        size: u64,
        capacity: u64,
        holders: &mut FastMap<BlockAddr, Vec<u32>>,
    ) {
        if let Some(pos) = self.blocks.iter().position(|&(a, _)| a == addr) {
            let entry = self.blocks.remove(pos).expect("position came from iter");
            self.bytes -= entry.1;
        } else {
            holders.entry(addr).or_default().push(core as u32);
        }
        self.blocks.push_front((addr, size));
        self.bytes += size;
        while self.bytes > capacity && self.blocks.len() > 1 {
            if let Some((evicted_addr, evicted)) = self.blocks.pop_back() {
                self.bytes -= evicted;
                remove_holder(holders, evicted_addr, core);
            }
        }
        // A single block larger than the whole cache is allowed to stay: the
        // task streams through it and the miss cost is charged on access.
    }

    fn invalidate(
        &mut self,
        core: usize,
        addr: BlockAddr,
        holders: &mut FastMap<BlockAddr, Vec<u32>>,
    ) {
        if let Some(pos) = self.blocks.iter().position(|&(a, _)| a == addr) {
            let entry = self.blocks.remove(pos).expect("position came from iter");
            self.bytes -= entry.1;
            remove_holder(holders, addr, core);
        }
    }
}

/// Drops `core` from the holder list of `addr`, removing the map entry when
/// the list empties.
fn remove_holder(holders: &mut FastMap<BlockAddr, Vec<u32>>, addr: BlockAddr, core: usize) {
    if let Some(list) = holders.get_mut(&addr) {
        if let Some(pos) = list.iter().position(|&c| c as usize == core) {
            list.swap_remove(pos);
            if list.is_empty() {
                holders.remove(&addr);
            }
        }
    }
}

/// Tracks, per core, which data blocks are resident in that core's private
/// cache, with LRU replacement bounded by a byte capacity.
///
/// # Example
///
/// ```
/// use tdm_sim::cache::LocalityModel;
///
/// let mut model = LocalityModel::new(2, 32 * 1024);
/// // Core 0 produces block 0x1000 (16 KB).
/// model.record_writes(0, &[(0x1000, 16 * 1024)]);
/// // A task reading that block on core 0 hits; on core 1 it misses.
/// assert_eq!(model.probe(0, &[(0x1000, 16 * 1024)]).hit_bytes, 16 * 1024);
/// assert_eq!(model.probe(1, &[(0x1000, 16 * 1024)]).miss_bytes, 16 * 1024);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalityModel {
    capacity_bytes: u64,
    cores: Vec<CoreResidency>,
    /// Derived index: which cores currently hold each resident block. Lets a
    /// write invalidate exactly the holders instead of scanning every core's
    /// LRU (the former `record_writes` hot loop was O(cores × resident
    /// blocks) per written block). Purely an actual-work accelerator: the
    /// per-core residency contents — and therefore every probe outcome —
    /// are unchanged. Never iterated, so map order is unobservable.
    holders: FastMap<BlockAddr, Vec<u32>>,
    /// Scratch holder snapshot reused across `record_writes` calls.
    scratch: Vec<u32>,
}

impl LocalityModel {
    /// Creates a model for `num_cores` cores, each with `capacity_bytes` of
    /// private cache (the paper's chip has 32 KB L1 per core; using the L1+L2
    /// slice share is also reasonable — the harnesses use the L1 size).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or `capacity_bytes` is zero.
    pub fn new(num_cores: usize, capacity_bytes: u64) -> Self {
        assert!(num_cores > 0, "locality model needs at least one core");
        assert!(capacity_bytes > 0, "cache capacity must be non-zero");
        LocalityModel {
            capacity_bytes,
            cores: vec![CoreResidency::default(); num_cores],
            holders: FastMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Number of cores tracked.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Configured per-core capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Returns how much of the given working set (list of `(address, bytes)`
    /// blocks) is resident on `core`, without modifying residency.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn probe(&self, core: usize, working_set: &[(BlockAddr, u64)]) -> LocalityOutcome {
        let residency = &self.cores[core];
        let mut outcome = LocalityOutcome::default();
        for &(addr, size) in working_set {
            if residency.contains(addr) {
                outcome.hit_bytes += size;
            } else {
                outcome.miss_bytes += size;
            }
        }
        outcome
    }

    /// Records that `core` read the given blocks (they become resident there).
    pub fn record_reads(&mut self, core: usize, working_set: &[(BlockAddr, u64)]) {
        for &(addr, size) in working_set {
            self.cores[core].touch(core, addr, size, self.capacity_bytes, &mut self.holders);
        }
        self.debug_check_holders();
    }

    /// Records that `core` wrote the given blocks. The blocks become resident
    /// on the writer and are invalidated everywhere else (a coarse model of
    /// invalidation-based coherence).
    pub fn record_writes(&mut self, core: usize, working_set: &[(BlockAddr, u64)]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for &(addr, size) in working_set {
            // Snapshot the holder list: invalidation mutates it, and at most
            // a handful of cores ever hold one block.
            scratch.clear();
            if let Some(holding) = self.holders.get(&addr) {
                scratch.extend_from_slice(holding);
            }
            for &holder in &scratch {
                let holder = holder as usize;
                if holder != core {
                    self.cores[holder].invalidate(holder, addr, &mut self.holders);
                }
            }
            self.cores[core].touch(core, addr, size, self.capacity_bytes, &mut self.holders);
        }
        self.scratch = scratch;
        self.debug_check_holders();
    }

    /// Forgets all residency information (used between parallel regions).
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.blocks.clear();
            core.bytes = 0;
        }
        self.holders.clear();
    }

    /// Debug-build invariant: `holders` is exactly the per-block transpose of
    /// the per-core residency lists.
    fn debug_check_holders(&self) {
        #[cfg(debug_assertions)]
        {
            let mut expected: FastMap<BlockAddr, Vec<u32>> = FastMap::default();
            for (i, residency) in self.cores.iter().enumerate() {
                for &(addr, _) in &residency.blocks {
                    expected.entry(addr).or_default().push(i as u32);
                }
            }
            assert_eq!(expected.len(), self.holders.len(), "holder index drift");
            for (addr, cores) in &expected {
                let mut got = self.holders.get(addr).cloned().unwrap_or_default();
                let mut want = cores.clone();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "holder index drift for block {addr:#x}");
            }
        }
    }

    /// Total bytes currently tracked as resident on `core`.
    pub fn resident_bytes(&self, core: usize) -> u64 {
        self.cores[core].bytes
    }
}

// Snapshot support. The observable state is the per-core MRU block list
// (order matters: it decides eviction victims); `bytes`, the `holders`
// transpose and the write scratch are all derived, so the codec stores
// only capacity and the lists and rebuilds the rest on load.
impl crate::snapshot::Persist for LocalityModel {
    fn save(&self, out: &mut Vec<u8>) {
        self.capacity_bytes.save(out);
        self.cores.len().save(out);
        for core in &self.cores {
            core.blocks.save(out);
        }
    }

    fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::snapshot::SnapshotError> {
        let capacity_bytes = u64::load(r)?;
        let num_cores = usize::load(r)?;
        if capacity_bytes == 0 || num_cores == 0 {
            return Err(crate::snapshot::SnapshotError::Corrupt {
                context: format!(
                    "locality model with {num_cores} cores and {capacity_bytes}-byte \
                     capacity (both must be non-zero)"
                ),
            });
        }
        let mut model = LocalityModel::new(num_cores, capacity_bytes);
        for core in 0..num_cores {
            let blocks: VecDeque<(BlockAddr, u64)> = VecDeque::load(r)?;
            let residency = &mut model.cores[core];
            residency.bytes = blocks.iter().map(|&(_, size)| size).sum();
            for &(addr, _) in &blocks {
                // tdm-lint: allow(C1): `core < num_cores` and the codec already bounds num_cores via usize::load; the holder index stores u32 core ids by construction.
                model.holders.entry(addr).or_default().push(core as u32);
            }
            residency.blocks = blocks;
        }
        model.debug_check_holders();
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_on_empty_model_misses_everything() {
        let model = LocalityModel::new(4, 1024);
        let out = model.probe(2, &[(0x100, 64), (0x200, 64)]);
        assert_eq!(out.hit_bytes, 0);
        assert_eq!(out.miss_bytes, 128);
        assert_eq!(out.hit_fraction(), 0.0);
    }

    #[test]
    fn empty_working_set_is_a_full_hit() {
        let model = LocalityModel::new(1, 1024);
        let out = model.probe(0, &[]);
        assert_eq!(out.hit_fraction(), 1.0);
        assert_eq!(out.miss_fraction(), 0.0);
    }

    #[test]
    fn reads_populate_only_the_reading_core() {
        let mut model = LocalityModel::new(2, 4096);
        model.record_reads(0, &[(0xA000, 512)]);
        assert_eq!(model.probe(0, &[(0xA000, 512)]).hit_bytes, 512);
        assert_eq!(model.probe(1, &[(0xA000, 512)]).hit_bytes, 0);
    }

    #[test]
    fn writes_invalidate_other_cores() {
        let mut model = LocalityModel::new(3, 4096);
        model.record_reads(1, &[(0xB000, 256)]);
        assert_eq!(model.probe(1, &[(0xB000, 256)]).hit_bytes, 256);
        model.record_writes(2, &[(0xB000, 256)]);
        assert_eq!(model.probe(1, &[(0xB000, 256)]).hit_bytes, 0);
        assert_eq!(model.probe(2, &[(0xB000, 256)]).hit_bytes, 256);
    }

    #[test]
    fn lru_evicts_oldest_when_capacity_exceeded() {
        let mut model = LocalityModel::new(1, 1000);
        model.record_reads(0, &[(0x1, 400)]);
        model.record_reads(0, &[(0x2, 400)]);
        model.record_reads(0, &[(0x3, 400)]); // evicts 0x1
        assert_eq!(model.probe(0, &[(0x1, 400)]).hit_bytes, 0);
        assert_eq!(model.probe(0, &[(0x2, 400)]).hit_bytes, 400);
        assert_eq!(model.probe(0, &[(0x3, 400)]).hit_bytes, 400);
        assert!(model.resident_bytes(0) <= 1000);
    }

    #[test]
    fn touching_resident_block_refreshes_lru_position() {
        let mut model = LocalityModel::new(1, 1000);
        model.record_reads(0, &[(0x1, 400)]);
        model.record_reads(0, &[(0x2, 400)]);
        // Touch 0x1 again so 0x2 becomes the LRU victim.
        model.record_reads(0, &[(0x1, 400)]);
        model.record_reads(0, &[(0x3, 400)]);
        assert_eq!(model.probe(0, &[(0x1, 400)]).hit_bytes, 400);
        assert_eq!(model.probe(0, &[(0x2, 400)]).hit_bytes, 0);
    }

    #[test]
    fn oversized_block_is_kept_alone() {
        let mut model = LocalityModel::new(1, 1000);
        model.record_reads(0, &[(0x1, 5000)]);
        // The single oversized block stays resident (streaming model).
        assert_eq!(model.probe(0, &[(0x1, 5000)]).hit_bytes, 5000);
        // Adding another block evicts it because capacity is exceeded.
        model.record_reads(0, &[(0x2, 100)]);
        assert!(model.resident_bytes(0) <= 5000);
    }

    #[test]
    fn reset_clears_all_cores() {
        let mut model = LocalityModel::new(2, 1024);
        model.record_reads(0, &[(0x1, 100)]);
        model.record_reads(1, &[(0x2, 100)]);
        model.reset();
        assert_eq!(model.resident_bytes(0), 0);
        assert_eq!(model.resident_bytes(1), 0);
        assert_eq!(model.probe(0, &[(0x1, 100)]).hit_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = LocalityModel::new(0, 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = LocalityModel::new(1, 0);
    }

    #[test]
    fn holder_index_matches_a_scan_of_every_core_in_randomized_lockstep() {
        // The holder index is a derived accelerator; residency (and thus
        // every probe outcome) must match the retired scan-all-cores
        // implementation. Replay random reads/writes/resets against a naive
        // copy that recomputes hit/miss by scanning the per-core lists.
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::new(0xCAFE);
        let cores = 5;
        let mut model = LocalityModel::new(cores, 1000);
        // Mirror of the expected residency: per core, MRU-first (addr, size).
        let mut mirror: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cores];
        for step in 0..4000 {
            let core = (rng.next_u64() % cores as u64) as usize;
            let addr = 0x100 + (rng.next_u64() % 12) * 0x100;
            let size = 100 + (rng.next_u64() % 4) * 150;
            match rng.next_u64() % 8 {
                0 => {
                    model.reset();
                    for m in &mut mirror {
                        m.clear();
                    }
                }
                1..=3 => {
                    model.record_reads(core, &[(addr, size)]);
                    mirror_touch(&mut mirror[core], addr, size, 1000);
                }
                _ => {
                    model.record_writes(core, &[(addr, size)]);
                    for (i, m) in mirror.iter_mut().enumerate() {
                        if i != core {
                            m.retain(|&(a, _)| a != addr);
                        }
                    }
                    mirror_touch(&mut mirror[core], addr, size, 1000);
                }
            }
            for (i, m) in mirror.iter().enumerate() {
                let bytes: u64 = m.iter().map(|&(_, s)| s).sum();
                assert_eq!(model.resident_bytes(i), bytes, "step {step} core {i}");
                for &(a, s) in m {
                    assert_eq!(model.probe(i, &[(a, s)]).hit_bytes, s, "step {step}");
                }
            }
        }
    }

    /// The pre-index `touch` semantics, against a plain MRU-first Vec.
    fn mirror_touch(list: &mut Vec<(u64, u64)>, addr: u64, size: u64, capacity: u64) {
        list.retain(|&(a, _)| a != addr);
        list.insert(0, (addr, size));
        let mut bytes: u64 = list.iter().map(|&(_, s)| s).sum();
        while bytes > capacity && list.len() > 1 {
            let (_, evicted) = list.pop().expect("len checked");
            bytes -= evicted;
        }
    }

    #[test]
    fn double_counting_same_block_in_working_set() {
        // A task listing the same block twice (in + inout on same address)
        // counts it twice; this is fine because both the hit and miss sides
        // are consistent.
        let mut model = LocalityModel::new(1, 4096);
        model.record_reads(0, &[(0xC000, 128)]);
        let out = model.probe(0, &[(0xC000, 128), (0xC000, 128)]);
        assert_eq!(out.hit_bytes, 256);
    }
}
