//! Cycle-granular simulated time.
//!
//! All timing in the simulator is expressed in clock cycles of the simulated
//! chip. The paper's chip runs at 2.0 GHz (Table I), so one microsecond is
//! 2000 cycles. [`Cycle`] is a transparent newtype over `u64` that supports
//! the arithmetic the simulator needs while keeping cycle counts statically
//! distinct from other integer quantities (entry counts, identifiers, ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, or a span of simulated time, in clock cycles.
///
/// `Cycle` is used both as an absolute timestamp (cycles since the start of
/// the simulation) and as a duration; the arithmetic operations below are the
/// ones that make sense for either interpretation.
///
/// # Example
///
/// ```
/// use tdm_sim::clock::Cycle;
///
/// let start = Cycle::new(100);
/// let latency = Cycle::new(16);
/// assert_eq!(start + latency, Cycle::new(116));
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp (start of simulation) / an empty duration.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable cycle count. Used as an "infinitely far in
    /// the future" sentinel by the execution driver.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cycle count as `f64`, for use in rates and averages.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: returns `self - other` or [`Cycle::ZERO`] if
    /// `other` is larger.
    ///
    /// ```
    /// use tdm_sim::clock::Cycle;
    /// assert_eq!(Cycle::new(5).saturating_sub(Cycle::new(9)), Cycle::ZERO);
    /// ```
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: Cycle) -> Option<Cycle> {
        self.0.checked_add(other.0).map(Cycle)
    }

    /// Returns the larger of the two cycle counts.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the smaller of the two cycle counts.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Multiplies a duration by an integer factor (e.g. `n` structure
    /// accesses of a fixed latency each).
    #[inline]
    pub fn scaled(self, factor: u64) -> Cycle {
        Cycle(self.0.saturating_mul(factor))
    }

    /// Multiplies a duration by a floating-point factor, rounding to the
    /// nearest cycle. Used by the locality model to shrink or stretch task
    /// durations.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scaled_f64(self, factor: f64) -> Cycle {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scaling factor must be finite and non-negative, got {factor}"
        );
        Cycle((self.0 as f64 * factor).round() as u64)
    }

    /// True if this is the zero cycle count.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |acc, c| acc + c)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Clock frequency of the simulated chip.
///
/// Conversions between wall-clock time (micro/nanoseconds) and [`Cycle`]
/// counts go through this type, so the 2.0 GHz of Table I appears in exactly
/// one place.
///
/// # Example
///
/// ```
/// use tdm_sim::clock::Frequency;
///
/// let f = Frequency::ghz(2.0);
/// assert_eq!(f.cycles_from_nanos(50.0).raw(), 100);
/// assert!((f.micros_from_cycles(f.cycles_from_micros(183.0)) - 183.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from a value in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn hz(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be positive, got {hz}"
        );
        Frequency { hz }
    }

    /// Creates a frequency from a value in gigahertz.
    pub fn ghz(ghz: f64) -> Self {
        Self::hz(ghz * 1e9)
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.hz / 1e9
    }

    /// Number of cycles in `micros` microseconds, rounded to the nearest
    /// cycle.
    pub fn cycles_from_micros(self, micros: f64) -> Cycle {
        Cycle::new((micros * 1e-6 * self.hz).round() as u64)
    }

    /// Number of cycles in `nanos` nanoseconds, rounded to the nearest cycle.
    pub fn cycles_from_nanos(self, nanos: f64) -> Cycle {
        Cycle::new((nanos * 1e-9 * self.hz).round() as u64)
    }

    /// Number of cycles in `secs` seconds, rounded to the nearest cycle.
    pub fn cycles_from_secs(self, secs: f64) -> Cycle {
        Cycle::new((secs * self.hz).round() as u64)
    }

    /// Wall-clock microseconds represented by `cycles`.
    pub fn micros_from_cycles(self, cycles: Cycle) -> f64 {
        cycles.as_f64() / self.hz * 1e6
    }

    /// Wall-clock seconds represented by `cycles`.
    pub fn secs_from_cycles(self, cycles: Cycle) -> f64 {
        cycles.as_f64() / self.hz
    }
}

impl Default for Frequency {
    /// The paper's 2.0 GHz chip clock (Table I).
    fn default() -> Self {
        Frequency::ghz(2.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.as_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrip() {
        let a = Cycle::new(1000);
        let b = Cycle::new(250);
        assert_eq!(a + b, Cycle::new(1250));
        assert_eq!(a - b, Cycle::new(750));
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn cycle_add_assign_and_sub_assign() {
        let mut c = Cycle::new(10);
        c += Cycle::new(5);
        assert_eq!(c, Cycle::new(15));
        c -= Cycle::new(15);
        assert_eq!(c, Cycle::ZERO);
    }

    #[test]
    fn cycle_saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
        assert_eq!(Cycle::new(10).saturating_sub(Cycle::new(3)), Cycle::new(7));
    }

    #[test]
    fn cycle_scaled_by_integer_factor() {
        assert_eq!(Cycle::new(7).scaled(3), Cycle::new(21));
        assert_eq!(Cycle::new(7).scaled(0), Cycle::ZERO);
    }

    #[test]
    fn cycle_scaled_by_float_rounds() {
        assert_eq!(Cycle::new(100).scaled_f64(0.5), Cycle::new(50));
        assert_eq!(Cycle::new(3).scaled_f64(0.5), Cycle::new(2)); // 1.5 rounds to 2
        assert_eq!(Cycle::new(100).scaled_f64(1.0), Cycle::new(100));
    }

    #[test]
    #[should_panic(expected = "scaling factor")]
    fn cycle_scaled_by_negative_factor_panics() {
        let _ = Cycle::new(1).scaled_f64(-1.0);
    }

    #[test]
    fn cycle_min_max() {
        let a = Cycle::new(4);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn cycle_sum_over_iterator() {
        let total: Cycle = (1..=4u64).map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(10));
    }

    #[test]
    fn cycle_display_is_nonempty() {
        assert_eq!(Cycle::new(42).to_string(), "42 cycles");
    }

    #[test]
    fn cycle_conversions_to_and_from_u64() {
        let c: Cycle = 77u64.into();
        let raw: u64 = c.into();
        assert_eq!(raw, 77);
    }

    #[test]
    fn frequency_default_is_two_ghz() {
        let f = Frequency::default();
        assert!((f.as_ghz() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_micros_to_cycles_at_2ghz() {
        let f = Frequency::ghz(2.0);
        // 183 us Cholesky task -> 366k cycles.
        assert_eq!(f.cycles_from_micros(183.0), Cycle::new(366_000));
        // 27,748 us Dedup task.
        assert_eq!(f.cycles_from_micros(27_748.0), Cycle::new(55_496_000));
    }

    #[test]
    fn frequency_nanos_and_secs() {
        let f = Frequency::ghz(2.0);
        assert_eq!(f.cycles_from_nanos(1.0), Cycle::new(2));
        assert_eq!(f.cycles_from_secs(1.0), Cycle::new(2_000_000_000));
        assert!((f.secs_from_cycles(Cycle::new(2_000_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_roundtrip_micros() {
        let f = Frequency::ghz(2.0);
        let us = 4771.0; // average task duration under TDM, Table II
        let cycles = f.cycles_from_micros(us);
        assert!((f.micros_from_cycles(cycles) - us).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::hz(0.0);
    }
}
