//! Configuration of the simulated chip (Table I of the paper).
//!
//! The TDM paper simulates a 32-core out-of-order ARM chip at 2.0 GHz with
//! private 32 KB L1 caches, a shared 4 MB L2 and the DMU attached to the
//! network-on-chip. [`ChipConfig`] captures the parameters that matter at the
//! granularity this reproduction simulates: core count, frequency, cache
//! geometry and latencies, and NoC latency. Core micro-architecture details
//! (issue width, ROB size, ...) are kept in [`CoreConfig`] for completeness
//! and for the `table01_config` harness, even though the phase-level timing
//! model does not consume them directly.

use serde::{Deserialize, Serialize};

use crate::clock::{Cycle, Frequency};

/// Out-of-order core parameters from Table I.
///
/// These values document the simulated core. The phase-level timing model
/// does not replay individual instructions, so they are informational, but
/// the runtime cost model is calibrated against a core of this class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched / issued / committed per cycle.
    pub issue_width: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Unified issue queue entries.
    pub issue_queue_entries: u32,
    /// Integer physical registers.
    pub int_registers: u32,
    /// Floating-point physical registers.
    pub fp_registers: u32,
    /// Load/store units.
    pub ld_st_units: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 4,
            rob_entries: 128,
            issue_queue_entries: 64,
            int_registers: 256,
            fp_registers: 256,
            ld_st_units: 2,
        }
    }
}

/// Cache and memory hierarchy parameters from Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Private L1 data cache size in bytes (32 KB in the paper).
    pub l1_size_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: Cycle,
    /// Shared L2 size in bytes (4 MB in the paper).
    pub l2_size_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency in cycles (not listed in Table I; a conventional value).
    pub l2_hit_latency: Cycle,
    /// Main-memory access latency in cycles.
    pub memory_latency: Cycle,
    /// Cache line size in bytes.
    pub line_bytes: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1_size_bytes: 32 * 1024,
            l1_ways: 2,
            l1_hit_latency: Cycle::new(2),
            l2_size_bytes: 4 * 1024 * 1024,
            l2_ways: 16,
            l2_hit_latency: Cycle::new(20),
            memory_latency: Cycle::new(200),
            line_bytes: 64,
        }
    }
}

impl MemoryConfig {
    /// Extra latency paid when a block is not in the local L1 but is in the
    /// shared L2 (i.e. it was produced by a task on another core).
    pub fn remote_block_penalty(&self) -> Cycle {
        self.l2_hit_latency.saturating_sub(self.l1_hit_latency)
    }
}

/// Full configuration of the simulated chip (Table I).
///
/// # Example
///
/// ```
/// use tdm_sim::config::ChipConfig;
///
/// let chip = ChipConfig::default();
/// assert_eq!(chip.num_cores, 32);
/// assert_eq!(chip.frequency.as_ghz(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of cores on the chip (32 in the paper's evaluation).
    pub num_cores: usize,
    /// Chip clock frequency (2.0 GHz).
    pub frequency: Frequency,
    /// Core micro-architecture parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub memory: MemoryConfig,
    /// One-way latency of a core ↔ DMU message over the NoC, in cycles.
    ///
    /// The DMU is a centralized module connected to the NoC (Figure 3); each
    /// TDM ISA instruction pays a round trip on top of the DMU processing
    /// time.
    pub noc_hop_latency: Cycle,
    /// Average number of NoC hops between a core and the DMU.
    pub noc_avg_hops: u32,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            num_cores: 32,
            frequency: Frequency::default(),
            core: CoreConfig::default(),
            memory: MemoryConfig::default(),
            noc_hop_latency: Cycle::new(2),
            noc_avg_hops: 4,
        }
    }
}

impl ChipConfig {
    /// Configuration identical to the default but with a different core
    /// count. Used by the `extra_33core` harness (Section VI-C) and by
    /// scalability studies.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn with_cores(num_cores: usize) -> Self {
        assert!(num_cores > 0, "a chip needs at least one core");
        ChipConfig {
            num_cores,
            ..Self::default()
        }
    }

    /// Round-trip NoC latency between a core and the DMU.
    pub fn dmu_round_trip(&self) -> Cycle {
        self.noc_hop_latency
            .scaled(u64::from(self.noc_avg_hops) * 2)
    }

    /// Convenience: convert microseconds to cycles at this chip's frequency.
    pub fn micros(&self, micros: f64) -> Cycle {
        self.frequency.cycles_from_micros(micros)
    }

    /// Convenience: convert nanoseconds to cycles at this chip's frequency.
    pub fn nanos(&self, nanos: f64) -> Cycle {
        self.frequency.cycles_from_nanos(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_one() {
        let chip = ChipConfig::default();
        assert_eq!(chip.num_cores, 32);
        assert!((chip.frequency.as_ghz() - 2.0).abs() < 1e-12);
        assert_eq!(chip.core.issue_width, 4);
        assert_eq!(chip.core.rob_entries, 128);
        assert_eq!(chip.memory.l1_size_bytes, 32 * 1024);
        assert_eq!(chip.memory.l1_ways, 2);
        assert_eq!(chip.memory.l1_hit_latency, Cycle::new(2));
        assert_eq!(chip.memory.l2_size_bytes, 4 * 1024 * 1024);
        assert_eq!(chip.memory.l2_ways, 16);
        assert_eq!(chip.memory.line_bytes, 64);
    }

    #[test]
    fn with_cores_overrides_only_core_count() {
        let chip = ChipConfig::with_cores(33);
        assert_eq!(chip.num_cores, 33);
        assert_eq!(chip.memory, MemoryConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn with_zero_cores_panics() {
        let _ = ChipConfig::with_cores(0);
    }

    #[test]
    fn dmu_round_trip_is_twice_hops_times_latency() {
        let chip = ChipConfig::default();
        // 4 hops * 2 cycles * 2 directions = 16 cycles.
        assert_eq!(chip.dmu_round_trip(), Cycle::new(16));
    }

    #[test]
    fn remote_block_penalty_is_l2_minus_l1() {
        let mem = MemoryConfig::default();
        assert_eq!(mem.remote_block_penalty(), Cycle::new(18));
    }

    #[test]
    fn micros_helper_uses_chip_frequency() {
        let chip = ChipConfig::default();
        assert_eq!(chip.micros(1.0), Cycle::new(2000));
        assert_eq!(chip.nanos(500.0), Cycle::new(1000));
    }

    #[test]
    fn config_debug_is_nonempty() {
        let chip = ChipConfig::default();
        let debug = format!("{chip:?}");
        assert!(debug.contains("num_cores: 32"));
    }
}
